// The paper's Fig. 1 scenario, built by hand with the public API: an
// open space with two APs, a location q and its mirror twin q', and a
// user whose motion disambiguates what fingerprints alone cannot.
//
// Demonstrates the low-level API (FloorPlan, RadioEnvironment,
// FingerprintDatabase, MotionDatabase, MoLocEngine) without the
// ExperimentWorld convenience wrapper.

#include <cstdio>

#include "baseline/wifi_fingerprinting.hpp"
#include "core/moloc_engine.hpp"
#include "core/motion_database.hpp"
#include "env/floor_plan.hpp"
#include "radio/radio_environment.hpp"
#include "geometry/angles.hpp"
#include "radio/site_survey.hpp"

int main() {
  using namespace moloc;

  // An open 20 m x 20 m space.  Two APs on the horizontal mid-line
  // (the line S1-S2 of Fig. 1).
  env::FloorPlan plan(20.0, 20.0);
  const auto p = plan.addReferenceLocation({4.0, 10.0});    // On S1S2.
  const auto q = plan.addReferenceLocation({10.0, 14.0});   // North.
  const auto qTwin = plan.addReferenceLocation({10.0, 6.0});  // Mirror.

  radio::PropagationParams radioParams;
  radioParams.shadowingSigmaDb = 0.3;  // Nearly ideal open space:
  radioParams.temporalSigmaDb = 2.0;   // twins are almost exact.
  radioParams.bodyAttenuationDb = 0.0;
  radio::RadioEnvironment radio(
      plan, {{0, {2.0, 10.0}}, {1, {18.0, 10.0}}}, radioParams);

  // Site survey.
  util::Rng rng(1);
  radio::SurveyConfig survey;
  const auto surveyData = radio::conductSurvey(radio, survey, rng);
  const auto fingerprints = surveyData.buildDatabase();

  std::printf("=== Fig. 1: distinguishing fingerprint twins ===\n\n");
  std::printf("fingerprint separation q vs q': %.1f dB "
              "(vs %.1f dB q vs p)\n",
              radio::dissimilarity(fingerprints.entry(q),
                                   fingerprints.entry(qTwin)),
              radio::dissimilarity(fingerprints.entry(q),
                                   fingerprints.entry(p)));

  // How often does plain fingerprinting confuse the twins?
  const baseline::WifiFingerprinting wifi(fingerprints);
  int wrong = 0;
  const int queries = 1000;
  for (int i = 0; i < queries; ++i) {
    const auto scan = radio.scan(plan.location(q).pos, 270.0, rng);
    if (wifi.localize(scan) != q) ++wrong;
  }
  std::printf("plain WiFi fingerprinting at q: %d / %d queries "
              "mislocated (mostly to the twin q')\n\n",
              wrong, queries);

  // The motion database knows the walkable legs p -> q and p -> q'.
  core::MotionDatabase motion(plan.locationCount());
  const auto pPos = plan.location(p).pos;
  const auto qPos = plan.location(q).pos;
  const auto qTwinPos = plan.location(qTwin).pos;
  motion.setEntryWithMirror(
      p, q,
      {geometry::headingBetweenDeg(pPos, qPos), 5.0,
       geometry::distance(pPos, qPos), 0.3, 20});
  motion.setEntryWithMirror(
      p, qTwin,
      {geometry::headingBetweenDeg(pPos, qTwinPos), 5.0,
       geometry::distance(pPos, qTwinPos), 0.3, 20});

  // Fig. 1(b): the user starts at p (unique fingerprint), then walks
  // to q.  The motion (north-east-ish) matches p -> q, not p -> q'.
  core::MoLocConfig config;
  config.candidateCount = 3;
  core::MoLocEngine engine(fingerprints, motion, config);

  int molocWrong = 0;
  int wifiWrong = 0;
  for (int i = 0; i < queries; ++i) {
    engine.reset();
    engine.localize(radio.scan(pPos, 90.0, rng), std::nullopt);
    const auto scanAtQ = radio.scan(qPos, 56.0, rng);
    const sensors::MotionMeasurement walkToQ{
        geometry::headingBetweenDeg(pPos, qPos) + rng.normal(0.0, 3.0),
        geometry::distance(pPos, qPos) + rng.normal(0.0, 0.2)};
    if (engine.localize(scanAtQ, walkToQ).location != q) ++molocWrong;
    if (wifi.localize(scanAtQ) != q) ++wifiWrong;
  }
  std::printf("after walking p -> q (Fig. 1b):\n");
  std::printf("  WiFi baseline wrong: %4d / %d\n", wifiWrong, queries);
  std::printf("  MoLoc wrong:         %4d / %d\n\n", molocWrong, queries);

  // Fig. 1(c): even when the *initial* fix is the wrong twin, the
  // retained candidate set lets the next motion-constrained fix
  // recover.
  int recovered = 0;
  int initialWrong = 0;
  for (int i = 0; i < queries; ++i) {
    engine.reset();
    const auto initial =
        engine.localize(radio.scan(qPos, 270.0, rng), std::nullopt);
    if (initial.location == q) continue;  // Only erroneous initials.
    ++initialWrong;
    // The user walks q -> p; motion matches the q -> p leg.
    const sensors::MotionMeasurement walkToP{
        geometry::headingBetweenDeg(qPos, pPos) + rng.normal(0.0, 3.0),
        geometry::distance(qPos, pPos) + rng.normal(0.0, 0.2)};
    const auto fix = engine.localize(radio.scan(pPos, 236.0, rng),
                                     walkToP);
    if (fix.location == p) ++recovered;
  }
  std::printf("after an erroneous initial fix at q (Fig. 1c):\n");
  std::printf("  erroneous initials: %d; recovered at the next fix: %d "
              "(%.0f%%)\n",
              initialWrong, recovered,
              initialWrong ? 100.0 * recovered / initialWrong : 0.0);
  return 0;
}
