// Renders a walk through the office hall on an ASCII floor plan,
// step by step: the ground truth ('T'), MoLoc's estimate ('M'), and
// the WiFi baseline's estimate ('W').  When two coincide, the better
// mark wins ('*' = all three agree).
//
// A quick visual intuition for what fingerprint twins do to the
// baseline — W regularly teleports to a far, mirrored location while
// M tracks T.

#include <cstdio>

#include "baseline/wifi_fingerprinting.hpp"
#include "eval/ascii_map.hpp"
#include "eval/experiment_world.hpp"

int main() {
  using namespace moloc;

  eval::WorldConfig config;
  eval::ExperimentWorld world(config);
  const auto& user = world.users().front();
  const auto trace = world.makeTrace(user, 8, world.evalRng());

  auto engine = world.makeEngine();
  const baseline::WifiFingerprinting wifi(world.fingerprintDb());

  std::printf("=== Walking the office hall (40.8 m x 16 m) ===\n");
  std::printf("marks: T = ground truth, M = MoLoc, W = WiFi baseline, "
              "* = all agree\n\n");

  auto show = [&world](env::LocationId truth, env::LocationId moloc,
                       env::LocationId wifiFix, int step) {
    eval::AsciiMap map(world.hall().plan);
    map.markLocation(truth, 'T');
    map.markLocation(wifiFix, wifiFix == truth ? '*' : 'W');
    map.markLocation(moloc, moloc == truth
                                ? (wifiFix == truth ? '*' : 'M')
                                : 'M');
    std::printf("step %d: truth=%d moloc=%d (err %.1f m) wifi=%d "
                "(err %.1f m)\n%s\n",
                step, truth, moloc,
                world.locationDistance(moloc, truth), wifiFix,
                world.locationDistance(wifiFix, truth),
                map.render().c_str());
  };

  const auto initial = engine.localize(trace.initialScan, std::nullopt);
  show(trace.startTruth, initial.location,
       wifi.localize(trace.initialScan), 0);

  int step = 1;
  for (const auto& interval : trace.intervals) {
    const auto motion = world.processInterval(interval, user);
    const auto fix = engine.localize(interval.scanAtArrival, motion);
    show(interval.toTruth, fix.location,
         wifi.localize(interval.scanAtArrival), step);
    ++step;
  }
  return 0;
}
