// The full paper campaign in one run: builds the office-hall world for
// 4, 5 and 6 APs, runs the test protocol, and prints a compact report
// combining the content of Figs. 7-8 and Table I.

#include <cstdio>

#include "eval/convergence.hpp"
#include "eval/experiment_world.hpp"

int main() {
  using namespace moloc;

  std::printf("=== MoLoc office-hall campaign "
              "(40.8 m x 16 m, 28 locations, 4 users) ===\n\n");

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    eval::ExperimentWorld world(config);

    eval::ErrorStats moloc;
    eval::ErrorStats wifi;
    std::vector<std::vector<eval::LocalizationRecord>> molocWalks;
    std::vector<std::vector<eval::LocalizationRecord>> wifiWalks;
    eval::ErrorStats molocAtTwins;
    eval::ErrorStats wifiAtTwins;

    for (const auto& outcome : eval::runComparison(world, 34, 12)) {
      moloc.addAll(outcome.moloc);
      wifi.addAll(outcome.wifi);
      molocWalks.push_back(outcome.moloc);
      wifiWalks.push_back(outcome.wifi);
      for (std::size_t i = 0; i < outcome.wifi.size(); ++i) {
        if (outcome.wifi[i].errorMeters > 6.0) {
          wifiAtTwins.add(outcome.wifi[i]);
          molocAtTwins.add(outcome.moloc[i]);
        }
      }
    }

    const auto convMoloc = eval::analyzeConvergence(molocWalks);
    const auto convWifi = eval::analyzeConvergence(wifiWalks);

    std::printf("--- %d APs ---\n", aps);
    std::printf("  overall:      moloc %.0f%% / %.2f m mean    "
                "wifi %.0f%% / %.2f m mean\n",
                moloc.accuracy() * 100.0, moloc.meanError(),
                wifi.accuracy() * 100.0, wifi.meanError());
    std::printf("  at twin fixes (wifi > 6 m): moloc %.2f m vs wifi "
                "%.2f m mean error (%zu fixes)\n",
                molocAtTwins.meanError(), wifiAtTwins.meanError(),
                wifiAtTwins.count());
    std::printf("  convergence:  EL moloc %.2f vs wifi %.2f; "
                "subsequent accuracy %.0f%% vs %.0f%%\n\n",
                convMoloc.meanErroneousBeforeFirstAccurate,
                convWifi.meanErroneousBeforeFirstAccurate,
                convMoloc.subsequentAccuracy * 100.0,
                convWifi.subsequentAccuracy * 100.0);
  }

  std::printf("(paper's headline: MoLoc doubles fingerprinting accuracy "
              "and holds the mean error under 1 m with 6 APs)\n");
  return 0;
}
