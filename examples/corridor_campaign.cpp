// Generality check: the full MoLoc pipeline on a topologically
// different site — a 60 m corridor building with twelve walled rooms —
// rather than the paper's open office hall.  Rooms are dead ends with a
// single walkable leg, the corridor is a 1-D chain, and room pairs
// across the corridor are natural twin candidates.

#include <cstdio>

#include "env/corridor_building.hpp"
#include "eval/ambiguity.hpp"
#include "eval/ascii_map.hpp"
#include "eval/experiment_world.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Corridor-building campaign (60 m x 12 m, %d "
              "locations) ===\n\n",
              env::CorridorBuildingLayout::kLocations);

  {
    const auto site = env::makeCorridorBuilding();
    const eval::AsciiMap map(site.plan, 1.5);
    std::printf("%s\n", map.render().c_str());
  }

  for (int aps : {2, 3, 4}) {
    eval::WorldConfig config;
    config.apCount = aps;
    eval::ExperimentWorld world(env::makeCorridorBuilding(), config);

    const auto twins = eval::findFingerprintTwins(
        world.fingerprintDb(), world.hall().plan);

    eval::ErrorStats moloc;
    eval::ErrorStats wifi;
    for (const auto& outcome : eval::runComparison(world, 34, 12)) {
      moloc.addAll(outcome.moloc);
      wifi.addAll(outcome.wifi);
    }
    std::printf("--- %d APs (%zu twin pairs, %zu aisle legs learned) "
                "---\n",
                aps, twins.size(), world.builderReport().pairsStored);
    std::printf("  moloc: accuracy %.3f, mean %.2f m | wifi: accuracy "
                "%.3f, mean %.2f m\n\n",
                moloc.accuracy(), moloc.meanError(), wifi.accuracy(),
                wifi.meanError());
  }

  std::printf("(the shape transfers: motion assistance pays off in any "
              "layout with walkable structure)\n");
  return 0;
}
