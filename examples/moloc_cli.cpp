// moloc_cli: a configurable command-line front end for the simulator.
//
// Runs the full pipeline (survey -> crowdsourced motion database ->
// paired MoLoc/WiFi evaluation) with every major knob exposed as a
// flag, prints a summary report, and can persist the trained databases
// for later sessions.
//
//   ./moloc_cli --aps 5 --seed 7 --traces 50 --legs 15
//   ./moloc_cli --k 4 --alpha 30 --temporal-noise 4
//   ./moloc_cli --save-fingerprint-db fp.txt --save-motion-db motion.txt

#include <cstdio>
#include <exception>

#include "baseline/wifi_fingerprinting.hpp"
#include "eval/convergence.hpp"
#include "eval/experiment_world.hpp"
#include "io/serialization.hpp"
#include "io/trace_io.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace moloc;

  util::ArgParser args(
      "moloc_cli: run the MoLoc office-hall experiment with custom "
      "parameters");
  args.addOption("aps", "6", "number of access points (1-6)");
  args.addOption("seed", "42", "master random seed");
  args.addOption("traces", "34", "test walks to evaluate");
  args.addOption("legs", "12", "aisle legs per test walk");
  args.addOption("training-traces", "150",
                 "crowdsourced walks for the motion database");
  args.addOption("k", "12", "candidate-set size");
  args.addOption("alpha", "20", "direction discretization (degrees)");
  args.addOption("beta", "1", "offset discretization (metres)");
  args.addOption("temporal-noise", "6.5",
                 "per-scan RSS noise sigma (dB)");
  args.addOption("drift", "0", "radio-map staleness drift sigma (dB)");
  args.addOption("save-fingerprint-db", "",
                 "write the radio map to this path");
  args.addOption("save-motion-db", "",
                 "write the motion database to this path");
  args.addOption("record-traces", "",
                 "write the evaluated test walks to this path");
  args.addOption("replay-traces", "",
                 "evaluate walks loaded from this path instead of "
                 "simulating new ones");
  args.addSwitch("quiet", "print only the summary line");

  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n\n%s", e.what(), args.usage().c_str());
    return 2;
  }

  eval::WorldConfig config;
  config.apCount = args.getInt("aps");
  config.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  config.trainingTraces = args.getInt("training-traces");
  config.moloc.candidateCount =
      static_cast<std::size_t>(args.getInt("k"));
  config.moloc.matcher.alphaDeg = args.getDouble("alpha");
  config.moloc.matcher.betaMeters = args.getDouble("beta");
  config.propagation.temporalSigmaDb = args.getDouble("temporal-noise");
  config.propagation.driftSigmaDb = args.getDouble("drift");

  const bool quiet = args.getSwitch("quiet");
  const int traces = args.getInt("traces");
  const int legs = args.getInt("legs");

  try {
    if (!quiet)
      std::printf("building world: %d APs, seed %llu, %d training "
                  "walks...\n",
                  config.apCount,
                  static_cast<unsigned long long>(config.seed),
                  config.trainingTraces);
    eval::ExperimentWorld world(config);

    if (!quiet) {
      const auto& report = world.builderReport();
      std::printf("motion db: %zu pairs from %zu observations "
                  "(%zu rejected)\n",
                  report.pairsStored, report.observations,
                  report.rejectedCoarse + report.rejectedFine);
    }

    // Assemble the test walks: replayed from disk, or freshly
    // simulated (and optionally recorded).
    std::vector<traj::Trace> walks;
    const std::string replayPath = args.getString("replay-traces");
    if (!replayPath.empty()) {
      walks = io::loadTraces(replayPath);
      if (!quiet)
        std::printf("replaying %zu recorded walks from %s\n",
                    walks.size(), replayPath.c_str());
    } else {
      for (int t = 0; t < traces; ++t)
        walks.push_back(world.makeTrace(
            world.users()[static_cast<std::size_t>(t) %
                          world.users().size()],
            legs, world.evalRng()));
      const std::string recordPath = args.getString("record-traces");
      if (!recordPath.empty()) {
        io::saveTraces(walks, recordPath);
        if (!quiet)
          std::printf("recorded %zu walks to %s\n", walks.size(),
                      recordPath.c_str());
      }
    }

    eval::ErrorStats moloc;
    eval::ErrorStats wifi;
    std::vector<std::vector<eval::LocalizationRecord>> molocWalks;
    std::vector<std::vector<eval::LocalizationRecord>> wifiWalks;
    {
      const baseline::WifiFingerprinting wifiLocalizer(
          world.fingerprintDb());
      auto engine = world.makeEngine();
      for (const auto& walk : walks) {
        engine.reset();
        std::vector<eval::LocalizationRecord> molocWalk;
        std::vector<eval::LocalizationRecord> wifiWalk;
        auto record = [&world](env::LocationId estimated,
                               env::LocationId truth) {
          return eval::LocalizationRecord{
              estimated, truth,
              world.locationDistance(estimated, truth)};
        };
        const auto initial =
            engine.localize(walk.initialScan, std::nullopt);
        molocWalk.push_back(record(initial.location, walk.startTruth));
        wifiWalk.push_back(record(
            wifiLocalizer.localize(walk.initialScan), walk.startTruth));
        for (const auto& interval : walk.intervals) {
          const auto motion = world.processInterval(interval, walk.user);
          const auto fix =
              engine.localize(interval.scanAtArrival, motion);
          molocWalk.push_back(record(fix.location, interval.toTruth));
          wifiWalk.push_back(
              record(wifiLocalizer.localize(interval.scanAtArrival),
                     interval.toTruth));
        }
        moloc.addAll(molocWalk);
        wifi.addAll(wifiWalk);
        molocWalks.push_back(std::move(molocWalk));
        wifiWalks.push_back(std::move(wifiWalk));
      }
    }

    std::printf("moloc: accuracy %.3f  mean %.2f m  max %.2f m | "
                "wifi: accuracy %.3f  mean %.2f m  max %.2f m\n",
                moloc.accuracy(), moloc.meanError(), moloc.maxError(),
                wifi.accuracy(), wifi.meanError(), wifi.maxError());
    if (!quiet) {
      const auto convMoloc = eval::analyzeConvergence(molocWalks);
      const auto convWifi = eval::analyzeConvergence(wifiWalks);
      std::printf("convergence (erroneous-initial walks): EL %.2f vs "
                  "%.2f, subsequent accuracy %.2f vs %.2f\n",
                  convMoloc.meanErroneousBeforeFirstAccurate,
                  convWifi.meanErroneousBeforeFirstAccurate,
                  convMoloc.subsequentAccuracy,
                  convWifi.subsequentAccuracy);
    }

    const std::string fpPath = args.getString("save-fingerprint-db");
    if (!fpPath.empty()) {
      io::saveFingerprintDatabase(world.fingerprintDb(), fpPath);
      if (!quiet) std::printf("radio map written to %s\n", fpPath.c_str());
    }
    const std::string motionPath = args.getString("save-motion-db");
    if (!motionPath.empty()) {
      io::saveMotionDatabase(world.motionDb(), motionPath);
      if (!quiet)
        std::printf("motion database written to %s\n",
                    motionPath.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
