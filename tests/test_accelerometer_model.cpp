#include "sensors/accelerometer_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace moloc::sensors {
namespace {

TEST(AccelerometerModel, RejectsBadSampleRate) {
  AccelParams params;
  params.sampleRateHz = 0.0;
  EXPECT_THROW(AccelerometerModel{params}, std::invalid_argument);
}

TEST(AccelerometerModel, RejectsBadCadence) {
  AccelerometerModel model;
  util::Rng rng(1);
  EXPECT_THROW(model.walkingSamples(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(model.walkingSamples(10, -1.0, rng), std::invalid_argument);
}

TEST(AccelerometerModel, WalkingOscillatesAroundGravity) {
  AccelParams params;
  params.noiseSigma = 0.0;
  params.amplitudeJitter = 0.0;
  AccelerometerModel model(params);
  util::Rng rng(2);
  const auto samples = model.walkingSamples(500, 1.8, rng);
  EXPECT_NEAR(util::mean(samples), params.gravity, 0.3);
  EXPECT_GT(util::maxValue(samples), params.gravity + 2.0);
  EXPECT_LT(util::minValue(samples), params.gravity - 2.0);
}

TEST(AccelerometerModel, WalkingEnvelopeMatchesFig4) {
  // The paper's Fig. 4 trace swings roughly between 6 and 15 m/s^2.
  AccelerometerModel model;
  util::Rng rng(3);
  const auto samples = model.walkingSamples(500, 1.8, rng);
  EXPECT_GT(util::maxValue(samples), 11.0);
  EXPECT_LT(util::maxValue(samples), 17.0);
  EXPECT_LT(util::minValue(samples), 8.0);
  EXPECT_GT(util::minValue(samples), 3.0);
}

TEST(AccelerometerModel, IdleStaysNearGravity) {
  AccelerometerModel model;
  util::Rng rng(4);
  const auto samples = model.idleSamples(500, rng);
  EXPECT_NEAR(util::mean(samples), 9.81, 0.1);
  EXPECT_LT(util::stddev(samples), 0.3);
}

TEST(AccelerometerModel, IdleVarianceFarBelowWalking) {
  AccelerometerModel model;
  util::Rng rng(5);
  const auto idle = model.idleSamples(300, rng);
  const auto walking = model.walkingSamples(300, 1.8, rng);
  EXPECT_LT(util::stddev(idle) * 5.0, util::stddev(walking));
}

TEST(AccelerometerModel, PhaseAdvancesAcrossSegments) {
  AccelParams params;
  params.noiseSigma = 0.0;
  params.amplitudeJitter = 0.0;
  AccelerometerModel model(params);
  util::Rng rng(6);
  // Half a gait cycle at 2 Hz and 50 Hz sampling = 12.5 samples.
  model.walkingSamples(10, 2.0, rng);
  const double phase = model.phase();
  EXPECT_NEAR(phase, 10.0 * 2.0 / 50.0, 1e-9);
  model.walkingSamples(10, 2.0, rng);
  EXPECT_NEAR(model.phase(), 20.0 * 2.0 / 50.0 - 0.0, 1e-9);
}

TEST(AccelerometerModel, PhaseWrapsBelowOne) {
  AccelerometerModel model;
  util::Rng rng(7);
  model.walkingSamples(1000, 1.9, rng);
  EXPECT_GE(model.phase(), 0.0);
  EXPECT_LT(model.phase(), 1.0);
}

TEST(AccelerometerModel, RequestedCountProduced) {
  AccelerometerModel model;
  util::Rng rng(8);
  EXPECT_EQ(model.walkingSamples(0, 1.8, rng).size(), 0u);
  EXPECT_EQ(model.walkingSamples(123, 1.8, rng).size(), 123u);
  EXPECT_EQ(model.idleSamples(77, rng).size(), 77u);
}

TEST(AccelerometerModel, DeterministicGivenSeed) {
  AccelerometerModel m1;
  AccelerometerModel m2;
  util::Rng rng1(9);
  util::Rng rng2(9);
  const auto a = m1.walkingSamples(50, 1.8, rng1);
  const auto b = m2.walkingSamples(50, 1.8, rng2);
  EXPECT_EQ(a, b);
}

/// Parameterized: the dominant oscillation tracks the commanded cadence
/// (verified by counting mean-crossings).
class CadenceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CadenceSweepTest, MeanCrossingsTrackCadence) {
  const double cadence = GetParam();
  AccelParams params;
  params.noiseSigma = 0.0;
  params.amplitudeJitter = 0.0;
  params.harmonicRatio = 0.0;  // Pure tone for crisp crossings.
  AccelerometerModel model(params);
  util::Rng rng(10);
  const double duration = 10.0;
  const auto count =
      static_cast<std::size_t>(duration * params.sampleRateHz);
  const auto samples = model.walkingSamples(count, cadence, rng);

  int upCrossings = 0;
  for (std::size_t i = 1; i < samples.size(); ++i)
    if (samples[i - 1] < params.gravity && samples[i] >= params.gravity)
      ++upCrossings;
  // One upward crossing per gait cycle.
  EXPECT_NEAR(upCrossings, cadence * duration, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CadenceSweepTest,
                         ::testing::Values(1.5, 1.7, 1.9, 2.1));

}  // namespace
}  // namespace moloc::sensors
