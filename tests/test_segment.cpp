#include "geometry/segment.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace moloc::geometry {
namespace {

TEST(Segment, LengthMidpointPointAt) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.length(), 4.0);
  EXPECT_EQ(s.midpoint(), (Vec2{2.0, 0.0}));
  EXPECT_EQ(s.pointAt(0.25), (Vec2{1.0, 0.0}));
}

TEST(Segment, ProperCrossingIntersects) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
}

TEST(Segment, ParallelDisjointDoNotIntersect) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{0.0, 1.0}, {2.0, 1.0}};
  EXPECT_FALSE(segmentsIntersect(a, b));
}

TEST(Segment, TouchingEndpointsIntersect) {
  const Segment a{{0.0, 0.0}, {1.0, 1.0}};
  const Segment b{{1.0, 1.0}, {2.0, 0.0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
}

TEST(Segment, TJunctionIntersects) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, -1.0}, {1.0, 0.0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
}

TEST(Segment, CollinearOverlappingIntersect) {
  const Segment a{{0.0, 0.0}, {3.0, 0.0}};
  const Segment b{{2.0, 0.0}, {5.0, 0.0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
}

TEST(Segment, CollinearDisjointDoNotIntersect) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_FALSE(segmentsIntersect(a, b));
}

TEST(Segment, NearMissDoesNotIntersect) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.5, 0.001}, {0.5, 1.0}};
  EXPECT_FALSE(segmentsIntersect(a, b));
}

TEST(Segment, IntersectionIsSymmetric) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_EQ(segmentsIntersect(a, b), segmentsIntersect(b, a));
  const Segment c{{5.0, 5.0}, {6.0, 6.0}};
  EXPECT_EQ(segmentsIntersect(a, c), segmentsIntersect(c, a));
}

TEST(Segment, CountCrossings) {
  const std::vector<Segment> walls{
      {{1.0, -1.0}, {1.0, 1.0}},
      {{2.0, -1.0}, {2.0, 1.0}},
      {{3.0, 5.0}, {4.0, 5.0}},  // Far away.
  };
  EXPECT_EQ(countCrossings({0.0, 0.0}, {2.5, 0.0}, walls), 2);
  EXPECT_EQ(countCrossings({0.0, 0.0}, {0.5, 0.0}, walls), 0);
}

TEST(Segment, DistanceToSegmentInterior) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(distanceToSegment({2.0, 3.0}, s), 3.0);
}

TEST(Segment, DistanceToSegmentClampsToEndpoints) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(distanceToSegment({-3.0, 4.0}, s), 5.0);
  EXPECT_DOUBLE_EQ(distanceToSegment({7.0, 4.0}, s), 5.0);
}

TEST(Segment, DistanceToDegenerateSegment) {
  const Segment point{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(distanceToSegment({4.0, 5.0}, point), 5.0);
}

}  // namespace
}  // namespace moloc::geometry
