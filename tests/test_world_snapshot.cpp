// Tests of core::WorldSnapshot and the service's publication contract:
// a published world is immutable, a reader pinning an old generation
// keeps a bitwise-stable view while newer worlds are published, and
// the aliasing adjacency handle keeps its whole snapshot alive.

#include "core/world_snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/motion_database.hpp"
#include "core/motion_matcher.hpp"
#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"
#include "service/localization_service.hpp"

namespace moloc::core {
namespace {

env::FloorPlan corridorPlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

radio::FingerprintDatabase corridorFingerprints() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
  db.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  return db;
}

TEST(WorldSnapshot, AdjacencyAliasPinsTheWholeSnapshot) {
  auto fingerprints =
      std::make_shared<const radio::FingerprintDatabase>(
          corridorFingerprints());
  MotionDatabase motion(3);
  motion.setEntry(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
  auto snapshot = std::make_shared<const WorldSnapshot>(
      fingerprints, std::move(motion), /*generation=*/7,
      /*intakeRecords=*/42);
  EXPECT_EQ(snapshot->generation(), 7u);
  EXPECT_EQ(snapshot->intakeRecords(), 42u);
  EXPECT_EQ(snapshot->adjacency().edgeCount(), 1u);
  EXPECT_EQ(snapshot->fingerprints().get(), fingerprints.get());

  auto adjacency = WorldSnapshot::adjacencyOf(snapshot);
  ASSERT_EQ(adjacency.get(), &snapshot->adjacency());

  // Dropping the snapshot handle must not free the world while the
  // adjacency alias is alive — this is what lets a session hold only
  // the adjacency yet keep its whole scoring world pinned.
  std::weak_ptr<const WorldSnapshot> weak = snapshot;
  snapshot.reset();
  EXPECT_FALSE(weak.expired());
  EXPECT_EQ(adjacency->edgeCount(), 1u);
  ASSERT_NE(adjacency->find(0, 1), nullptr);
  adjacency.reset();
  EXPECT_TRUE(weak.expired());

  EXPECT_EQ(WorldSnapshot::adjacencyOf(nullptr), nullptr);
}

TEST(WorldSnapshot, ServiceBootWorldIsGenerationZero) {
  MotionDatabase motion(3);
  motion.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
  service::ServiceConfig config;
  config.threadCount = 1;
  config.shardCount = 1;
  config.metrics = nullptr;
  service::LocalizationService svc(corridorFingerprints(),
                                   std::move(motion), config);

  const auto world = svc.currentWorld();
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(world->generation(), 0u);
  EXPECT_EQ(world->intakeRecords(), 0u);
  // The snapshot shares the service's fingerprint database instead of
  // copying it.
  EXPECT_EQ(world->fingerprints().get(), &svc.fingerprints());
  EXPECT_EQ(world->motion().entryCount(), svc.motion().entryCount());
  EXPECT_EQ(world->adjacency().edgeCount(), svc.motion().entryCount());
}

TEST(WorldSnapshot, PinnedReaderSeesBitwiseStableWorldAcrossPublishes) {
  const auto plan = corridorPlan();
  BuilderConfig builderConfig;
  builderConfig.minSamplesPerPair = 3;
  OnlineMotionDatabase db(plan, builderConfig);

  service::ServiceConfig config;
  config.threadCount = 1;
  config.shardCount = 1;
  config.metrics = nullptr;
  service::LocalizationService svc(corridorFingerprints(),
                                   MotionDatabase(3), config);
  service::IntakePolicy policy;
  policy.publishEveryRecords = 1;  // Every applied record publishes.
  svc.attachIntake(&db, nullptr, 0, policy);

  // Pin the attach-time world and a matcher bound to its index.
  const auto pinned = svc.currentWorld();
  ASSERT_NE(pinned, nullptr);
  const auto generation0 = pinned->generation();
  EXPECT_EQ(pinned->motion().entryCount(), 0u);
  const MotionMatcher pinnedMatcher(WorldSnapshot::adjacencyOf(pinned));
  const std::vector<WeightedCandidate> prev{{0, 1.0}};
  const sensors::MotionMeasurement motion{90.0, 4.0};
  const double before = pinnedMatcher.setProbability(prev, 1, motion);
  EXPECT_EQ(before, pinnedMatcher.params().unreachableFloor);

  for (int k = 0; k < 3; ++k)
    EXPECT_TRUE(svc.reportObservation(0, 1, 90.0 + k, 4.0 + 0.1 * k));
  svc.flushIntake();

  // New generations were published and carry the new pair...
  const auto current = svc.currentWorld();
  ASSERT_NE(current, nullptr);
  EXPECT_GT(current->generation(), generation0);
  EXPECT_GE(current->intakeRecords(), 3u);
  EXPECT_TRUE(current->motion().hasEntry(0, 1));
  EXPECT_GE(svc.intakeStats().publishes, 3u);

  // ...while the pinned world is bit-for-bit what it was: same entry
  // count, same score, no tearing.
  EXPECT_EQ(pinned->generation(), generation0);
  EXPECT_EQ(pinned->motion().entryCount(), 0u);
  EXPECT_EQ(pinnedMatcher.setProbability(prev, 1, motion), before);

  // A matcher adopting the current world sees the published pair.
  const MotionMatcher fresh(WorldSnapshot::adjacencyOf(current));
  EXPECT_GT(fresh.setProbability(prev, 1, motion), before);
}

TEST(WorldSnapshot, SessionsAdoptNewerWorldsBetweenScans) {
  // End-to-end: a session created before a publish serves its next
  // scan against the newer world (adoption happens per scan under the
  // session's own lock, with a lock-free acquire load).
  const auto plan = corridorPlan();
  BuilderConfig builderConfig;
  builderConfig.minSamplesPerPair = 3;
  OnlineMotionDatabase db(plan, builderConfig);

  service::ServiceConfig config;
  config.threadCount = 1;
  config.shardCount = 1;
  config.metrics = nullptr;
  config.engine = MoLocConfig{3, {}};
  service::LocalizationService svc(corridorFingerprints(),
                                   MotionDatabase(3), config);
  service::IntakePolicy policy;
  policy.publishEveryRecords = 1;
  svc.attachIntake(&db, nullptr, 0, policy);

  const sensors::ImuTrace noImu(50.0);
  const radio::Fingerprint scan({-50.0, -60.0});
  EXPECT_TRUE(svc.submitScan(1, scan, noImu).hasFix());

  for (int k = 0; k < 3; ++k)
    EXPECT_TRUE(svc.reportObservation(0, 1, 90.0 + k, 4.0 + 0.1 * k));
  svc.flushIntake();

  // The next scan adopts the published world and still serves.
  EXPECT_TRUE(svc.submitScan(1, scan, noImu).hasFix());
}

}  // namespace
}  // namespace moloc::core
