#include "sensors/step_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angles.hpp"
#include "sensors/accelerometer_model.hpp"
#include "util/rng.hpp"

namespace moloc::sensors {
namespace {

/// A clean synthetic gait: `steps` full sine cycles at `cadence`.
std::vector<double> cleanGait(int steps, double cadence,
                              double sampleRate) {
  const auto count =
      static_cast<std::size_t>(steps / cadence * sampleRate);
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    samples.push_back(9.81 +
                      2.8 * std::sin(2.0 * geometry::kPi * cadence * t));
  }
  return samples;
}

TEST(StepDetector, CountsCleanSteps) {
  const auto samples = cleanGait(10, 1.8, 50.0);
  const StepDetector detector;
  EXPECT_EQ(detector.detect(samples, 50.0).size(), 10u);
}

TEST(StepDetector, CountsNoisySteps) {
  AccelParams params;
  AccelerometerModel model(params);
  util::Rng rng(1);
  // 10 steps at 1.8 Hz and 50 Hz sampling.
  const auto count = static_cast<std::size_t>(10.0 / 1.8 * 50.0);
  const auto samples = model.walkingSamples(count, 1.8, rng);
  const StepDetector detector;
  const auto peaks = detector.detect(samples, 50.0);
  EXPECT_NEAR(static_cast<double>(peaks.size()), 10.0, 1.0);
}

TEST(StepDetector, NoStepsInIdle) {
  AccelerometerModel model;
  util::Rng rng(2);
  const auto samples = model.idleSamples(300, rng);
  const StepDetector detector;
  EXPECT_LE(detector.detect(samples, 50.0).size(), 1u);
}

TEST(StepDetector, EmptyAndTinyInputs) {
  const StepDetector detector;
  EXPECT_TRUE(detector.detect({}, 50.0).empty());
  const std::vector<double> two{9.8, 12.0};
  EXPECT_TRUE(detector.detect(two, 50.0).empty());
}

TEST(StepDetector, BadSampleRateYieldsNothing) {
  const auto samples = cleanGait(5, 1.8, 50.0);
  const StepDetector detector;
  EXPECT_TRUE(detector.detect(samples, 0.0).empty());
}

TEST(StepDetector, PeaksAreAscendingAndSeparated) {
  const auto samples = cleanGait(8, 2.0, 50.0);
  StepDetectorParams params;
  const StepDetector detector(params);
  const auto peaks = detector.detect(samples, 50.0);
  const auto minGap = static_cast<std::size_t>(
      params.minStepIntervalSec * 50.0);
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_LT(peaks[i - 1], peaks[i]);
    EXPECT_GE(peaks[i] - peaks[i - 1], minGap);
  }
}

TEST(StepDetector, RefractoryWindowSuppressesHarmonic) {
  // A gait with a strong second harmonic would double-count without the
  // refractory gap.
  const double cadence = 1.8;
  const double sampleRate = 50.0;
  const auto count = static_cast<std::size_t>(10 / cadence * sampleRate);
  std::vector<double> samples;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / sampleRate;
    const double theta = 2.0 * geometry::kPi * cadence * t;
    samples.push_back(9.81 + 2.8 * std::sin(theta) +
                      1.4 * std::sin(2.0 * theta));
  }
  const StepDetector detector;
  EXPECT_NEAR(static_cast<double>(detector.detect(samples, 50.0).size()),
              10.0, 1.0);
}

TEST(StepDetector, DetectTimesMatchIndices) {
  const auto samples = cleanGait(5, 1.8, 50.0);
  const StepDetector detector;
  const auto indices = detector.detect(samples, 50.0);
  const auto times = detector.detectTimes(samples, 50.0);
  ASSERT_EQ(indices.size(), times.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    EXPECT_DOUBLE_EQ(times[i], static_cast<double>(indices[i]) / 50.0);
}

TEST(StepDetector, SmoothPreservesConstant) {
  const std::vector<double> flat(20, 5.0);
  const auto smoothed = StepDetector::smooth(flat, 5);
  for (double v : smoothed) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(StepDetector, SmoothWindowOneIsIdentity) {
  const std::vector<double> xs{1.0, 5.0, 2.0};
  EXPECT_EQ(StepDetector::smooth(xs, 1), xs);
}

TEST(StepDetector, SmoothReducesSpikes) {
  std::vector<double> xs(21, 0.0);
  xs[10] = 10.0;
  const auto smoothed = StepDetector::smooth(xs, 5);
  EXPECT_LT(smoothed[10], 10.0);
  EXPECT_GT(smoothed[9], 0.0);
}

/// Parameterized: detection recovers the true step count across
/// cadences and trace lengths.
struct GaitCase {
  int steps;
  double cadence;
};

class StepCountSweepTest : public ::testing::TestWithParam<GaitCase> {};

TEST_P(StepCountSweepTest, RecoversTrueCount) {
  const auto [steps, cadence] = GetParam();
  const auto samples = cleanGait(steps, cadence, 50.0);
  const StepDetector detector;
  EXPECT_EQ(detector.detect(samples, 50.0).size(),
            static_cast<std::size_t>(steps));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StepCountSweepTest,
    ::testing::Values(GaitCase{4, 1.5}, GaitCase{6, 1.7}, GaitCase{8, 1.9},
                      GaitCase{10, 2.1}, GaitCase{15, 1.8},
                      GaitCase{20, 2.0}));

}  // namespace
}  // namespace moloc::sensors
