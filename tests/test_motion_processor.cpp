#include "sensors/motion_processor.hpp"

#include <gtest/gtest.h>

#include "geometry/angles.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "util/rng.hpp"

namespace moloc::sensors {
namespace {

/// Builds a walking trace: `durationSec` of gait at `cadence` with the
/// compass reading `headingDeg` (plus noise).
ImuTrace walkingTrace(double durationSec, double cadence,
                      double headingDeg, double compassNoise,
                      util::Rng& rng) {
  const double rate = 50.0;
  const auto count = static_cast<std::size_t>(durationSec * rate);

  AccelParams accelParams;
  AccelerometerModel accel(accelParams);
  const auto accelSeries = accel.walkingSamples(count, cadence, rng);

  CompassParams compassParams;
  compassParams.noiseSigmaDeg = compassNoise;
  const CompassModel compass(compassParams);
  const auto compassSeries =
      compass.readings(headingDeg, 0.0, count, rng);

  ImuTrace trace(rate);
  for (std::size_t i = 0; i < count; ++i)
    trace.append({static_cast<double>(i) / rate, accelSeries[i],
                  compassSeries[i]});
  return trace;
}

ImuTrace idleTrace(double durationSec, util::Rng& rng) {
  const double rate = 50.0;
  const auto count = static_cast<std::size_t>(durationSec * rate);
  AccelerometerModel accel;
  const auto accelSeries = accel.idleSamples(count, rng);
  ImuTrace trace(rate);
  for (std::size_t i = 0; i < count; ++i)
    trace.append({static_cast<double>(i) / rate, accelSeries[i], 0.0});
  return trace;
}

TEST(MotionProcessor, RecoversDirection) {
  util::Rng rng(1);
  const auto trace = walkingTrace(4.0, 1.8, 135.0, 8.0, rng);
  const MotionProcessor processor;
  const auto motion = processor.process(trace, 0.7);
  ASSERT_TRUE(motion.has_value());
  EXPECT_LT(geometry::angularDistDeg(motion->directionDeg, 135.0), 5.0);
}

TEST(MotionProcessor, RecoversDirectionAcrossNorthWrap) {
  util::Rng rng(2);
  const auto trace = walkingTrace(4.0, 1.8, 358.0, 8.0, rng);
  const MotionProcessor processor;
  const auto motion = processor.process(trace, 0.7);
  ASSERT_TRUE(motion.has_value());
  EXPECT_LT(geometry::angularDistDeg(motion->directionDeg, 358.0), 5.0);
}

TEST(MotionProcessor, RecoversOffset) {
  util::Rng rng(3);
  const double duration = 4.0;
  const double cadence = 1.8;
  const double stepLength = 0.7;
  const auto trace = walkingTrace(duration, cadence, 90.0, 8.0, rng);
  const MotionProcessor processor;
  const auto motion = processor.process(trace, stepLength);
  ASSERT_TRUE(motion.has_value());
  const double trueOffset = duration * cadence * stepLength;
  EXPECT_NEAR(motion->offsetMeters, trueOffset, stepLength);
}

TEST(MotionProcessor, IdleYieldsStationaryMeasurement) {
  util::Rng rng(4);
  const auto trace = idleTrace(4.0, rng);
  const MotionProcessor processor;
  // Standing still is reported as a zero-offset measurement (so the
  // engine's stationary model can use it); step counting still says
  // "no steps".
  const auto motion = processor.process(trace, 0.7);
  ASSERT_TRUE(motion.has_value());
  EXPECT_EQ(motion->offsetMeters, 0.0);
  EXPECT_FALSE(processor.countSteps(trace).has_value());
}

TEST(MotionProcessor, IdleYieldsNothingWhenStationaryReportingOff) {
  util::Rng rng(4);
  const auto trace = idleTrace(4.0, rng);
  MotionProcessorParams params;
  params.reportStationary = false;
  const MotionProcessor processor(params);
  EXPECT_FALSE(processor.process(trace, 0.7).has_value());
}

TEST(MotionProcessor, TinyTraceYieldsNothing) {
  ImuTrace tiny(50.0);
  tiny.append({0.0, 9.8, 0.0});
  tiny.append({0.02, 9.8, 0.0});
  const MotionProcessor processor;
  EXPECT_FALSE(processor.process(tiny, 0.7).has_value());
}

TEST(MotionProcessor, EmptyTraceYieldsNoMeasurement) {
  const ImuTrace trace(50.0);
  const MotionProcessor processor;
  EXPECT_FALSE(processor.process(trace, 0.7).has_value());
}

TEST(MotionProcessor, CscCountsMoreThanDsc) {
  // A trace whose interval extends past the last detected step: CSC
  // attributes the odd time, DSC drops it (the paper's Sec. IV.B.1).
  util::Rng rngA(5);
  util::Rng rngB(5);
  const auto trace = walkingTrace(3.3, 1.8, 0.0, 0.0, rngA);
  (void)rngB;

  MotionProcessorParams dscParams;
  dscParams.mode = StepCountingMode::kDiscrete;
  const MotionProcessor dsc(dscParams);

  MotionProcessorParams cscParams;
  cscParams.mode = StepCountingMode::kContinuous;
  const MotionProcessor csc(cscParams);

  const auto dscCount = dsc.countSteps(trace);
  const auto cscCount = csc.countSteps(trace);
  ASSERT_TRUE(dscCount.has_value());
  ASSERT_TRUE(cscCount.has_value());
  EXPECT_EQ(dscCount->decimalSteps, 0.0);
  EXPECT_GE(cscCount->totalSteps(), dscCount->totalSteps());
}

TEST(MotionProcessor, OffsetScalesWithStepLength) {
  util::Rng rngA(6);
  util::Rng rngB(6);
  const auto traceA = walkingTrace(4.0, 1.8, 90.0, 8.0, rngA);
  const auto traceB = walkingTrace(4.0, 1.8, 90.0, 8.0, rngB);
  const MotionProcessor processor;
  const auto shortStep = processor.process(traceA, 0.6);
  const auto longStep = processor.process(traceB, 0.8);
  ASSERT_TRUE(shortStep && longStep);
  EXPECT_NEAR(longStep->offsetMeters / shortStep->offsetMeters, 0.8 / 0.6,
              1e-9);
}

/// Parameterized end-to-end sweep: offset error stays below one step
/// length across cadences and durations (CSC's guarantee).
struct WalkCase {
  double duration;
  double cadence;
};

class OffsetSweepTest : public ::testing::TestWithParam<WalkCase> {};

TEST_P(OffsetSweepTest, OffsetWithinOneStep) {
  const auto [duration, cadence] = GetParam();
  util::Rng rng(42);
  const double stepLength = 0.72;
  const auto trace = walkingTrace(duration, cadence, 45.0, 8.0, rng);
  const MotionProcessor processor;
  const auto motion = processor.process(trace, stepLength);
  ASSERT_TRUE(motion.has_value());
  const double trueOffset = duration * cadence * stepLength;
  EXPECT_NEAR(motion->offsetMeters, trueOffset, stepLength);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OffsetSweepTest,
    ::testing::Values(WalkCase{2.5, 1.6}, WalkCase{3.0, 1.8},
                      WalkCase{3.7, 2.0}, WalkCase{4.4, 1.7},
                      WalkCase{5.0, 1.9}, WalkCase{6.1, 2.1}));

}  // namespace
}  // namespace moloc::sensors
