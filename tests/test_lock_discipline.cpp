// Lock-discipline stress: every lock the thread-safety annotations
// prove statically (see src/util/thread_annotations.hpp and
// docs/static_analysis.md) exercised together dynamically — serving
// batches on the pool, crowdsourced intake through the MPSC queue into
// the single writer thread (WAL + reservoir + snapshot publishes), and
// checkpoint waiters, all concurrently.  The suite name joins the
// ThreadSanitizer CI job's filter, where this test is the cross-
// subsystem deadlock/race probe: producers touch only the intake
// queue lock and the database's inner mu_ (classify); the writer owns
// writeMu_ → store mu_; serving readers take only shard/slot locks
// plus acquire-loads of the published WorldSnapshot.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "sensors/imu_trace.hpp"
#include "service/localization_service.hpp"
#include "store/state_store.hpp"

namespace moloc::service {
namespace {

radio::FingerprintDatabase fingerprints() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
  db.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  return db;
}

core::MotionDatabase motion() {
  core::MotionDatabase db(3);
  db.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
  db.setEntryWithMirror(1, 2, {117.0, 4.0, 8.9, 0.4, 20});
  return db;
}

std::string freshDir() {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_lockdisc_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(LockDiscipline, ServingIntakeAndCheckpointWaitersOverlap) {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/4,
                                /*seed=*/11);
  store::StoreConfig storeConfig;
  storeConfig.wal.fsync = store::FsyncPolicy::kNone;
  store::StateStore store(freshDir(), storeConfig);

  ServiceConfig config;
  config.threadCount = 4;
  config.shardCount = 4;
  config.engine = core::MoLocConfig{3, {}};
  LocalizationService svc(fingerprints(), motion(), config);
  // A tiny interval so checkpoints trigger constantly while intake and
  // serving are active — the contended path the annotations prove.
  svc.attachIntake(&db, &store, /*checkpointEveryRecords=*/5);

  constexpr int kRounds = 40;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  // Serving: batches of overlapping sessions on the pool.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&svc, &failures, t] {
      const sensors::ImuTrace noImu(50.0);
      const radio::Fingerprint scan({-50.0 + 0.1 * t, -60.0});
      for (int i = 0; i < kRounds; ++i) {
        std::vector<ScanRequest> batch;
        for (int s = 0; s < 4; ++s)
          batch.push_back(
              {static_cast<SessionId>((t * 2 + s) % 5), scan, noImu});
        if (svc.localizeBatch(batch).size() != batch.size())
          failures.fetch_add(1);
      }
    });
  }
  // Intake: crowdsourced observations through db + WAL, triggering
  // background checkpoints every few records.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&svc, &failures, t] {
      for (int i = 0; i < kRounds; ++i) {
        try {
          svc.reportObservation((i + t) % 2, 1 + (i + t) % 2,
                                88.0 + 0.2 * (i % 9),
                                3.7 + 0.02 * (i % 11));
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Checkpoint waiters: block on the in-flight flag while the others
  // keep starting new checkpoints.
  threads.emplace_back([&svc] {
    for (int i = 0; i < kRounds; ++i) svc.waitForCheckpoint();
  });
  // Snapshot readers: pin published worlds while the writer keeps
  // publishing new ones; generations must be monotone per reader and
  // a pinned world must stay internally consistent.
  threads.emplace_back([&svc, &failures] {
    std::uint64_t lastGeneration = 0;
    for (int i = 0; i < 4 * kRounds; ++i) {
      const auto world = svc.currentWorld();
      if (!world || world->generation() < lastGeneration ||
          world->adjacency().locationCount() !=
              world->motion().locationCount())
        failures.fetch_add(1);
      if (world) lastGeneration = world->generation();
    }
  });
  for (auto& thread : threads) thread.join();

  svc.flushIntake();  // Everything admitted is applied + published.
  svc.waitForCheckpoint();
  EXPECT_EQ(0, failures.load());
  // Intake threads * rounds observations were offered (classified at
  // admission); every accepted one must have reached the WAL — the
  // writer thread logs before it applies, in queue order.
  EXPECT_EQ(db.counters().observations,
            static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_EQ(store.lastSeq(), db.counters().accepted);
  EXPECT_GT(store.lastCheckpointSeq(), 0u);
  EXPECT_GE(svc.intakeStats().publishes, 1u);
}

}  // namespace
}  // namespace moloc::service
