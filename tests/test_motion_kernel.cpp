#include "kernel/motion_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/motion_database.hpp"
#include "core/motion_matcher.hpp"
#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"

namespace moloc::kernel {
namespace {

core::RlmStats stats(double muDir, double sigmaDir, double muOff,
                     double sigmaOff) {
  return {muDir, sigmaDir, muOff, sigmaOff, 5};
}

TEST(MotionKernelTest, MakeWindowPrecomputesInverseSigmaConstants) {
  const auto w = makeWindow(3, stats(90.0, 12.0, 4.0, 0.8));
  EXPECT_EQ(w.to, 3);
  EXPECT_EQ(w.muDirectionDeg, 90.0);
  EXPECT_EQ(w.invSqrt2SigmaDir, 1.0 / (12.0 * kSqrt2));
  EXPECT_EQ(w.muOffsetMeters, 4.0);
  EXPECT_EQ(w.invSqrt2SigmaOff, 1.0 / (0.8 * kSqrt2));
}

TEST(MotionKernelTest, MakeWindowZeroesConstantsForDegenerateSigma) {
  const auto zero = makeWindow(0, stats(0.0, 0.0, 1.0, -1.0));
  EXPECT_EQ(zero.invSqrt2SigmaDir, 0.0);
  EXPECT_EQ(zero.invSqrt2SigmaOff, 0.0);
  const auto nan = makeWindow(
      0, stats(0.0, std::numeric_limits<double>::quiet_NaN(), 1.0, 2.0));
  EXPECT_EQ(nan.invSqrt2SigmaDir, 0.0);
  EXPECT_NE(nan.invSqrt2SigmaOff, 0.0);
}

TEST(MotionKernelTest, DegenerateSigmaClassification) {
  EXPECT_TRUE(degenerateSigma(0.0));
  EXPECT_TRUE(degenerateSigma(-3.0));
  EXPECT_TRUE(degenerateSigma(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(degenerateSigma(1e-12));
  // +inf stays on the erf path, which honestly integrates to ~0 mass.
  EXPECT_FALSE(degenerateSigma(std::numeric_limits<double>::infinity()));
}

TEST(MotionKernelTest, WindowMassMatchesInlineGaussianFormBitwise) {
  for (const double sigma : {0.5, 2.0, 17.0}) {
    for (const double x : {-3.0, 0.0, 4.25, 90.0}) {
      const double viaWindow =
          windowMass(x, 1.5, 2.0, 1.0 / (sigma * kSqrt2));
      const double viaInline =
          core::gaussianWindowProbability(x, 1.5, 2.0, sigma);
      EXPECT_EQ(viaWindow, viaInline) << "sigma=" << sigma << " x=" << x;
    }
  }
}

TEST(MotionKernelTest, GaussianWindowGuardsNonFiniteSigma) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN sigma degrades to the indicator instead of poisoning erf.
  EXPECT_EQ(core::gaussianWindowProbability(2.0, 1.0, 2.5, nan), 1.0);
  EXPECT_EQ(core::gaussianWindowProbability(2.0, 1.0, 9.0, nan), 0.0);
  // +inf sigma: infinitely wide Gaussian, honestly no mass in a window.
  EXPECT_EQ(core::gaussianWindowProbability(2.0, 1.0, 2.0, inf), 0.0);
  // Degenerate zero/negative sigmas are indicators.
  EXPECT_EQ(core::gaussianWindowProbability(2.0, 1.0, 2.5, 0.0), 1.0);
  EXPECT_EQ(core::gaussianWindowProbability(2.0, 1.0, 9.0, -2.0), 0.0);
  EXPECT_EQ(core::circularGaussianWindowProbability(10.0, 15.0, nan), 1.0);
  EXPECT_EQ(core::circularGaussianWindowProbability(40.0, 15.0, nan), 0.0);
}

TEST(MotionAdjacencyTest, RebuildIndexesExactlyThePopulatedPairs) {
  core::MotionDatabase db(4);
  db.setEntry(0, 1, stats(90.0, 10.0, 4.0, 1.0));
  db.setEntry(0, 3, stats(45.0, 8.0, 6.0, 1.5));
  db.setEntry(2, 1, stats(270.0, 12.0, 3.0, 0.5));

  MotionAdjacency adj;
  adj.rebuild(db);
  EXPECT_EQ(adj.locationCount(), 4u);
  EXPECT_EQ(adj.edgeCount(), db.entryCount());

  const auto row0 = adj.outEdges(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].to, 1);  // Sorted by destination.
  EXPECT_EQ(row0[1].to, 3);
  EXPECT_TRUE(adj.outEdges(1).empty());
  EXPECT_TRUE(adj.outEdges(3).empty());

  const PairWindow* found = adj.find(2, 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->muDirectionDeg, 270.0);
  EXPECT_EQ(found->invSqrt2SigmaOff, 1.0 / (0.5 * kSqrt2));
  EXPECT_EQ(adj.find(1, 2), nullptr);
  EXPECT_EQ(adj.find(3, 0), nullptr);
}

TEST(MotionAdjacencyTest, IndexIsFrozenUntilExplicitRebuild) {
  // The index has no link back to its source database: mutations after
  // a build are invisible until a caller explicitly rebuilds.  This is
  // the contract the snapshot publication path relies on.
  core::MotionDatabase db(3);
  MotionAdjacency adj(db);
  EXPECT_EQ(adj.locationCount(), 3u);
  EXPECT_EQ(adj.edgeCount(), 0u);

  db.setEntry(0, 1, stats(90.0, 10.0, 4.0, 1.0));
  EXPECT_EQ(adj.edgeCount(), 0u);
  EXPECT_EQ(adj.find(0, 1), nullptr);

  adj.rebuild(db);
  EXPECT_EQ(adj.edgeCount(), 1u);
  ASSERT_NE(adj.find(0, 1), nullptr);
  EXPECT_EQ(adj.find(0, 1)->muDirectionDeg, 90.0);

  EXPECT_TRUE(db.clearEntry(0, 1));
  EXPECT_EQ(adj.edgeCount(), 1u);  // Still the frozen view.
  adj.rebuild(db);
  EXPECT_EQ(adj.edgeCount(), 0u);
}

TEST(MotionMatcherKernelTest, ScoreCandidatesMatchesSetProbabilityBitwise) {
  core::MotionDatabase db(5);
  db.setEntryWithMirror(0, 1, stats(90.0, 10.0, 4.0, 1.0));
  db.setEntryWithMirror(1, 2, stats(0.0, 15.0, 5.0, 1.2));
  db.setEntry(3, 4, stats(180.0, 9.0, 2.5, 0.7));
  const core::MotionMatcher matcher(db);

  const std::vector<core::WeightedCandidate> prev{
      {0, 0.4}, {1, 0.3}, {2, 0.2}, {4, 0.1}};
  const std::vector<env::LocationId> targets{0, 1, 2, 3, 4};
  const sensors::MotionMeasurement motion{88.0, 4.2};

  std::vector<double> scores;
  matcher.scoreCandidates(prev, targets, motion, scores);
  ASSERT_EQ(scores.size(), targets.size());
  for (std::size_t c = 0; c < targets.size(); ++c)
    EXPECT_EQ(scores[c],
              matcher.setProbability(prev, targets[c], motion))
        << "target=" << targets[c];
}

TEST(MotionMatcherKernelTest, RebindAdoptsNewerPublishedWorld) {
  // The serving contract after the snapshot refactor: a matcher is a
  // frozen view of the world it was built (or last rebound) against.
  // Entries published to the online database later stay invisible —
  // and the frozen scores stay bitwise-stable — until the caller
  // rebinds to a newer snapshot's index.
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  core::BuilderConfig config;
  config.minSamplesPerPair = 3;
  core::OnlineMotionDatabase online(plan, config);
  core::MotionMatcher matcher(online.database());

  const std::vector<core::WeightedCandidate> prev{{0, 1.0}};
  const sensors::MotionMeasurement motion{90.0, 4.0};
  // No published entries yet: the pair takes the unreachable floor.
  const double before = matcher.setProbability(prev, 1, motion);
  EXPECT_EQ(before, matcher.params().unreachableFloor);

  EXPECT_TRUE(online.addObservation(0, 1, 90.0, 4.0));
  EXPECT_TRUE(online.addObservation(0, 1, 91.0, 4.1));
  EXPECT_TRUE(online.addObservation(0, 1, 89.0, 3.9));
  ASSERT_TRUE(online.database().hasEntry(0, 1));

  // Still the frozen world: late entries do not bleed into readers.
  EXPECT_EQ(matcher.setProbability(prev, 1, motion), before);

  // Publish: freeze the database into a fresh shared index and rebind.
  const auto published =
      std::make_shared<const MotionAdjacency>(online.databaseCopy());
  matcher.rebind(published);
  EXPECT_EQ(matcher.adjacencyPtr().get(), published.get());
  EXPECT_GT(matcher.setProbability(prev, 1, motion), before);
}

TEST(MotionMatcherKernelTest, SurvivesDatabaseDestroyAndStorageReuse) {
  // Regression for the ABA hazard of the retired version-stamp cache:
  // it keyed staleness on the database's *address*, so destroying a
  // database and reusing its storage for a new one could alias a stale
  // adjacency onto the newcomer.  A matcher now owns its index
  // outright — it neither rereads the dead database nor confuses the
  // replacement living at the same address.
  std::optional<core::MotionDatabase> db;
  db.emplace(2);
  db->setEntry(0, 1, stats(90.0, 10.0, 4.0, 1.0));
  const core::MotionMatcher matcher(*db);

  const std::vector<core::WeightedCandidate> prev{{0, 1.0}};
  const sensors::MotionMeasurement motion{90.0, 4.0};
  const double before = matcher.setProbability(prev, 1, motion);
  EXPECT_GT(before, matcher.params().unreachableFloor);

  // Destroy and construct a new, *empty* database in the same storage
  // — the exact shape that used to alias the stale cache.
  db.emplace(2);
  EXPECT_EQ(db->entryCount(), 0u);
  EXPECT_EQ(matcher.setProbability(prev, 1, motion), before);
  EXPECT_EQ(matcher.adjacency().edgeCount(), 1u);

  // A matcher built from the reused storage sees the new (empty) world.
  const core::MotionMatcher fresh(*db);
  EXPECT_EQ(fresh.setProbability(prev, 1, motion),
            fresh.params().unreachableFloor);

  // Fully destroyed: the original matcher never dereferences its
  // source, so scoring stays valid and bitwise-stable.
  db.reset();
  EXPECT_EQ(matcher.setProbability(prev, 1, motion), before);
}

}  // namespace
}  // namespace moloc::kernel
