#include "sensors/compass_calibrator.hpp"

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"
#include "util/rng.hpp"

namespace moloc::sensors {
namespace {

TEST(CompassCalibrator, NoEvidenceIsZero) {
  const CompassCalibrator calibrator;
  EXPECT_EQ(calibrator.estimatedBiasDeg(), 0.0);
  EXPECT_EQ(calibrator.robustBiasDeg(), 0.0);
  EXPECT_EQ(calibrator.legCount(), 0u);
}

TEST(CompassCalibrator, RecoversConstantBias) {
  CompassCalibrator calibrator;
  util::Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    const double mapDir = rng.uniform(0.0, 360.0);
    calibrator.addLeg(mapDir + 12.0 + rng.normal(0.0, 3.0), mapDir);
  }
  EXPECT_NEAR(calibrator.estimatedBiasDeg(), 12.0, 1.5);
  EXPECT_NEAR(calibrator.robustBiasDeg(), 12.0, 2.5);
}

TEST(CompassCalibrator, RecoversNegativeBias) {
  CompassCalibrator calibrator;
  util::Rng rng(2);
  for (int i = 0; i < 60; ++i) {
    const double mapDir = rng.uniform(0.0, 360.0);
    calibrator.addLeg(mapDir - 20.0 + rng.normal(0.0, 3.0), mapDir);
  }
  EXPECT_NEAR(calibrator.estimatedBiasDeg(), -20.0, 1.5);
}

TEST(CompassCalibrator, HandlesWrapAroundNorth) {
  CompassCalibrator calibrator;
  // Legs near north with a +10 bias: residuals straddle 0/360.
  for (double mapDir : {350.0, 355.0, 0.0, 5.0, 10.0})
    calibrator.addLeg(mapDir + 10.0, mapDir);
  EXPECT_NEAR(calibrator.estimatedBiasDeg(), 10.0, 1e-9);
}

TEST(CompassCalibrator, RobustEstimateResistsBadLegs) {
  CompassCalibrator calibrator;
  util::Rng rng(3);
  // 70 % honest legs with +8 bias, 30 % mis-estimated legs whose
  // residuals are junk.
  for (int i = 0; i < 70; ++i) {
    const double mapDir = rng.uniform(0.0, 360.0);
    calibrator.addLeg(mapDir + 8.0 + rng.normal(0.0, 3.0), mapDir);
  }
  for (int i = 0; i < 30; ++i) {
    const double mapDir = rng.uniform(0.0, 360.0);
    calibrator.addLeg(rng.uniform(0.0, 360.0), mapDir);
  }
  EXPECT_NEAR(calibrator.robustBiasDeg(), 8.0, 4.0);
}

TEST(CompassCalibrator, ResetClears) {
  CompassCalibrator calibrator;
  calibrator.addLeg(100.0, 90.0);
  EXPECT_EQ(calibrator.legCount(), 1u);
  calibrator.reset();
  EXPECT_EQ(calibrator.legCount(), 0u);
  EXPECT_EQ(calibrator.estimatedBiasDeg(), 0.0);
}

TEST(CompassCalibrator, WorldCalibrationRecoversPlacementBias) {
  // End to end: a cohort carrying phones with a +18 degree placement
  // bias; calibration must recover most of it from training walks.
  eval::WorldConfig config;
  config.trainingTraces = 60;
  config.legsPerTrainingTrace = 15;
  config.userPlacementBiasDeg = 18.0;
  config.calibrateCompass = true;
  eval::ExperimentWorld world(config);
  for (const auto& user : world.users())
    EXPECT_NEAR(world.compassBiasCorrectionDeg(user), 18.0, 6.0)
        << user.name;
}

TEST(CompassCalibrator, WorldCalibrationNearZeroWithoutBias) {
  eval::WorldConfig config;
  config.trainingTraces = 60;
  config.legsPerTrainingTrace = 15;
  config.calibrateCompass = true;
  eval::ExperimentWorld world(config);
  for (const auto& user : world.users())
    EXPECT_NEAR(world.compassBiasCorrectionDeg(user), 0.0, 6.0)
        << user.name;
}

TEST(CompassCalibrator, DisabledCalibrationIsIdentity) {
  eval::WorldConfig config;
  config.trainingTraces = 20;
  config.legsPerTrainingTrace = 10;
  config.userPlacementBiasDeg = 18.0;
  eval::ExperimentWorld world(config);
  for (const auto& user : world.users())
    EXPECT_EQ(world.compassBiasCorrectionDeg(user), 0.0);
}

}  // namespace
}  // namespace moloc::sensors
