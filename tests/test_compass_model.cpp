#include "sensors/compass_model.hpp"

#include <gtest/gtest.h>

#include "geometry/angles.hpp"
#include "util/stats.hpp"

namespace moloc::sensors {
namespace {

TEST(CompassModel, ReadingsAreWrapped) {
  CompassParams params;
  params.noiseSigmaDeg = 30.0;
  const CompassModel compass(params);
  util::Rng rng(1);
  const auto readings = compass.readings(355.0, 0.0, 200, rng);
  for (double r : readings) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 360.0);
  }
}

TEST(CompassModel, NoiselessUnbiasedIsExact) {
  CompassParams params;
  params.noiseSigmaDeg = 0.0;
  const CompassModel compass(params);
  util::Rng rng(2);
  const auto readings = compass.readings(123.0, 0.0, 10, rng);
  for (double r : readings) EXPECT_DOUBLE_EQ(r, 123.0);
}

TEST(CompassModel, BiasShiftsReadings) {
  CompassParams params;
  params.noiseSigmaDeg = 0.0;
  const CompassModel compass(params);
  util::Rng rng(3);
  const auto readings = compass.readings(90.0, 7.5, 5, rng);
  for (double r : readings) EXPECT_DOUBLE_EQ(r, 97.5);
}

TEST(CompassModel, CircularMeanRecoversHeading) {
  const CompassModel compass;
  util::Rng rng(4);
  // A heading near north exercises the wrap-around.
  const auto readings = compass.readings(2.0, 0.0, 2000, rng);
  const double mean = geometry::circularMeanDeg(readings);
  EXPECT_LT(geometry::angularDistDeg(mean, 2.0), 1.0);
}

TEST(CompassModel, NoiseMagnitudeMatchesSigma) {
  CompassParams params;
  params.noiseSigmaDeg = 8.0;
  const CompassModel compass(params);
  util::Rng rng(5);
  const auto readings = compass.readings(180.0, 0.0, 5000, rng);
  std::vector<double> deviations;
  deviations.reserve(readings.size());
  for (double r : readings)
    deviations.push_back(geometry::signedAngularDiffDeg(180.0, r));
  EXPECT_NEAR(util::stddev(deviations), 8.0, 0.5);
}

TEST(CompassModel, ResidualBiasSpreadMatchesSigma) {
  CompassParams params;
  params.residualBiasSigmaDeg = 3.0;
  const CompassModel compass(params);
  util::Rng rng(6);
  std::vector<double> biases;
  for (int i = 0; i < 5000; ++i)
    biases.push_back(compass.drawResidualBias(rng));
  EXPECT_NEAR(util::mean(biases), 0.0, 0.2);
  EXPECT_NEAR(util::stddev(biases), 3.0, 0.2);
}

TEST(CompassModel, RequestedCountProduced) {
  const CompassModel compass;
  util::Rng rng(7);
  EXPECT_EQ(compass.readings(0.0, 0.0, 0, rng).size(), 0u);
  EXPECT_EQ(compass.readings(0.0, 0.0, 42, rng).size(), 42u);
}

}  // namespace
}  // namespace moloc::sensors
