#include "io/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"

namespace moloc::io {
namespace {

radio::FingerprintDatabase sampleFingerprintDb() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-40.5, -70.25, -55.0}));
  db.addLocation(2, radio::Fingerprint({-60.125, -45.0, -80.5}));
  db.addLocation(1, radio::Fingerprint({-50.0, -50.0, -50.0}));
  return db;
}

core::MotionDatabase sampleMotionDb() {
  core::MotionDatabase db(4);
  db.setEntryWithMirror(0, 1, {90.25, 4.5, 5.7, 0.25, 17});
  db.setEntryWithMirror(1, 2, {180.0, 3.0, 4.0, 0.125, 9});
  db.setEntry(3, 3, {0.0, 2.0, 0.0, 0.05, 2});  // Asymmetric entry.
  return db;
}

TEST(Serialization, FingerprintRoundTrip) {
  const auto original = sampleFingerprintDb();
  std::stringstream stream;
  saveFingerprintDatabase(original, stream);
  const auto restored = loadFingerprintDatabase(stream);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.apCount(), original.apCount());
  for (const auto id : original.locationIds()) {
    ASSERT_TRUE(restored.contains(id));
    const auto& a = original.entry(id);
    const auto& b = restored.entry(id);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Serialization, MotionRoundTrip) {
  const auto original = sampleMotionDb();
  std::stringstream stream;
  saveMotionDatabase(original, stream);
  const auto restored = loadMotionDatabase(stream);

  EXPECT_EQ(restored.locationCount(), original.locationCount());
  EXPECT_EQ(restored.entryCount(), original.entryCount());
  for (env::LocationId i = 0; i < 4; ++i) {
    for (env::LocationId j = 0; j < 4; ++j) {
      const auto a = original.entry(i, j);
      const auto b = restored.entry(i, j);
      ASSERT_EQ(a.has_value(), b.has_value()) << i << "," << j;
      if (!a) continue;
      EXPECT_EQ(a->muDirectionDeg, b->muDirectionDeg);
      EXPECT_EQ(a->sigmaDirectionDeg, b->sigmaDirectionDeg);
      EXPECT_EQ(a->muOffsetMeters, b->muOffsetMeters);
      EXPECT_EQ(a->sigmaOffsetMeters, b->sigmaOffsetMeters);
      EXPECT_EQ(a->sampleCount, b->sampleCount);
    }
  }
}

TEST(Serialization, EmptyDatabasesRoundTrip) {
  {
    std::stringstream stream;
    saveMotionDatabase(core::MotionDatabase(5), stream);
    const auto restored = loadMotionDatabase(stream);
    EXPECT_EQ(restored.locationCount(), 5u);
    EXPECT_EQ(restored.entryCount(), 0u);
  }
}

TEST(Serialization, FingerprintRejectsBadHeader) {
  std::stringstream stream("not-a-db v1\naps 2\n");
  EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error);
}

TEST(Serialization, MotionRejectsBadHeader) {
  std::stringstream stream("moloc-fingerprint-db v1\n");
  EXPECT_THROW(loadMotionDatabase(stream), std::runtime_error);
}

TEST(Serialization, FingerprintRejectsWrongRssCount) {
  std::stringstream stream(
      "moloc-fingerprint-db v1\naps 3\nlocation 0 -40 -50\n");
  EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error);
}

TEST(Serialization, FingerprintRejectsZeroAps) {
  std::stringstream stream("moloc-fingerprint-db v1\naps 0\n");
  EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error);
}

TEST(Serialization, FingerprintRejectsDuplicateIds) {
  std::stringstream stream(
      "moloc-fingerprint-db v1\naps 1\nlocation 0 -40\nlocation 0 "
      "-41\n");
  EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error);
}

TEST(Serialization, FingerprintRejectsGarbageRow) {
  std::stringstream stream(
      "moloc-fingerprint-db v1\naps 1\nbogus 0 -40\n");
  EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error);
}

TEST(Serialization, MotionRejectsOutOfRangeIds) {
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\nentry 0 5 90 3 4 0.2 7\n");
  EXPECT_THROW(loadMotionDatabase(stream), std::runtime_error);
}

TEST(Serialization, MotionRejectsTruncatedEntry) {
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\nentry 0 1 90 3\n");
  EXPECT_THROW(loadMotionDatabase(stream), std::runtime_error);
}

TEST(Serialization, MotionRejectsTrailingData) {
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\nentry 0 1 90 3 4 0.2 7 junk\n");
  EXPECT_THROW(loadMotionDatabase(stream), std::runtime_error);
}

TEST(Serialization, ErrorsCarryLineNumbers) {
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\nentry 0 1 90 3 4 0.2 7\nbad\n");
  try {
    loadMotionDatabase(stream);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, ProbabilisticRoundTrip) {
  radio::ProbabilisticFingerprintDatabase original;
  original.addFittedLocation(0, {-40.5, -70.25}, {2.5, 3.75});
  original.addFittedLocation(3, {-60.0, -45.5}, {1.25, 4.0});

  std::stringstream stream;
  saveProbabilisticDatabase(original, stream);
  const auto restored = loadProbabilisticDatabase(stream);

  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.apCount(), 2u);
  for (const auto id : original.locationIds()) {
    ASSERT_TRUE(restored.contains(id));
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(restored.mu(id)[i], original.mu(id)[i]);
      EXPECT_EQ(restored.sigma(id)[i], original.sigma(id)[i]);
    }
  }
  // Behavioural equality: identical rankings for a probe.
  const radio::Fingerprint probe({-50.0, -60.0});
  EXPECT_EQ(restored.mostLikely(probe), original.mostLikely(probe));
}

TEST(Serialization, ProbabilisticLoadFloorsSigma) {
  std::stringstream stream(
      "moloc-probabilistic-db v1\naps 1\nlocation 0 mu -40 sigma 0.1\n");
  const auto db = loadProbabilisticDatabase(stream);
  EXPECT_GE(db.sigma(0)[0],
            radio::ProbabilisticFingerprintDatabase::kMinSigmaDb);
}

TEST(Serialization, ProbabilisticRejectsMalformed) {
  {
    std::stringstream stream("wrong-header\n");
    EXPECT_THROW(loadProbabilisticDatabase(stream), std::runtime_error);
  }
  {
    std::stringstream stream(
        "moloc-probabilistic-db v1\naps 2\nlocation 0 mu -40 sigma 1 "
        "2\n");
    EXPECT_THROW(loadProbabilisticDatabase(stream), std::runtime_error);
  }
  {
    std::stringstream stream(
        "moloc-probabilistic-db v1\naps 1\nlocation 0 mu -40 -50 sigma "
        "1\n");
    EXPECT_THROW(loadProbabilisticDatabase(stream), std::runtime_error);
  }
  {
    std::stringstream stream(
        "moloc-probabilistic-db v1\naps 1\nlocation 0 mu -40\n");
    EXPECT_THROW(loadProbabilisticDatabase(stream), std::runtime_error);
  }
}

TEST(Serialization, FileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string fpPath = dir + "moloc_fp_db.txt";
  const std::string motionPath = dir + "moloc_motion_db.txt";

  saveFingerprintDatabase(sampleFingerprintDb(), fpPath);
  saveMotionDatabase(sampleMotionDb(), motionPath);

  EXPECT_EQ(loadFingerprintDatabase(fpPath).size(), 3u);
  EXPECT_EQ(loadMotionDatabase(motionPath).entryCount(), 5u);

  std::remove(fpPath.c_str());
  std::remove(motionPath.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(loadFingerprintDatabase("/nonexistent/x.txt"),
               std::runtime_error);
  EXPECT_THROW(loadMotionDatabase("/nonexistent/x.txt"),
               std::runtime_error);
  EXPECT_THROW(
      saveMotionDatabase(core::MotionDatabase(1), "/nonexistent/x.txt"),
      std::runtime_error);
}

TEST(Serialization, SkipsBlankLines) {
  std::stringstream stream(
      "moloc-motion-db v1\n\nlocations 2\n\nentry 0 1 90 3 4 0.2 7\n\n");
  const auto db = loadMotionDatabase(stream);
  EXPECT_EQ(db.entryCount(), 1u);
}

TEST(Serialization, GarbageInputsThrowCleanly) {
  // Fuzz-ish: random byte soup must produce a clean exception from
  // every loader, never UB or an accepted database.
  moloc::util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const int length = rng.uniformInt(0, 400);
    for (int i = 0; i < length; ++i)
      garbage += static_cast<char>(rng.uniformInt(9, 126));
    {
      std::stringstream stream(garbage);
      EXPECT_THROW(loadFingerprintDatabase(stream), std::runtime_error)
          << garbage;
    }
    {
      std::stringstream stream(garbage);
      EXPECT_THROW(loadMotionDatabase(stream), std::runtime_error);
    }
    {
      std::stringstream stream(garbage);
      EXPECT_THROW(loadProbabilisticDatabase(stream),
                   std::runtime_error);
    }
  }
}

TEST(Serialization, TruncatedValidFilesThrowCleanly) {
  // Every prefix of a valid file either loads (when it happens to end
  // at a record boundary) or throws a runtime_error — never crashes.
  std::stringstream full;
  saveMotionDatabase(sampleMotionDb(), full);
  const std::string text = full.str();
  for (std::size_t cut = 0; cut < text.size(); cut += 7) {
    std::stringstream stream(text.substr(0, cut));
    try {
      (void)loadMotionDatabase(stream);
    } catch (const std::runtime_error&) {
      // Expected for most cuts.
    }
  }
}

TEST(Serialization, RealWorldDatabaseRoundTrips) {
  // A crowdsourced database from a small experiment world survives the
  // round trip bit-exactly (precision 17 covers doubles).
  // Kept small for test speed.
  core::MotionDatabase db(28);
  moloc::util::Rng rng(3);
  for (int e = 0; e < 40; ++e) {
    const auto i = static_cast<env::LocationId>(rng.uniformInt(0, 27));
    const auto j = static_cast<env::LocationId>(rng.uniformInt(0, 27));
    if (i == j) continue;
    db.setEntryWithMirror(
        i, j,
        {rng.uniform(0.0, 360.0), rng.uniform(1.0, 10.0),
         rng.uniform(3.0, 7.0), rng.uniform(0.05, 0.5),
         rng.uniformInt(3, 60)});
  }
  std::stringstream stream;
  saveMotionDatabase(db, stream);
  const auto restored = loadMotionDatabase(stream);
  EXPECT_EQ(restored.entryCount(), db.entryCount());
  for (env::LocationId i = 0; i < 28; ++i) {
    for (env::LocationId j = 0; j < 28; ++j) {
      if (db.hasEntry(i, j)) {
        EXPECT_EQ(db.entry(i, j)->muDirectionDeg,
                  restored.entry(i, j)->muDirectionDeg);
      }
    }
  }
}

TEST(Serialization, SaveRestoresCallerStreamFormatting) {
  // Regression: the save functions set precision(17) on the caller's
  // stream and never restored it, permanently mutating how every later
  // double printed.
  std::stringstream out;
  out.precision(3);
  out.setf(std::ios::fixed, std::ios::floatfield);
  const auto precisionBefore = out.precision();
  const auto flagsBefore = out.flags();

  saveFingerprintDatabase(sampleFingerprintDb(), out);
  EXPECT_EQ(out.precision(), precisionBefore);
  EXPECT_EQ(out.flags(), flagsBefore);

  saveMotionDatabase(sampleMotionDb(), out);
  EXPECT_EQ(out.precision(), precisionBefore);
  EXPECT_EQ(out.flags(), flagsBefore);

  // The caller's formatting still applies after a save.
  std::stringstream probe;
  probe.precision(3);
  probe.setf(std::ios::fixed, std::ios::floatfield);
  saveFingerprintDatabase(sampleFingerprintDb(), probe);
  probe.str("");
  probe << 1.23456789;
  EXPECT_EQ(probe.str(), "1.235");
}

TEST(Serialization, RoundTripExactDespiteCallerFormatting) {
  // Caller formatting (low precision, fixed) must not leak INTO the
  // save either: doubles still round-trip bit-exactly.
  const auto original = sampleFingerprintDb();
  std::stringstream stream;
  stream.precision(2);
  stream.setf(std::ios::fixed, std::ios::floatfield);
  saveFingerprintDatabase(original, stream);
  const auto restored = loadFingerprintDatabase(stream);
  for (const auto id : original.locationIds()) {
    const auto& a = original.entry(id);
    const auto& b = restored.entry(id);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Serialization, MissingTrailingNewlineThrowsWithLineNumber) {
  // Every saver ends the file with '\n'; a missing one means the last
  // record may be torn, so the loader must refuse it — with the line.
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\nentry 0 1 90 3 4 0.2 7");
  try {
    loadMotionDatabase(stream);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("newline"), std::string::npos) << what;
  }
}

TEST(Serialization, MotionRejectsDuplicateEntries) {
  std::stringstream stream(
      "moloc-motion-db v1\nlocations 2\n"
      "entry 0 1 90 3 4 0.2 7\n"
      "entry 0 1 91 3 4 0.2 8\n");
  try {
    loadMotionDatabase(stream);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate entry"), std::string::npos) << what;
  }
}

TEST(Serialization, MotionRejectsLocationCountBomb) {
  // A dense n x n header with a giant n sized a multi-gigabyte matrix
  // before any entry line was read (found by the serialization fuzz
  // target; fuzz/corpus/regressions).  The loader now bounds n.
  std::stringstream stream("moloc-motion-db v1\nlocations 1000000000\n");
  try {
    loadMotionDatabase(stream);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("maximum"), std::string::npos) << what;
  }
}

TEST(Serialization, VersionMismatchNamesTheFoundVersion) {
  std::stringstream stream("moloc-motion-db v2\nlocations 2\n");
  try {
    loadMotionDatabase(stream);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("version 'v2'"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 'v1'"), std::string::npos) << what;
  }
}

TEST(Serialization, PathSaveIsAtomicAndLeavesNoTemporary) {
  const std::string path =
      ::testing::TempDir() + "moloc_atomic_save_test.txt";
  std::remove(path.c_str());
  // Pre-existing content a torn save must never destroy.
  {
    std::ofstream prior(path);
    prior << "previous generation\n";
  }
  saveMotionDatabase(sampleMotionDb(), path);
  const auto restored = loadMotionDatabase(path);
  EXPECT_EQ(restored.entryCount(), sampleMotionDb().entryCount());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "temporary file left behind";
  std::remove(path.c_str());
}

TEST(Serialization, FailedPathSaveNamesThePath) {
  const std::string path = ::testing::TempDir() +
                           "moloc_no_such_dir_xyz/db.txt";
  try {
    saveMotionDatabase(sampleMotionDb(), path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace moloc::io
