#include "store/state_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "obs/metrics.hpp"
#include "store/fault_injection.hpp"
#include "store/format.hpp"
#include "store/wal.hpp"

namespace moloc::store {
namespace {

constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kFrameBytes = 41;

std::string freshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_store_" + tag +
                          "_" + std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

struct Obs {
  env::LocationId start, end;
  double directionDeg, offsetMeters;
};

/// A stream with accepted, coarse-rejected, and self-pair observations
/// mixed in — rejections must never reach the log.
std::vector<Obs> mixedStream(int n) {
  std::vector<Obs> out;
  for (int k = 0; k < n; ++k) {
    if (k % 7 == 3) {
      out.push_back({0, 1, 179.0, 4.0});  // Coarse-rejected (direction).
    } else if (k % 11 == 5) {
      out.push_back({1, 1, 90.0, 0.0});  // Self-pair.
    } else {
      const env::LocationId a = k % 2, b = 1 + k % 2;
      out.push_back({a, b, 87.0 + 0.3 * (k % 13), 3.6 + 0.03 * (k % 17)});
    }
  }
  return out;
}

void expectIdenticalState(const core::OnlineMotionDatabase& a,
                          const core::OnlineMotionDatabase& b) {
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.rngState, sb.rngState);
  ASSERT_EQ(sa.reservoirs.size(), sb.reservoirs.size());
  for (std::size_t p = 0; p < sa.reservoirs.size(); ++p) {
    EXPECT_EQ(sa.reservoirs[p].i, sb.reservoirs[p].i);
    EXPECT_EQ(sa.reservoirs[p].j, sb.reservoirs[p].j);
    EXPECT_EQ(sa.reservoirs[p].seen, sb.reservoirs[p].seen);
    ASSERT_EQ(sa.reservoirs[p].samples.size(),
              sb.reservoirs[p].samples.size());
    for (std::size_t k = 0; k < sa.reservoirs[p].samples.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sa.reservoirs[p].samples[k].directionDeg),
                std::bit_cast<std::uint64_t>(
                    sb.reservoirs[p].samples[k].directionDeg));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sa.reservoirs[p].samples[k].offsetMeters),
                std::bit_cast<std::uint64_t>(
                    sb.reservoirs[p].samples[k].offsetMeters));
    }
  }
  ASSERT_EQ(sa.entries.size(), sb.entries.size());
  for (std::size_t e = 0; e < sa.entries.size(); ++e) {
    EXPECT_EQ(sa.entries[e].i, sb.entries[e].i);
    EXPECT_EQ(sa.entries[e].j, sb.entries[e].j);
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(sa.entries[e].stats.muDirectionDeg),
        std::bit_cast<std::uint64_t>(sb.entries[e].stats.muDirectionDeg));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  sa.entries[e].stats.sigmaDirectionDeg),
              std::bit_cast<std::uint64_t>(
                  sb.entries[e].stats.sigmaDirectionDeg));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(sa.entries[e].stats.muOffsetMeters),
        std::bit_cast<std::uint64_t>(sb.entries[e].stats.muOffsetMeters));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  sa.entries[e].stats.sigmaOffsetMeters),
              std::bit_cast<std::uint64_t>(
                  sb.entries[e].stats.sigmaOffsetMeters));
    EXPECT_EQ(sa.entries[e].stats.sampleCount,
              sb.entries[e].stats.sampleCount);
  }
  EXPECT_EQ(sa.counters.accepted, sb.counters.accepted);
}

class StateStoreTest : public ::testing::Test {
 protected:
  StateStoreTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
  }

  /// Small reservoirs: eviction — and therefore the RNG stream — is in
  /// play for every durability test.
  core::OnlineMotionDatabase makeDb(std::uint64_t seed = 11) {
    return core::OnlineMotionDatabase(plan_, {}, /*reservoirCapacity=*/4,
                                      seed);
  }

  env::FloorPlan plan_{12.0, 4.0};
};

TEST_F(StateStoreTest, AcceptedObservationsAreLoggedRejectionsAreNot) {
  const std::string dir = freshDir("filter");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  db.setSink(&store);

  std::uint64_t accepted = 0;
  for (const auto& o : mixedStream(50))
    accepted += db.addObservation(o.start, o.end, o.directionDeg,
                                  o.offsetMeters)
                    ? 1
                    : 0;
  ASSERT_GT(accepted, 0u);
  ASSERT_LT(accepted, 50u);  // The stream really is mixed.
  EXPECT_EQ(store.lastSeq(), accepted);
  EXPECT_EQ(store.walStats().records, accepted);
  EXPECT_EQ(store.recordsSinceCheckpoint(), accepted);
}

TEST_F(StateStoreTest, RecoverFromWalOnlyIsBitIdentical) {
  const std::string dir = freshDir("walonly");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  {
    StateStore store(dir, config);
    db.setSink(&store);
    for (const auto& o : mixedStream(60))
      db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
    db.setSink(nullptr);
  }

  // Without a checkpoint there is no RNG state to restore: WAL-only
  // recovery reproduces the original only from the same initial state
  // (same seed, config, and capacity the database was born with).
  auto recovered = makeDb();
  const RecoveryResult result = recover(dir, recovered);
  EXPECT_FALSE(result.checkpointLoaded);
  EXPECT_EQ(result.replayedRecords, db.counters().accepted);
  EXPECT_EQ(result.skippedRecords, 0u);
  EXPECT_FALSE(result.droppedTornTail);
  expectIdenticalState(db, recovered);
}

TEST_F(StateStoreTest, CheckpointPlusTailReplayIsBitIdentical) {
  const std::string dir = freshDir("ckpt_tail");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  db.setSink(&store);

  const auto stream = mixedStream(80);
  for (int k = 0; k < 50; ++k)
    db.addObservation(stream[k].start, stream[k].end,
                      stream[k].directionDeg, stream[k].offsetMeters);
  const CheckpointInfo info = store.checkpointNow(db);
  EXPECT_EQ(info.throughSeq, store.lastSeq());
  EXPECT_EQ(store.recordsSinceCheckpoint(), 0u);

  for (int k = 50; k < 80; ++k)
    db.addObservation(stream[k].start, stream[k].end,
                      stream[k].directionDeg, stream[k].offsetMeters);
  const std::uint64_t tail = store.lastSeq() - info.throughSeq;
  db.setSink(nullptr);

  auto recovered = makeDb(999);
  const RecoveryResult result = recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  EXPECT_EQ(result.checkpointSeq, info.throughSeq);
  EXPECT_EQ(result.replayedRecords, tail);
  EXPECT_EQ(result.lastSeq, store.lastSeq());
  expectIdenticalState(db, recovered);
  // Documented caveat: coarse rejections after the checkpoint are not
  // logged, so the recovered rejection counters can lag the originals.
  EXPECT_LE(recovered.counters().rejectedCoarse,
            db.counters().rejectedCoarse);
}

/// The acceptance property: kill the process at ANY record boundary —
/// or tear/flip the tail — and recovery rebuilds exactly the state the
/// surviving prefix describes.
TEST_F(StateStoreTest, KillAtAnyRecordBoundaryRecoversExactPrefix) {
  const std::string srcDir = freshDir("kill_src");
  auto db = makeDb();
  std::vector<Obs> acceptedArgs;  // Original args of accepted records.
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  {
    StateStore store(srcDir, config);
    db.setSink(&store);
    for (const auto& o : mixedStream(40)) {
      if (db.addObservation(o.start, o.end, o.directionDeg,
                            o.offsetMeters))
        acceptedArgs.push_back(o);
    }
    db.setSink(nullptr);
  }
  const auto segments = WalReader(srcDir).scan().segments;
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0].path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(),
            kHeaderBytes + acceptedArgs.size() * kFrameBytes);

  // The incremental reference: after k accepted records, the state a
  // crash at boundary k must recover to.
  auto reference = makeDb();
  const std::string cutDir = freshDir("kill_cut");
  std::filesystem::create_directories(cutDir);
  const std::string cutPath =
      cutDir + "/" +
      std::filesystem::path(segments[0].path).filename().string();
  for (std::size_t k = 0; k <= acceptedArgs.size(); ++k) {
    if (k > 0)
      reference.addObservation(
          acceptedArgs[k - 1].start, acceptedArgs[k - 1].end,
          acceptedArgs[k - 1].directionDeg,
          acceptedArgs[k - 1].offsetMeters);
    {
      std::ofstream out(cutPath, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(),
                static_cast<std::streamsize>(kHeaderBytes +
                                             k * kFrameBytes));
    }
    auto recovered = makeDb();  // Same birth seed: no checkpoint here.
    const RecoveryResult result = recover(cutDir, recovered);
    EXPECT_EQ(result.replayedRecords, k) << "boundary " << k;
    expectIdenticalState(reference, recovered);
  }
}

TEST_F(StateStoreTest, TornAndFlippedTailsRecoverTheSurvivingPrefix) {
  for (const bool flip : {false, true}) {
    const std::string dir = freshDir(flip ? "tail_flip" : "tail_torn");
    auto db = makeDb();
    std::vector<Obs> acceptedArgs;
    StoreConfig config;
    config.wal.fsync = FsyncPolicy::kNone;
    {
      StateStore store(dir, config);
      db.setSink(&store);
      for (const auto& o : mixedStream(40)) {
        if (db.addObservation(o.start, o.end, o.directionDeg,
                              o.offsetMeters))
          acceptedArgs.push_back(o);
      }
      db.setSink(nullptr);
    }
    const auto segments = WalReader(dir).scan().segments;
    ASSERT_EQ(segments.size(), 1u);
    testing::FaultFile fault(segments[0].path);
    if (flip) {
      // Flip a bit inside the final record's payload.
      fault.flipBit(fault.size() - 12, 5);
    } else {
      fault.chopBytes(17);  // Tear mid-record.
    }

    auto reference = makeDb();
    for (std::size_t k = 0; k + 1 < acceptedArgs.size(); ++k)
      reference.addObservation(acceptedArgs[k].start, acceptedArgs[k].end,
                               acceptedArgs[k].directionDeg,
                               acceptedArgs[k].offsetMeters);

    auto recovered = makeDb();
    const RecoveryResult result = recover(dir, recovered);
    EXPECT_TRUE(result.droppedTornTail);
    EXPECT_GT(result.tailBytesDropped, 0u);
    EXPECT_EQ(result.replayedRecords, acceptedArgs.size() - 1);
    expectIdenticalState(reference, recovered);

    // Reopening for writing repairs the tail and continues; the full
    // chain then replays with no damage reported.
    {
      StateStore store(dir, config);
      recovered.setSink(&store);
      recovered.addObservation(0, 1, 90.0, 4.0);
      reference.addObservation(0, 1, 90.0, 4.0);
      recovered.setSink(nullptr);
    }
    auto recovered2 = makeDb();
    const RecoveryResult again = recover(dir, recovered2);
    EXPECT_FALSE(again.droppedTornTail);
    EXPECT_EQ(again.lastSeq, acceptedArgs.size());  // -1 torn, +1 new.
    expectIdenticalState(reference, recovered2);
  }
}

TEST_F(StateStoreTest, CompactionDeletesCoveredSegmentsOnly) {
  const std::string dir = freshDir("compact");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  config.wal.segmentMaxBytes = kHeaderBytes + 5 * kFrameBytes;
  config.keepCheckpoints = 1;
  StateStore store(dir, config);
  db.setSink(&store);

  const auto stream = mixedStream(80);
  for (const auto& o : stream)
    db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
  const std::size_t segmentsBefore = WalReader(dir).scan().segments.size();
  ASSERT_GT(segmentsBefore, 3u);

  const CheckpointInfo info = store.checkpointNow(db);
  EXPECT_GT(info.compactedSegments, 0u);
  // Only the active segment survives: every closed one was covered.
  EXPECT_EQ(WalReader(dir).scan().segments.size(), 1u);

  // More intake after compaction, then a clean recovery.
  for (int k = 0; k < 10; ++k)
    db.addObservation(0, 1, 89.0 + 0.1 * k, 4.0);
  db.setSink(nullptr);
  auto recovered = makeDb(999);
  const RecoveryResult result = recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  expectIdenticalState(db, recovered);
}

/// The scenario behind the sequence-lower-bound rule: checkpoint
/// compaction leaves only a record-free active segment, the process
/// restarts cleanly, and the reopened store must continue the sequence
/// — not restart at 1 and reissue checkpoint-covered seqs that
/// recovery would then silently skip.
TEST_F(StateStoreTest, RestartBehindRecordFreeSegmentContinuesSequence) {
  const std::string dir = freshDir("reissue");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;

  const auto stream = mixedStream(80);
  std::uint64_t checkpointSeq = 0;
  {
    StateStore store(dir, config);
    db.setSink(&store);
    for (int k = 0; k < 50; ++k)
      db.addObservation(stream[k].start, stream[k].end,
                        stream[k].directionDeg, stream[k].offsetMeters);
    db.setSink(nullptr);
    checkpointSeq = store.lastSeq();
  }
  {
    // Restart #1: the reopened store starts a fresh segment; the
    // checkpoint then compacts away every record-bearing one, leaving
    // only the record-free active segment.
    StateStore store(dir, config);
    ASSERT_EQ(store.lastSeq(), checkpointSeq);
    store.checkpoint(db.snapshot(), checkpointSeq);
  }
  {
    // Restart #2: only an empty segment (header firstSeq =
    // checkpointSeq + 1) plus the checkpoint file remain on disk.
    StateStore store(dir, config);
    EXPECT_EQ(store.lastSeq(), checkpointSeq);
    db.setSink(&store);
    for (int k = 50; k < 80; ++k)
      db.addObservation(stream[k].start, stream[k].end,
                        stream[k].directionDeg, stream[k].offsetMeters);
    db.setSink(nullptr);
    EXPECT_GT(store.lastSeq(), checkpointSeq);
  }

  auto recovered = makeDb(999);
  const RecoveryResult result = recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  EXPECT_EQ(result.checkpointSeq, checkpointSeq);
  // The post-checkpoint records were assigned fresh seqs and replay;
  // none may be skipped as checkpoint-covered.
  EXPECT_GT(result.replayedRecords, 0u);
  EXPECT_EQ(result.skippedRecords, 0u);
  expectIdenticalState(db, recovered);
}

/// Belt-and-braces: even with every WAL segment gone (so no header can
/// pin the sequence), the newest checkpoint's throughSeq must seed the
/// writer past the seqs it covers.
TEST_F(StateStoreTest, CheckpointSeqSeedsWriterWhenWalIsGone) {
  const std::string dir = freshDir("walgone");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  std::uint64_t checkpointSeq = 0;
  {
    StateStore store(dir, config);
    db.setSink(&store);
    for (const auto& o : mixedStream(40))
      db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
    store.checkpointNow(db);
    db.setSink(nullptr);
    checkpointSeq = store.lastCheckpointSeq();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".log")
      std::filesystem::remove(entry.path());

  {
    StateStore store(dir, config);
    EXPECT_EQ(store.lastSeq(), checkpointSeq);
    db.setSink(&store);
    for (int k = 0; k < 10; ++k)
      db.addObservation(0, 1, 89.0 + 0.1 * k, 4.0);
    db.setSink(nullptr);
  }
  auto recovered = makeDb(999);
  const RecoveryResult result = recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  EXPECT_EQ(result.skippedRecords, 0u);
  expectIdenticalState(db, recovered);
}

TEST_F(StateStoreTest, ConcurrentCheckpointsPublishAValidFile) {
  const std::string dir = freshDir("ckpt_race");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  db.setSink(&store);
  for (const auto& o : mixedStream(60))
    db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
  db.setSink(nullptr);

  // Same snapshot, same throughSeq, four threads: the publishes share
  // a .tmp path and must be serialized, or the file interleaves.
  const auto snapshot = db.snapshot();
  const std::uint64_t throughSeq = store.lastSeq();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back(
        [&] { store.checkpoint(snapshot, throughSeq); });
  for (auto& thread : threads) thread.join();

  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.throughSeq, throughSeq);
  EXPECT_EQ(loaded->skippedInvalid, 0u);
}

TEST_F(StateStoreTest, MissingCheckpointWithCompactedWalRaises) {
  const std::string dir = freshDir("gone");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  config.wal.segmentMaxBytes = kHeaderBytes + 5 * kFrameBytes;
  StateStore store(dir, config);
  db.setSink(&store);
  for (const auto& o : mixedStream(80))
    db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
  store.checkpointNow(db);
  for (int k = 0; k < 10; ++k)
    db.addObservation(0, 1, 89.0 + 0.1 * k, 4.0);
  db.setSink(nullptr);

  // Delete every checkpoint: the compacted WAL alone cannot reach back
  // to seq 1, and recovery must say so rather than fabricate state.
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".ckpt")
      std::filesystem::remove(entry.path());

  auto recovered = makeDb();
  EXPECT_THROW(recover(dir, recovered), CorruptionError);
}

TEST_F(StateStoreTest, RecoverRefusesAttachedSink) {
  const std::string dir = freshDir("sinked");
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  auto db = makeDb();
  db.setSink(&store);
  EXPECT_THROW(recover(dir, db), StoreError);
}

TEST_F(StateStoreTest, CheckpointRejectsFutureSeq) {
  const std::string dir = freshDir("future");
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  auto db = makeDb();
  EXPECT_THROW(store.checkpoint(db.snapshot(), 5), std::invalid_argument);

  StoreConfig keepNone;
  keepNone.keepCheckpoints = 0;
  EXPECT_THROW(StateStore(freshDir("keep0"), keepNone),
               std::invalid_argument);
}

TEST_F(StateStoreTest, CheckpointCarriesFingerprints) {
  const std::string dir = freshDir("fps");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  StateStore store(dir, config);
  db.setSink(&store);
  for (const auto& o : mixedStream(30))
    db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);

  radio::FingerprintDatabase fps;
  fps.addLocation(0, radio::Fingerprint({-40.0, -55.0}));
  fps.addLocation(1, radio::Fingerprint({-45.0, -50.0}));
  store.checkpointNow(db, fps);
  db.setSink(nullptr);

  auto recovered = makeDb(999);
  const RecoveryResult result = recover(dir, recovered);
  ASSERT_TRUE(result.fingerprints.has_value());
  EXPECT_EQ(result.fingerprints->size(), 2u);
  EXPECT_EQ(result.fingerprints->entry(1)[0], -45.0);
  expectIdenticalState(db, recovered);
}

TEST_F(StateStoreTest, RecoveredDatabaseContinuesInLockstep) {
  const std::string dir = freshDir("lockstep");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kNone;
  {
    StateStore store(dir, config);
    db.setSink(&store);
    for (const auto& o : mixedStream(60))
      db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters);
    db.setSink(nullptr);
  }
  auto recovered = makeDb();
  recover(dir, recovered);

  // Post-recovery, the recovered instance must keep making the exact
  // same decisions (same RNG stream, same reservoirs) as the original.
  for (const auto& o : mixedStream(40)) {
    EXPECT_EQ(
        db.addObservation(o.start, o.end, o.directionDeg, o.offsetMeters),
        recovered.addObservation(o.start, o.end, o.directionDeg,
                                 o.offsetMeters));
  }
  expectIdenticalState(db, recovered);
}

TEST_F(StateStoreTest, MetricsExposeDurabilityActivity) {
  obs::MetricsRegistry registry;
  const std::string dir = freshDir("metrics");
  auto db = makeDb();
  StoreConfig config;
  config.wal.fsync = FsyncPolicy::kEveryN;
  config.wal.fsyncEveryN = 8;
  config.metrics = &registry;
  StateStore store(dir, config);
  db.setSink(&store);
  std::uint64_t accepted = 0;
  for (const auto& o : mixedStream(50))
    accepted += db.addObservation(o.start, o.end, o.directionDeg,
                                  o.offsetMeters)
                    ? 1
                    : 0;
  store.checkpointNow(db);
  db.setSink(nullptr);

#if MOLOC_METRICS_ENABLED
  auto* records =
      registry.findCounter("moloc_store_wal_records_appended_total");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->value(), static_cast<double>(accepted));
  auto* bytes =
      registry.findCounter("moloc_store_wal_bytes_written_total");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->value(), static_cast<double>(accepted * kFrameBytes));
  auto* fsyncs = registry.findCounter("moloc_store_wal_fsyncs_total");
  ASSERT_NE(fsyncs, nullptr);
  EXPECT_GT(fsyncs->value(), 0.0);
  auto* checkpoints =
      registry.findCounter("moloc_store_checkpoints_total");
  ASSERT_NE(checkpoints, nullptr);
  EXPECT_EQ(checkpoints->value(), 1.0);
  auto* duration =
      registry.findHistogram("moloc_store_checkpoint_seconds");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->count(), 1u);
  auto* since =
      registry.findGauge("moloc_store_records_since_checkpoint");
  ASSERT_NE(since, nullptr);
  EXPECT_EQ(since->value(), 0.0);

  // Recovery-side series.
  auto recovered = makeDb(999);
  recover(dir, recovered, &registry);
  auto* replayed =
      registry.findCounter("moloc_store_replayed_records_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->value(), 0.0);  // All subsumed by the checkpoint.
  expectIdenticalState(db, recovered);
#endif
}

}  // namespace
}  // namespace moloc::store
