#include "env/walk_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angles.hpp"

namespace moloc::env {
namespace {

/// A 3x1 corridor: 0 -- 1 -- 2, spacing 4 m.
FloorPlan corridorPlan() {
  FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

TEST(WalkGraph, AdjacencyRespectsDistanceCutoff) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_TRUE(graph.adjacent(0, 1));
  EXPECT_TRUE(graph.adjacent(1, 2));
  EXPECT_FALSE(graph.adjacent(0, 2));  // 8 m apart, over the cutoff.
  EXPECT_EQ(graph.edgeCount(), 2u);
}

TEST(WalkGraph, AdjacencyIsSymmetric) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_EQ(graph.adjacent(0, 1), graph.adjacent(1, 0));
  EXPECT_EQ(graph.adjacent(0, 2), graph.adjacent(2, 0));
}

TEST(WalkGraph, SelfIsNeverAdjacent) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_FALSE(graph.adjacent(1, 1));
}

TEST(WalkGraph, WallSeversGeometricallyCloseLeg) {
  auto plan = corridorPlan();
  plan.addWall({{4.0, 0.0}, {4.0, 4.0}});  // Between locations 0 and 1.
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_FALSE(graph.adjacent(0, 1));
  EXPECT_TRUE(graph.adjacent(1, 2));
}

TEST(WalkGraph, EdgeLengthAndHeading) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_DOUBLE_EQ(graph.edgeLength(0, 1).value(), 4.0);
  const auto rlm = graph.groundTruthRlm(0, 1);
  ASSERT_TRUE(rlm.has_value());
  EXPECT_NEAR(rlm->directionDeg, 90.0, 1e-9);  // East.
  EXPECT_DOUBLE_EQ(rlm->offsetMeters, 4.0);

  const auto reverse = graph.groundTruthRlm(1, 0);
  ASSERT_TRUE(reverse.has_value());
  EXPECT_NEAR(reverse->directionDeg, 270.0, 1e-9);  // West.
}

TEST(WalkGraph, RlmOfNonAdjacentIsNullopt) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_FALSE(graph.groundTruthRlm(0, 2).has_value());
  EXPECT_FALSE(graph.edgeLength(0, 2).has_value());
}

TEST(WalkGraph, ShortestPathChainsLegs) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  const auto path = graph.shortestPath(0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<LocationId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(path->length, 8.0);
}

TEST(WalkGraph, ShortestPathToSelfIsTrivial) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  const auto path = graph.shortestPath(1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<LocationId>{1}));
  EXPECT_DOUBLE_EQ(path->length, 0.0);
}

TEST(WalkGraph, DisconnectedComponentsHaveNoPath) {
  auto plan = corridorPlan();
  plan.addWall({{4.0, 0.0}, {4.0, 4.0}});  // Severs 0 from {1, 2}.
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_FALSE(graph.shortestPath(0, 2).has_value());
  EXPECT_TRUE(std::isinf(graph.walkableDistance(0, 2)));
  EXPECT_FALSE(graph.isConnected());
}

TEST(WalkGraph, ConnectedCorridor) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_TRUE(graph.isConnected());
}

TEST(WalkGraph, DetourAroundPartition) {
  // A 2x2 grid where the direct top edge is walled off:
  //   0 --x-- 1
  //   |       |
  //   2 ----- 3
  FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({2.0, 6.0});  // 0
  plan.addReferenceLocation({6.0, 6.0});  // 1
  plan.addReferenceLocation({2.0, 2.0});  // 2
  plan.addReferenceLocation({6.0, 2.0});  // 3
  plan.addWall({{4.0, 5.0}, {4.0, 7.0}});
  const auto graph = WalkGraph::build(plan, 4.5);

  EXPECT_FALSE(graph.adjacent(0, 1));
  const auto path = graph.shortestPath(0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<LocationId>{0, 2, 3, 1}));
  EXPECT_DOUBLE_EQ(path->length, 12.0);
  // Walkable distance strictly exceeds the straight-line distance —
  // the consistency principle the paper's Sec. IV.A states.
  EXPECT_GT(graph.walkableDistance(0, 1), 4.0);
}

TEST(WalkGraph, ThrowsOnBadIds) {
  const auto plan = corridorPlan();
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_THROW(graph.neighbors(3), std::out_of_range);
  EXPECT_THROW(graph.neighbors(-1), std::out_of_range);
  EXPECT_THROW(graph.shortestPath(0, 9), std::out_of_range);
}

TEST(WalkGraph, EmptyGraphIsConnected) {
  const FloorPlan plan(5.0, 5.0);
  const auto graph = WalkGraph::build(plan, 4.5);
  EXPECT_EQ(graph.nodeCount(), 0u);
  EXPECT_TRUE(graph.isConnected());
}

}  // namespace
}  // namespace moloc::env
