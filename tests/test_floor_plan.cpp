#include "env/floor_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::env {
namespace {

TEST(FloorPlan, RejectsNonPositiveBounds) {
  EXPECT_THROW(FloorPlan(0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(FloorPlan(5.0, -1.0), std::invalid_argument);
}

TEST(FloorPlan, AssignsSequentialIds) {
  FloorPlan plan(10.0, 10.0);
  EXPECT_EQ(plan.addReferenceLocation({1.0, 1.0}), 0);
  EXPECT_EQ(plan.addReferenceLocation({2.0, 2.0}), 1);
  EXPECT_EQ(plan.addReferenceLocation({3.0, 3.0}), 2);
  EXPECT_EQ(plan.locationCount(), 3u);
}

TEST(FloorPlan, RejectsLocationOutsideBounds) {
  FloorPlan plan(10.0, 10.0);
  EXPECT_THROW(plan.addReferenceLocation({11.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(plan.addReferenceLocation({1.0, -0.1}),
               std::invalid_argument);
}

TEST(FloorPlan, BoundaryLocationsAllowed) {
  FloorPlan plan(10.0, 10.0);
  EXPECT_NO_THROW(plan.addReferenceLocation({0.0, 0.0}));
  EXPECT_NO_THROW(plan.addReferenceLocation({10.0, 10.0}));
}

TEST(FloorPlan, LocationAccessorChecksBounds) {
  FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({5.0, 5.0});
  EXPECT_EQ(plan.location(0).pos, (geometry::Vec2{5.0, 5.0}));
  EXPECT_THROW(plan.location(1), std::out_of_range);
  EXPECT_THROW(plan.location(-1), std::out_of_range);
}

TEST(FloorPlan, IsValid) {
  FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({5.0, 5.0});
  EXPECT_TRUE(plan.isValid(0));
  EXPECT_FALSE(plan.isValid(1));
  EXPECT_FALSE(plan.isValid(-1));
}

TEST(FloorPlan, WallCrossingsCountsEachWall) {
  FloorPlan plan(10.0, 10.0);
  plan.addWall({{3.0, 0.0}, {3.0, 10.0}});
  plan.addWall({{6.0, 0.0}, {6.0, 10.0}});
  EXPECT_EQ(plan.wallCrossings({0.0, 5.0}, {10.0, 5.0}), 2);
  EXPECT_EQ(plan.wallCrossings({0.0, 5.0}, {2.0, 5.0}), 0);
  EXPECT_EQ(plan.wallCrossings({4.0, 5.0}, {5.0, 5.0}), 0);
}

TEST(FloorPlan, LineBlockedMatchesCrossings) {
  FloorPlan plan(10.0, 10.0);
  plan.addWall({{5.0, 2.0}, {5.0, 8.0}});
  EXPECT_TRUE(plan.lineBlocked({0.0, 5.0}, {10.0, 5.0}));
  // Passing below the wall's extent.
  EXPECT_FALSE(plan.lineBlocked({0.0, 1.0}, {10.0, 1.0}));
}

TEST(FloorPlan, EmptyPlanBlocksNothing) {
  const FloorPlan plan(10.0, 10.0);
  EXPECT_FALSE(plan.lineBlocked({0.0, 0.0}, {10.0, 10.0}));
  EXPECT_EQ(plan.wallCrossings({0.0, 0.0}, {10.0, 10.0}), 0);
}

}  // namespace
}  // namespace moloc::env
