#include "eval/experiment_world.hpp"
#include "geometry/angles.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::eval {
namespace {

/// A reduced-size world config keeping integration tests fast.
WorldConfig smallConfig(int apCount = 6) {
  WorldConfig config;
  config.apCount = apCount;
  config.trainingTraces = 40;
  config.legsPerTrainingTrace = 15;
  return config;
}

TEST(ExperimentWorld, RejectsBadApCount) {
  WorldConfig config;
  config.apCount = 0;
  EXPECT_THROW(ExperimentWorld{config}, std::invalid_argument);
  config.apCount = 7;
  EXPECT_THROW(ExperimentWorld{config}, std::invalid_argument);
}

TEST(ExperimentWorld, BuildsPaperScaleDatabases) {
  ExperimentWorld world(smallConfig());
  EXPECT_EQ(world.fingerprintDb().size(), 28u);
  EXPECT_EQ(world.fingerprintDb().apCount(), 6u);
  EXPECT_EQ(world.motionDb().locationCount(), 28u);
  EXPECT_EQ(world.users().size(), 4u);
}

TEST(ExperimentWorld, ApCountSelectsRadioDimension) {
  ExperimentWorld world(smallConfig(4));
  EXPECT_EQ(world.fingerprintDb().apCount(), 4u);
  EXPECT_EQ(world.radio().apCount(), 4u);
}

TEST(ExperimentWorld, MotionDatabaseCoversMostAisleLegs) {
  ExperimentWorld world(smallConfig());
  // The hall has 42 undirected legs; the crowdsourcing pass should
  // learn the bulk of them even at reduced training volume.
  EXPECT_GT(world.builderReport().pairsStored, 25u);
  EXPECT_GT(world.motionDb().entryCount(), 50u);  // Directed.
}

TEST(ExperimentWorld, SanitationRejectsSomething) {
  ExperimentWorld world(smallConfig());
  // Fingerprint self-localization during crowdsourcing is noisy; the
  // coarse filter must be doing real work.
  EXPECT_GT(world.builderReport().rejectedCoarse, 0u);
  EXPECT_GT(world.builderReport().observations, 0u);
}

TEST(ExperimentWorld, LearnedRlmsMatchMapGeometry) {
  ExperimentWorld world(smallConfig());
  const auto& graph = world.hall().graph;
  int checked = 0;
  for (env::LocationId i = 0; i < 28; ++i) {
    for (const auto& edge : graph.neighbors(i)) {
      if (edge.to < i) continue;
      const auto learned = world.motionDb().entry(i, edge.to);
      if (!learned) continue;
      EXPECT_NEAR(learned->muOffsetMeters, edge.length, 1.0);
      EXPECT_LT(geometry::angularDistDeg(learned->muDirectionDeg,
                                         edge.headingDeg),
                12.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 25);
}

TEST(ExperimentWorld, TraceGenerationWorks) {
  ExperimentWorld world(smallConfig());
  const auto trace =
      world.makeTrace(world.users().front(), 8, world.evalRng());
  EXPECT_EQ(trace.intervals.size(), 8u);
  const auto motion =
      world.processInterval(trace.intervals[0], world.users().front());
  ASSERT_TRUE(motion.has_value());
  EXPECT_GT(motion->offsetMeters, 1.0);
}

TEST(ExperimentWorld, LocationDistanceIsEuclidean) {
  ExperimentWorld world(smallConfig());
  EXPECT_DOUBLE_EQ(world.locationDistance(0, 0), 0.0);
  EXPECT_NEAR(world.locationDistance(0, 1), 5.7, 1e-9);
  EXPECT_NEAR(world.locationDistance(0, 7), 4.0, 1e-9);
}

TEST(ExperimentWorld, DeterministicAcrossInstances) {
  ExperimentWorld a(smallConfig());
  ExperimentWorld b(smallConfig());
  EXPECT_EQ(a.builderReport().observations, b.builderReport().observations);
  EXPECT_EQ(a.builderReport().pairsStored, b.builderReport().pairsStored);
  const auto& fpA = a.fingerprintDb().entry(10);
  const auto& fpB = b.fingerprintDb().entry(10);
  for (std::size_t i = 0; i < fpA.size(); ++i)
    EXPECT_EQ(fpA[i], fpB[i]);
}

TEST(ExperimentWorld, DifferentSeedsDiffer) {
  auto configA = smallConfig();
  auto configB = smallConfig();
  configB.seed = 43;
  ExperimentWorld a(configA);
  ExperimentWorld b(configB);
  EXPECT_NE(a.fingerprintDb().entry(10)[0], b.fingerprintDb().entry(10)[0]);
}

TEST(ExperimentWorld, MakeEngineBindsDatabases) {
  ExperimentWorld world(smallConfig());
  auto engine = world.makeEngine();
  EXPECT_FALSE(engine.hasHistory());
  const auto trace =
      world.makeTrace(world.users().front(), 1, world.evalRng());
  const auto fix = engine.localize(trace.initialScan, std::nullopt);
  EXPECT_GE(fix.location, 0);
  EXPECT_LT(fix.location, 28);
}

TEST(ExperimentWorld, ReplayModeDrawsHeldOutSamples) {
  auto config = smallConfig();
  config.replayHeldOutScans = true;
  ExperimentWorld world(config);
  // Scans replay the survey's test partition: a one-node trace's
  // initial scan must literally be one of that location's held-out
  // samples (cursor starts at 0, so the first).
  const auto trace =
      world.makeTrace(world.users().front(), 0, world.evalRng());
  // Rebuild the expected survey deterministically.
  util::Rng master(config.seed);
  util::Rng surveyRng = master.split();
  const auto survey =
      radio::conductSurvey(world.radio(), config.survey, surveyRng);
  const auto& expected =
      survey.samples[static_cast<std::size_t>(trace.startTruth)].test[0];
  ASSERT_EQ(trace.initialScan.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(trace.initialScan[i], expected[i]);
}

TEST(ExperimentWorld, ReplayModeStillLocalizes) {
  auto config = smallConfig();
  config.replayHeldOutScans = true;
  ExperimentWorld world(config);
  const auto outcomes = runComparison(world, 5, 8);
  eval::ErrorStats moloc;
  for (const auto& o : outcomes) moloc.addAll(o.moloc);
  EXPECT_GT(moloc.accuracy(), 0.4);
}

TEST(RunComparison, ProducesPairedRecords) {
  ExperimentWorld world(smallConfig());
  const auto outcomes = runComparison(world, 4, 6);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& outcome : outcomes) {
    // 1 initial fix + 6 legs.
    EXPECT_EQ(outcome.moloc.size(), 7u);
    EXPECT_EQ(outcome.wifi.size(), 7u);
    // Truth sequences agree between the two methods.
    for (std::size_t i = 0; i < outcome.moloc.size(); ++i)
      EXPECT_EQ(outcome.moloc[i].truth, outcome.wifi[i].truth);
  }
}

TEST(RunComparison, ErrorsAreConsistentWithGeometry) {
  ExperimentWorld world(smallConfig());
  const auto outcomes = runComparison(world, 3, 5);
  for (const auto& outcome : outcomes) {
    for (const auto& record : outcome.moloc) {
      EXPECT_NEAR(record.errorMeters,
                  world.locationDistance(record.estimated, record.truth),
                  1e-12);
      if (record.accurate()) EXPECT_EQ(record.errorMeters, 0.0);
    }
  }
}

TEST(ExperimentWorld, OnlineBuilderModeServes) {
  auto batchConfig = smallConfig();
  auto onlineConfig = smallConfig();
  onlineConfig.useOnlineBuilder = true;

  ExperimentWorld batch(batchConfig);
  ExperimentWorld online(onlineConfig);

  // Same intake stream, near-identical coverage (the online variant's
  // reservoir only matters beyond its capacity).
  EXPECT_EQ(online.builderReport().observations,
            batch.builderReport().observations);
  const auto batchPairs = batch.builderReport().pairsStored;
  const auto onlinePairs = online.builderReport().pairsStored;
  EXPECT_GE(onlinePairs + 3, batchPairs);

  // And the deployment mode localizes comparably.
  eval::ErrorStats batchStats;
  eval::ErrorStats onlineStats;
  for (const auto& o : runComparison(batch, 10, 8))
    batchStats.addAll(o.moloc);
  for (const auto& o : runComparison(online, 10, 8))
    onlineStats.addAll(o.moloc);
  EXPECT_GT(onlineStats.accuracy(), batchStats.accuracy() - 0.12);
}

}  // namespace
}  // namespace moloc::eval
