#include "env/corridor_building.hpp"

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"

namespace moloc::env {
namespace {

class CorridorTest : public ::testing::Test {
 protected:
  Site site_ = makeCorridorBuilding();
};

TEST_F(CorridorTest, LayoutCounts) {
  EXPECT_EQ(site_.plan.locationCount(),
            static_cast<std::size_t>(CorridorBuildingLayout::kLocations));
  EXPECT_EQ(site_.apPositions.size(), 4u);
  EXPECT_DOUBLE_EQ(site_.plan.width(), 60.0);
  EXPECT_DOUBLE_EQ(site_.plan.height(), 12.0);
}

TEST_F(CorridorTest, GraphIsConnected) {
  EXPECT_TRUE(site_.graph.isConnected());
}

TEST_F(CorridorTest, CorridorFormsAChain) {
  for (int c = 0; c + 1 < CorridorBuildingLayout::kCorridorLocations;
       ++c)
    EXPECT_TRUE(site_.graph.adjacent(c, c + 1)) << c;
  // No corridor shortcuts.
  EXPECT_FALSE(site_.graph.adjacent(0, 2));
}

TEST_F(CorridorTest, RoomsConnectOnlyThroughTheirDoor) {
  // North room 0 (id 11) connects to corridor location 0 (x = 5)...
  EXPECT_TRUE(site_.graph.adjacent(11, 0));
  // ...and to nothing else.
  EXPECT_EQ(site_.graph.neighbors(11).size(), 1u);

  // South room 0 (id 17) likewise.
  EXPECT_TRUE(site_.graph.adjacent(17, 0));
  EXPECT_EQ(site_.graph.neighbors(17).size(), 1u);
}

TEST_F(CorridorTest, NeighbouringRoomsAreWalledOff) {
  EXPECT_FALSE(site_.graph.adjacent(11, 12));  // North rooms 0 and 1.
  EXPECT_FALSE(site_.graph.adjacent(17, 18));  // South rooms 0 and 1.
  EXPECT_FALSE(site_.graph.adjacent(11, 17));  // Across the corridor.
}

TEST_F(CorridorTest, RoomToRoomRequiresCorridorDetour) {
  // North room 0 to north room 1: out the door, along the corridor,
  // in the next door — far beyond the 10 m straight line.
  const auto path = site_.graph.shortestPath(11, 12);
  ASSERT_TRUE(path.has_value());
  EXPECT_GT(path->length, 10.0 + 3.0);
  // The path passes through corridor nodes.
  bool viaCorridor = false;
  for (const auto node : path->nodes)
    if (node < CorridorBuildingLayout::kCorridorLocations)
      viaCorridor = true;
  EXPECT_TRUE(viaCorridor);
}

TEST_F(CorridorTest, WallsAttenuateRoomSignals) {
  // A straight path from inside a north room into a south room (off
  // the door axis) crosses both corridor walls.
  EXPECT_GE(site_.plan.wallCrossings({22.0, 11.0}, {22.0, 2.5}), 2);
}

TEST_F(CorridorTest, EndToEndCampaignShapeHolds) {
  eval::WorldConfig config;
  config.apCount = 4;
  config.trainingTraces = 80;
  config.legsPerTrainingTrace = 15;
  eval::ExperimentWorld world(env::makeCorridorBuilding(), config);

  eval::ErrorStats moloc;
  eval::ErrorStats wifi;
  for (const auto& outcome : eval::runComparison(world, 20, 10)) {
    moloc.addAll(outcome.moloc);
    wifi.addAll(outcome.wifi);
  }
  EXPECT_GT(moloc.accuracy(), wifi.accuracy());
  EXPECT_LT(moloc.meanError(), wifi.meanError());
}

TEST_F(CorridorTest, Deterministic) {
  const Site again = makeCorridorBuilding();
  EXPECT_EQ(again.graph.edgeCount(), site_.graph.edgeCount());
  EXPECT_EQ(again.plan.walls().size(), site_.plan.walls().size());
}

}  // namespace
}  // namespace moloc::env
