#include "radio/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace moloc::radio {
namespace {

TEST(Fingerprint, SizeAndAccess) {
  const Fingerprint fp({-40.0, -50.0, -60.0});
  EXPECT_EQ(fp.size(), 3u);
  EXPECT_FALSE(fp.empty());
  EXPECT_DOUBLE_EQ(fp[0], -40.0);
  EXPECT_DOUBLE_EQ(fp[2], -60.0);
}

TEST(Fingerprint, DefaultIsEmpty) {
  const Fingerprint fp;
  EXPECT_TRUE(fp.empty());
  EXPECT_EQ(fp.size(), 0u);
}

TEST(Fingerprint, MutableAccess) {
  Fingerprint fp({-40.0, -50.0});
  fp[1] = -55.0;
  EXPECT_DOUBLE_EQ(fp[1], -55.0);
}

TEST(Fingerprint, TruncatedKeepsPrefix) {
  const Fingerprint fp({-40.0, -50.0, -60.0, -70.0});
  const Fingerprint cut = fp.truncated(2);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut[0], -40.0);
  EXPECT_DOUBLE_EQ(cut[1], -50.0);
}

TEST(Fingerprint, TruncatedNoOpWhenLarger) {
  const Fingerprint fp({-40.0, -50.0});
  EXPECT_EQ(fp.truncated(5).size(), 2u);
  EXPECT_EQ(fp.truncated(2).size(), 2u);
}

TEST(Fingerprint, TruncatedToZeroIsEmpty) {
  const Fingerprint fp({-40.0});
  EXPECT_TRUE(fp.truncated(0).empty());
}

TEST(Dissimilarity, MatchesEq1) {
  const Fingerprint a({-40.0, -50.0});
  const Fingerprint b({-43.0, -54.0});
  EXPECT_DOUBLE_EQ(squaredDissimilarity(a, b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(dissimilarity(a, b), 5.0);
}

TEST(Dissimilarity, ZeroForIdentical) {
  const Fingerprint a({-40.0, -50.0, -60.0});
  EXPECT_DOUBLE_EQ(dissimilarity(a, a), 0.0);
}

TEST(Dissimilarity, Symmetric) {
  const Fingerprint a({-40.0, -50.0});
  const Fingerprint b({-45.0, -48.0});
  EXPECT_DOUBLE_EQ(dissimilarity(a, b), dissimilarity(b, a));
}

TEST(Dissimilarity, TriangleInequality) {
  const Fingerprint a({-40.0, -50.0});
  const Fingerprint b({-45.0, -48.0});
  const Fingerprint c({-42.0, -55.0});
  EXPECT_LE(dissimilarity(a, c),
            dissimilarity(a, b) + dissimilarity(b, c) + 1e-12);
}

TEST(Dissimilarity, ThrowsOnDimensionMismatch) {
  const Fingerprint a({-40.0, -50.0});
  const Fingerprint b({-40.0});
  EXPECT_THROW(dissimilarity(a, b), std::invalid_argument);
  EXPECT_THROW(squaredDissimilarity(a, b), std::invalid_argument);
}

TEST(MeanFingerprint, ComponentWiseMean) {
  const std::vector<Fingerprint> fps{Fingerprint({-40.0, -60.0}),
                                     Fingerprint({-50.0, -70.0})};
  const Fingerprint mean = meanFingerprint(fps);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], -45.0);
  EXPECT_DOUBLE_EQ(mean[1], -65.0);
}

TEST(MeanFingerprint, SingleSampleIsIdentity) {
  const std::vector<Fingerprint> fps{Fingerprint({-41.5, -62.25})};
  const Fingerprint mean = meanFingerprint(fps);
  EXPECT_DOUBLE_EQ(mean[0], -41.5);
  EXPECT_DOUBLE_EQ(mean[1], -62.25);
}

TEST(MeanFingerprint, ThrowsOnEmptySet) {
  EXPECT_THROW(meanFingerprint({}), std::invalid_argument);
}

TEST(MeanFingerprint, ThrowsOnMismatchedLengths) {
  const std::vector<Fingerprint> fps{Fingerprint({-40.0, -60.0}),
                                     Fingerprint({-50.0})};
  EXPECT_THROW(meanFingerprint(fps), std::invalid_argument);
}

}  // namespace
}  // namespace moloc::radio
