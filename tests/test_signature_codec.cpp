#include "index/signature_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace moloc::index {
namespace {

TEST(QuantizerTest, ValidatesConfig) {
  QuantizerConfig config;
  EXPECT_NO_THROW(validateQuantizer(config));

  config.bucketCount = 1;
  EXPECT_THROW(validateQuantizer(config), std::invalid_argument);
  config.bucketCount = kMaxBucketCount + 1;
  EXPECT_THROW(validateQuantizer(config), std::invalid_argument);

  config = QuantizerConfig{};
  config.bucketWidthDb = 0.0;
  EXPECT_THROW(validateQuantizer(config), std::invalid_argument);
  config.bucketWidthDb = -1.0;
  EXPECT_THROW(validateQuantizer(config), std::invalid_argument);

  config = QuantizerConfig{};
  config.floorDbm = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validateQuantizer(config), std::invalid_argument);
}

TEST(QuantizerTest, FloorAndBelowIsNotHeard) {
  const QuantizerConfig config;  // floor -100, width 8, 8 buckets.
  EXPECT_EQ(quantizeRss(-100.0, config), 0);
  EXPECT_EQ(quantizeRss(-150.0, config), 0);
  EXPECT_EQ(quantizeRss(-std::numeric_limits<double>::infinity(), config),
            0);
  // NaN must map somewhere total rather than poison the index; it maps
  // to "not heard".
  EXPECT_EQ(quantizeRss(std::numeric_limits<double>::quiet_NaN(), config),
            0);
  // Just above the floor is the first heard bucket.
  EXPECT_EQ(quantizeRss(-99.9, config), 1);
}

TEST(QuantizerTest, BucketsAreMonotoneAndClamped) {
  const QuantizerConfig config;
  std::uint8_t prev = 0;
  for (double rss = -120.0; rss <= 0.0; rss += 0.25) {
    const std::uint8_t bucket = quantizeRss(rss, config);
    EXPECT_GE(bucket, prev) << "rss " << rss;
    EXPECT_LT(bucket, config.bucketCount);
    prev = bucket;
  }
  // Strong signals clamp to the top bucket.
  EXPECT_EQ(quantizeRss(0.0, config), config.bucketCount - 1);
  EXPECT_EQ(quantizeRss(-35.0, config), config.bucketCount - 1);
}

// The contract the prefilter's lower bound rests on: bucket distance
// (minus one bucket of slack) never exceeds the dB distance / width.
TEST(QuantizerTest, BucketDistanceLowerBoundsDbDistance) {
  const QuantizerConfig config;
  util::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const double a = rng.uniform(-130.0, -20.0);
    const double b = rng.uniform(-130.0, -20.0);
    const int qa = quantizeRss(a, config);
    const int qb = quantizeRss(b, config);
    const int gap = qa > qb ? qa - qb : qb - qa;
    if (gap <= 1) continue;  // The slack covers adjacent buckets.
    // Both heard (gap > 1 implies at least one heard; if the other is
    // unheard its reading is <= floor so the dB gap is even larger).
    EXPECT_GT(std::abs(a - b),
              (gap - 1) * config.bucketWidthDb - 1e-9)
        << a << " vs " << b;
  }
}

TEST(ThermometerPlanesTest, PackUnpackRoundTrips) {
  const int bucketCount = 8;
  util::Rng rng(11);
  std::vector<std::uint8_t> buckets(kBlockEntries);
  for (auto& b : buckets)
    b = static_cast<std::uint8_t>(rng.uniformInt(0, bucketCount - 1));

  std::vector<std::uint64_t> planes(bucketCount - 1);
  packThermometerPlanes(buckets, bucketCount, planes);

  // Thermometer property: plane t+1 is a subset of plane t.
  for (std::size_t t = 1; t < planes.size(); ++t)
    EXPECT_EQ(planes[t] & ~planes[t - 1], 0u);

  std::vector<std::uint8_t> decoded(kBlockEntries);
  unpackThermometerPlanes(planes, bucketCount, kBlockEntries, decoded);
  EXPECT_EQ(decoded, buckets);
}

TEST(ThermometerPlanesTest, PartialBlockLeavesHighBitsClear) {
  const int bucketCount = 4;
  const std::vector<std::uint8_t> buckets{3, 0, 2, 1, 3};
  std::vector<std::uint64_t> planes(bucketCount - 1);
  packThermometerPlanes(buckets, bucketCount, planes);
  for (const std::uint64_t plane : planes)
    EXPECT_EQ(plane >> buckets.size(), 0u);

  std::vector<std::uint8_t> decoded(buckets.size());
  unpackThermometerPlanes(planes, bucketCount, buckets.size(), decoded);
  EXPECT_EQ(decoded, buckets);
}

TEST(ThermometerPlanesTest, RejectsBadInput) {
  std::vector<std::uint64_t> planes(7);
  const std::vector<std::uint8_t> tooMany(kBlockEntries + 1, 0);
  EXPECT_THROW(packThermometerPlanes(tooMany, 8, planes),
               std::invalid_argument);
  const std::vector<std::uint8_t> outOfRange{8};
  EXPECT_THROW(packThermometerPlanes(outOfRange, 8, planes),
               std::invalid_argument);
  const std::vector<std::uint8_t> fine{1};
  std::vector<std::uint64_t> wrongPlaneCount(6);
  EXPECT_THROW(packThermometerPlanes(fine, 8, wrongPlaneCount),
               std::invalid_argument);

  // Non-thermometer planes: bit set in plane 1 but not plane 0.
  std::vector<std::uint64_t> broken{0x0, 0x1, 0x0};
  std::vector<std::uint8_t> out(1);
  EXPECT_THROW(unpackThermometerPlanes(broken, 4, 1, out),
               std::invalid_argument);
}

TEST(SignatureBlockTest, EncodeDecodeRoundTripsCanonically) {
  util::Rng rng(23);
  for (const int bucketCount : {2, 4, 8, kMaxBucketCount}) {
    for (const std::size_t entries :
         {std::size_t{1}, std::size_t{5}, kBlockEntries}) {
      std::vector<std::uint8_t> buckets(entries);
      for (auto& b : buckets)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, bucketCount - 1));
      const std::vector<std::uint8_t> bytes =
          encodeSignatureBlock(buckets, bucketCount);
      EXPECT_EQ(bytes.size(),
                2 + static_cast<std::size_t>(bucketCount - 1) * 8);

      const DecodedSignatureBlock decoded = decodeSignatureBlock(bytes);
      EXPECT_EQ(decoded.bucketCount, bucketCount);
      EXPECT_EQ(decoded.buckets, buckets);

      // Canonical form: re-encoding reproduces the bytes exactly.
      EXPECT_EQ(encodeSignatureBlock(decoded.buckets, decoded.bucketCount),
                bytes);
    }
  }
}

TEST(SignatureBlockTest, DecodeRejectsMalformedInput) {
  const std::vector<std::uint8_t> buckets{3, 1, 0, 2};
  std::vector<std::uint8_t> bytes = encodeSignatureBlock(buckets, 4);

  // Truncated and oversized payloads.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_THROW(decodeSignatureBlock(truncated), SignatureCodecError);
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decodeSignatureBlock(padded), SignatureCodecError);

  // Header out of range.
  std::vector<std::uint8_t> badCount = bytes;
  badCount[0] = 1;
  EXPECT_THROW(decodeSignatureBlock(badCount), SignatureCodecError);
  badCount[0] = kMaxBucketCount + 1;
  EXPECT_THROW(decodeSignatureBlock(badCount), SignatureCodecError);
  std::vector<std::uint8_t> badEntries = bytes;
  badEntries[1] = 0;
  EXPECT_THROW(decodeSignatureBlock(badEntries), SignatureCodecError);
  badEntries[1] = kBlockEntries + 1;
  EXPECT_THROW(decodeSignatureBlock(badEntries), SignatureCodecError);

  // A set bit past entryCount.
  std::vector<std::uint8_t> strayBit = bytes;
  strayBit[2] |= 0x10;  // Bit 4 of plane 0; entryCount is 4.
  EXPECT_THROW(decodeSignatureBlock(strayBit), SignatureCodecError);

  // Thermometer violation: plane 2 bit without the plane 1 bit.
  std::vector<std::uint8_t> nonMonotone = bytes;
  // Entry 2 has bucket 0: all planes clear.  Set its bit in the last
  // plane only.
  nonMonotone[2 + 2 * 8] |= 0x4;
  EXPECT_THROW(decodeSignatureBlock(nonMonotone), SignatureCodecError);
}

}  // namespace
}  // namespace moloc::index
