#include "kernel/fingerprint_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <vector>

#include "radio/fingerprint.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/rng.hpp"

namespace moloc::kernel {
namespace {

std::vector<double> randomRow(util::Rng& rng, std::size_t cols) {
  std::vector<double> row(cols);
  for (auto& v : row) v = rng.uniform(-95.0, -35.0);
  return row;
}

/// The plain per-row loop both kernel paths must match bitwise — the
/// same accumulation order as radio::squaredDissimilarity.
double rowSquaredDistance(const std::vector<double>& row,
                          const std::vector<double>& query) {
  double acc = 0.0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    const double d = query[c] - row[c];
    acc += d * d;
  }
  return acc;
}

TEST(FlatMatrixTest, InterleavedLayoutRoundTrips) {
  FlatMatrix m;
  m.reset(3);
  EXPECT_TRUE(m.empty());
  m.appendRow(std::vector<double>{1.0, 2.0, 3.0});
  m.appendRow(std::vector<double>{4.0, 5.0, 6.0});
  m.appendRow(std::vector<double>{7.0, 8.0, 9.0});
  m.appendRow(std::vector<double>{10.0, 11.0, 12.0});
  m.appendRow(std::vector<double>{13.0, 14.0, 15.0});

  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.paddedRows(), 8u);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(m.at(r, c), static_cast<double>(r * 3 + c + 1));

  // Column c of a block's rows is contiguous in storage.
  const double* data = m.data();
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t lane = 0; lane < kRowBlock; ++lane)
      EXPECT_EQ(data[c * kRowBlock + lane],
                static_cast<double>(lane * 3 + c + 1));

  // The trailing partial block is zero-padded.
  const double* tail = data + kRowBlock * 3;
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t lane = 1; lane < kRowBlock; ++lane)
      EXPECT_EQ(tail[c * kRowBlock + lane], 0.0);
}

TEST(FlatMatrixTest, AppendRowRejectsLengthMismatch) {
  FlatMatrix m;
  m.reset(4);
  EXPECT_THROW(m.appendRow(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(FlatMatrixTest, ResetDropsRowsAndChangesCols) {
  FlatMatrix m;
  m.reset(2);
  m.appendRow(std::vector<double>{1.0, 2.0});
  m.reset(3);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.paddedRows(), 0u);
}

TEST(FingerprintKernelTest, ScalarMatchesPlainLoopBitwise) {
  util::Rng rng(7);
  for (const std::size_t cols : {1u, 2u, 5u, 6u, 9u}) {
    for (const std::size_t rows : {1u, 3u, 4u, 7u, 33u}) {
      FlatMatrix m;
      m.reset(cols);
      std::vector<std::vector<double>> raw;
      for (std::size_t r = 0; r < rows; ++r) {
        raw.push_back(randomRow(rng, cols));
        m.appendRow(raw.back());
      }
      const auto query = randomRow(rng, cols);
      std::vector<double> out(m.paddedRows());
      squaredDistancesScalar(m, query.data(), out.data());
      for (std::size_t r = 0; r < rows; ++r)
        EXPECT_EQ(out[r], rowSquaredDistance(raw[r], query))
            << "rows=" << rows << " cols=" << cols << " r=" << r;
    }
  }
}

TEST(FingerprintKernelTest, DispatchMatchesScalarBitwise) {
  // On an AVX2 machine with MOLOC_SIMD=ON this exercises the vector
  // path; elsewhere both calls take the scalar path and the test is a
  // tautology (the ON/OFF CI matrix covers both sides).
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto cols = static_cast<std::size_t>(rng.uniformInt(1, 9));
    const auto rows = static_cast<std::size_t>(rng.uniformInt(1, 70));
    FlatMatrix m;
    m.reset(cols);
    std::vector<double> first;
    for (std::size_t r = 0; r < rows; ++r) {
      auto row = randomRow(rng, cols);
      if (r == 0) first = row;
      if (r + 1 == rows && rows > 1) row = first;  // Duplicate rows too.
      m.appendRow(row);
    }
    const auto query = randomRow(rng, cols);
    std::vector<double> viaDispatch(m.paddedRows());
    std::vector<double> viaScalar(m.paddedRows());
    squaredDistances(m, query.data(), viaDispatch.data());
    setForceScalar(true);
    squaredDistances(m, query.data(), viaScalar.data());
    setForceScalar(false);
    for (std::size_t r = 0; r < rows; ++r)
      EXPECT_EQ(viaDispatch[r], viaScalar[r])
          << "trial=" << trial << " r=" << r;
  }
}

TEST(SelectSmallestKTest, MatchesSortReferenceWithTies) {
  util::Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniformInt(1, 60));
    const auto k = static_cast<std::size_t>(rng.uniformInt(1, 20));
    std::vector<double> distances(n);
    // Coarse quantization forces duplicate distances.
    for (auto& d : distances)
      d = static_cast<double>(rng.uniformInt(0, 9));

    std::vector<TopKEntry> expected;
    for (std::size_t i = 0; i < n; ++i) expected.push_back({distances[i], i});
    std::stable_sort(expected.begin(), expected.end(),
                     [](const TopKEntry& a, const TopKEntry& b) {
                       return a.squaredDistance < b.squaredDistance;
                     });
    expected.resize(std::min(k, n));

    std::vector<TopKEntry> got;
    selectSmallestK(distances, k, got);
    ASSERT_EQ(got.size(), expected.size()) << "trial=" << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].squaredDistance, expected[i].squaredDistance);
      EXPECT_EQ(got[i].row, expected[i].row) << "trial=" << trial;
    }
  }
}

TEST(SelectSmallestKTest, ZeroKAndEmptyInputReturnNothing) {
  std::vector<TopKEntry> out{{1.0, 3}};
  selectSmallestK(std::vector<double>{1.0, 2.0}, 0, out);
  EXPECT_TRUE(out.empty());
  selectSmallestK(std::vector<double>{}, 4, out);
  EXPECT_TRUE(out.empty());
}

// ---- Database-level equivalence against the pre-kernel algorithm ----

radio::FingerprintDatabase makeDb(util::Rng& rng, std::size_t locations,
                                  std::size_t aps) {
  radio::FingerprintDatabase db;
  for (std::size_t i = 0; i < locations; ++i)
    db.addLocation(static_cast<env::LocationId>(i),
                   radio::Fingerprint(randomRow(rng, aps)));
  return db;
}

/// The pre-kernel queryInto, re-implemented as the oracle: sqrt
/// dissimilarity per entry, partial_sort, Eq. 4 with the 0.5 floor.
std::vector<radio::Match> oracleQuery(const radio::FingerprintDatabase& db,
                                      const radio::Fingerprint& query,
                                      std::size_t k) {
  std::vector<radio::Match> out;
  for (const auto id : db.locationIds())
    out.push_back(
        {id, radio::dissimilarity(query, db.entry(id)), 0.0});
  std::partial_sort(out.begin(),
                    out.begin() + static_cast<long>(std::min(k, out.size())),
                    out.end(), [](const radio::Match& a,
                                  const radio::Match& b) {
                      return a.dissimilarity < b.dissimilarity;
                    });
  out.resize(std::min(k, out.size()));
  double invSum = 0.0;
  for (const auto& m : out)
    invSum += 1.0 / std::max(m.dissimilarity, 0.5);
  for (auto& m : out)
    m.probability = (1.0 / std::max(m.dissimilarity, 0.5)) / invSum;
  return out;
}

TEST(FingerprintDatabaseKernelTest, QueryMatchesPreKernelOracleBitwise) {
  util::Rng rng(31);
  const auto db = makeDb(rng, 41, 6);
  for (int trial = 0; trial < 20; ++trial) {
    const radio::Fingerprint query(randomRow(rng, 6));
    const auto got = db.query(query, 12);
    const auto expected = oracleQuery(db, query, 12);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].location, expected[i].location) << "trial=" << trial;
      EXPECT_EQ(got[i].dissimilarity, expected[i].dissimilarity);
      EXPECT_EQ(got[i].probability, expected[i].probability);
    }
  }
}

TEST(FingerprintDatabaseKernelTest, QueryBatchMatchesPerQueryCalls) {
  util::Rng rng(37);
  const auto db = makeDb(rng, 30, 6);
  std::vector<radio::Fingerprint> queries;
  for (int q = 0; q < 8; ++q)
    queries.emplace_back(randomRow(rng, 6));
  std::vector<const radio::Fingerprint*> pointers;
  for (const auto& q : queries) pointers.push_back(&q);

  std::vector<std::vector<radio::Match>> batch;
  db.queryBatchInto(pointers, 5, batch);
  ASSERT_EQ(batch.size(), queries.size());
  std::vector<radio::Match> single;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    db.queryInto(queries[q], 5, single);
    ASSERT_EQ(batch[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i].location, single[i].location);
      EXPECT_EQ(batch[q][i].dissimilarity, single[i].dissimilarity);
      EXPECT_EQ(batch[q][i].probability, single[i].probability);
    }
  }
}

TEST(FingerprintDatabaseKernelTest, QueryBatchIsolatesPerQueryErrors) {
  util::Rng rng(41);
  const auto db = makeDb(rng, 10, 6);
  const radio::Fingerprint good(randomRow(rng, 6));
  const radio::Fingerprint shortDims(randomRow(rng, 4));
  std::vector<double> nanRow = randomRow(rng, 6);
  nanRow[2] = std::numeric_limits<double>::quiet_NaN();
  const radio::Fingerprint nonFinite(nanRow);

  const std::vector<const radio::Fingerprint*> pointers{
      &good, &shortDims, &nonFinite, &good};
  std::vector<std::vector<radio::Match>> batch;
  std::vector<std::exception_ptr> errors;
  db.queryBatchInto(pointers, 3, batch, &errors);

  ASSERT_EQ(batch.size(), 4u);
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(batch[0].size(), 3u);
  ASSERT_NE(errors[1], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[1]), std::invalid_argument);
  ASSERT_NE(errors[2], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[2]), std::invalid_argument);
  EXPECT_EQ(errors[3], nullptr);
  EXPECT_EQ(batch[3].size(), 3u);

  // Without an error sink, the first failure propagates.
  EXPECT_THROW(db.queryBatchInto(pointers, 3, batch),
               std::invalid_argument);
}

TEST(SelectSmallestKTest, KAtLeastNReturnsEverythingSorted) {
  util::Rng rng(41);
  for (const std::size_t n : {1u, 2u, 7u, 33u}) {
    std::vector<double> distances(n);
    for (auto& d : distances)
      d = static_cast<double>(rng.uniformInt(0, 4));
    for (const std::size_t k : {n, n + 1, 10 * n}) {
      std::vector<TopKEntry> out;
      selectSmallestK(distances, k, out);
      ASSERT_EQ(out.size(), n) << "n=" << n << " k=" << k;
      for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_LE(out[i - 1].squaredDistance, out[i].squaredDistance);
        // Equal distances keep ascending row order (lower row wins).
        if (out[i - 1].squaredDistance == out[i].squaredDistance) {
          EXPECT_LT(out[i - 1].row, out[i].row);
        }
      }
    }
  }
}

// Shortlist-sized inputs straddling the kernel's block boundary: the
// tiered index hands the kernel matrices of arbitrary small sizes, so
// every size around a multiple of kRowBlock must stay bitwise-exact
// (including the zero-padded tail never leaking into real outputs).
TEST(FingerprintKernelTest, BlockStraddlingSizesMatchPlainLoopBitwise) {
  util::Rng rng(43);
  const std::size_t cols = 6;
  const std::vector<double> query = randomRow(rng, cols);
  for (const std::size_t rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u,
                                 64u, 65u, 95u, 96u, 97u}) {
    FlatMatrix m;
    m.reset(cols);
    std::vector<std::vector<double>> raw;
    for (std::size_t r = 0; r < rows; ++r) {
      raw.push_back(randomRow(rng, cols));
      m.appendRow(raw.back());
    }
    std::vector<double> out(m.paddedRows());
    squaredDistances(m, query.data(), out.data());
    for (std::size_t r = 0; r < rows; ++r) {
      const double expected = rowSquaredDistance(raw[r], query);
      EXPECT_EQ(std::memcmp(&out[r], &expected, sizeof(double)), 0)
          << "rows=" << rows << " r=" << r;
    }
  }
}

// The 64k-location venue pushes FlatMatrix well past every prior use;
// the interleaved layout and the kernel must stay exact at that scale.
TEST(FlatMatrixTest, HandlesSixtyFourKRows) {
  util::Rng rng(47);
  const std::size_t rows = (1u << 16) + 3;
  const std::size_t cols = 8;
  FlatMatrix m;
  m.reset(cols);
  std::vector<double> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c)
      row[c] = static_cast<double>(r * cols + c);
    m.appendRow(row);
  }
  ASSERT_EQ(m.rows(), rows);
  EXPECT_EQ(m.paddedRows(), ((rows + kRowBlock - 1) / kRowBlock) *
                                kRowBlock);
  // Spot-check the layout at the far end and across a block seam.
  for (const std::size_t r :
       {std::size_t{0}, rows / 2, rows - 5, rows - 1})
    for (std::size_t c = 0; c < cols; ++c)
      ASSERT_EQ(m.at(r, c), static_cast<double>(r * cols + c));

  const std::vector<double> query = randomRow(rng, cols);
  std::vector<double> out(m.paddedRows());
  squaredDistances(m, query.data(), out.data());
  for (const std::size_t r :
       {std::size_t{0}, std::size_t{1}, rows / 3, rows - 2, rows - 1}) {
    std::vector<double> expectRow(cols);
    for (std::size_t c = 0; c < cols; ++c)
      expectRow[c] = static_cast<double>(r * cols + c);
    const double expected = rowSquaredDistance(expectRow, query);
    EXPECT_EQ(std::memcmp(&out[r], &expected, sizeof(double)), 0)
        << "r=" << r;
  }
}

TEST(FingerprintDatabaseKernelTest, NearestIsArgminWithEarliestTieWin) {
  radio::FingerprintDatabase db;
  db.addLocation(7, radio::Fingerprint(std::vector<double>{-50.0, -60.0}));
  db.addLocation(3, radio::Fingerprint(std::vector<double>{-40.0, -70.0}));
  // Same fingerprint as location 7: a twin; the earlier insertion wins.
  db.addLocation(9, radio::Fingerprint(std::vector<double>{-50.0, -60.0}));
  EXPECT_EQ(db.nearest(radio::Fingerprint(std::vector<double>{-50.5, -60.5})),
            7);
  EXPECT_EQ(db.nearest(radio::Fingerprint(std::vector<double>{-41.0, -69.0})),
            3);
}

}  // namespace
}  // namespace moloc::kernel
