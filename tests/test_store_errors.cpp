// Typed-error contract of the durable-state parsers: malformed frames
// and headers must raise store::CorruptionError (a StoreError, a
// std::runtime_error) or be skipped where the API documents skipping —
// never crash, never allocate unboundedly, never surface an untyped
// exception.  Companion to the fuzz harnesses in fuzz/targets/, which
// found several of these paths (see fuzz/corpus/regressions/).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "store/checkpoint.hpp"
#include "store/crc32c.hpp"
#include "store/format.hpp"
#include "store/wal.hpp"

namespace moloc::store {
namespace {

std::string freshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_err_" + tag + "_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void writeFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string walHeader(std::uint64_t firstSeq) {
  std::string out("MOLOCWAL", 8);
  detail::putU32(out, 1);
  detail::putU64(out, firstSeq);
  return out;
}

std::string walRecord(std::uint64_t seq) {
  std::string payload;
  detail::putU8(payload, 1);  // observation type
  detail::putU64(payload, seq);
  detail::putI32(payload, 0);
  detail::putI32(payload, 1);
  detail::putF64(payload, 90.0);
  detail::putF64(payload, 4.5);
  std::string frame;
  detail::putU32(frame, static_cast<std::uint32_t>(payload.size()));
  detail::putU32(frame, crc32c(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

// The exception hierarchy is part of the contract: callers classify
// damage with catch (const CorruptionError&) and fall back to
// StoreError / runtime_error for plain I/O failure.
TEST(StoreErrors, CorruptionErrorIsTypedStoreError) {
  const CorruptionError err("x");
  const StoreError* asStore = &err;
  const std::runtime_error* asRuntime = asStore;
  EXPECT_NE(nullptr, asRuntime);
}

TEST(StoreErrors, ZeroLengthRecordFrameRaisesCorruption) {
  const std::string dir = freshDir("zero_len");
  // A CRC-valid frame with zero payload bytes: the checksum passes, so
  // the structural parse must reject it (no type byte to read) —
  // and with the typed error, not a crash.
  std::string segment = walHeader(1);
  detail::putU32(segment, 0);
  detail::putU32(segment, crc32c("", 0));
  writeFileBytes(dir + "/wal-0000000000000001.log", segment);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(StoreErrors, OversizedLengthFieldMidLogRaisesCorruption) {
  const std::string dir = freshDir("oversized_mid");
  std::string segment = walHeader(1);
  detail::putU32(segment, 1u << 20);  // Over the parsing sanity bound.
  detail::putU32(segment, 0xdeadbeef);
  segment += walRecord(1);  // Valid data after: cannot be a torn tail.
  writeFileBytes(dir + "/wal-0000000000000001.log", segment);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(StoreErrors, OversizedLengthFieldAtTailIsToleratedAsTorn) {
  const std::string dir = freshDir("oversized_tail");
  std::string segment = walHeader(1);
  segment += walRecord(1);
  detail::putU32(segment, 1u << 20);
  detail::putU32(segment, 0xdeadbeef);
  writeFileBytes(dir + "/wal-0000000000000001.log", segment);
  const WalScan scan = WalReader(dir).scan();
  EXPECT_TRUE(scan.tailDamaged);
  EXPECT_EQ(1u, scan.records);  // The record before the damage survives.
}

TEST(StoreErrors, TruncatedHeaderInNonFinalSegmentRaisesCorruption) {
  const std::string dir = freshDir("trunc_header");
  // A headerless file behind a later segment cannot be crash fallout:
  // writers create segments in order and never leave one torn behind.
  writeFileBytes(dir + "/wal-0000000000000001.log",
                 walHeader(1).substr(0, 10));
  writeFileBytes(dir + "/wal-0000000000000002.log", walHeader(1));
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(StoreErrors, TruncatedCheckpointHeaderIsSkipped) {
  const std::string dir = freshDir("ckpt_trunc");
  writeFileBytes(dir + "/checkpoint-00000000000000000001.ckpt",
                 std::string("MOLOCKPT", 8));
  EXPECT_FALSE(loadNewestCheckpoint(dir).has_value());
}

TEST(StoreErrors, CheckpointApCountBombIsRejectedWithoutAllocating) {
  const std::string dir = freshDir("ckpt_bomb");
  // CRC-valid checkpoint whose fingerprint block claims zero locations
  // but 2^40 APs.  Before the fix the decoder sized an rss buffer from
  // the unvalidated AP count — a multi-terabyte allocation attempt.
  std::string body("MOLOCKPT", 8);
  detail::putU32(body, 1);  // version
  detail::putU64(body, 1);  // throughSeq
  detail::putF64(body, 15.0);
  detail::putF64(body, 2.0);
  detail::putF64(body, 3.0);
  detail::putI32(body, 2);
  detail::putF64(body, 1.0);
  detail::putF64(body, 0.05);
  detail::putU8(body, 1);
  detail::putU8(body, 1);
  detail::putU64(body, 4);  // capacity
  detail::putU64(body, 0);  // locationCount
  for (int w = 0; w < 4; ++w) detail::putU64(body, 17 + w);  // rng
  for (int c = 0; c < 6; ++c) detail::putU64(body, 0);       // counters
  detail::putU64(body, 0);  // reservoirs
  detail::putU64(body, 0);  // entries
  detail::putU8(body, 1);   // fingerprints present
  detail::putU64(body, 0);  // zero locations...
  detail::putU64(body, std::uint64_t{1} << 40);  // ...2^40 APs
  detail::putU32(body, crc32c(body.data(), body.size()));
  writeFileBytes(dir + "/checkpoint-00000000000000000001.ckpt", body);
  // The loader's contract is skip-not-throw; completing at all (and
  // fast) is the regression being pinned.
  EXPECT_FALSE(loadNewestCheckpoint(dir).has_value());
}

TEST(StoreErrors, CheckpointSeqOverflowInFileNameIsIgnored) {
  const std::string dir = freshDir("ckpt_overflow");
  // 20 decimal digits can exceed uint64; a wrapped parse would
  // mis-order checkpoints, so the name must simply not parse.
  writeFileBytes(dir + "/checkpoint-99999999999999999999.ckpt", "junk");
  EXPECT_FALSE(loadNewestCheckpoint(dir).has_value());
}

}  // namespace
}  // namespace moloc::store
