#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace moloc::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ =
      ::testing::TempDir() + "moloc_csv_test_" +
      std::to_string(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->line()) +
      ".csv";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter writer(path_, {"a", "b"});
    writer.cell(1).cell(2.5).endRow();
    writer.cell("x").cell(std::size_t{7}).endRow();
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\nx,7\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter writer(path_, {"v"});
    writer.cell("hello, world").endRow();
    writer.cell("say \"hi\"").endRow();
  }
  EXPECT_EQ(slurp(path_), "v\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, EmptyRowsAllowed) {
  {
    CsvWriter writer(path_, {"only_header"});
  }
  EXPECT_EQ(slurp(path_), "only_header\n");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// parseCsv / parseCsvRecord

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvParse, PlainRowsAndCells) {
  EXPECT_EQ(parseCsv("a,b\nc,d\n"), (Rows{{"a", "b"}, {"c", "d"}}));
  EXPECT_EQ(parseCsv("one\n"), (Rows{{"one"}}));
  EXPECT_EQ(parseCsv(""), Rows{});
  // A missing final newline still yields the last record.
  EXPECT_EQ(parseCsv("a,b"), (Rows{{"a", "b"}}));
}

TEST(CsvParse, EmptyCells) {
  EXPECT_EQ(parseCsv(",\n"), (Rows{{"", ""}}));
  EXPECT_EQ(parseCsv("a,,b\n"), (Rows{{"a", "", "b"}}));
  EXPECT_EQ(parseCsv("\n"), (Rows{{""}}));
}

TEST(CsvParse, QuotedCellsWithSeparatorsQuotesAndNewlines) {
  EXPECT_EQ(parseCsv("\"hello, world\"\n"), (Rows{{"hello, world"}}));
  EXPECT_EQ(parseCsv("\"say \"\"hi\"\"\"\n"), (Rows{{"say \"hi\""}}));
  EXPECT_EQ(parseCsv("\"multi\nline\",x\n"), (Rows{{"multi\nline", "x"}}));
  EXPECT_EQ(parseCsv("\"\"\n"), (Rows{{""}}));
}

TEST(CsvParse, CrlfLineEndings) {
  EXPECT_EQ(parseCsv("a,b\r\nc\r\n"), (Rows{{"a", "b"}, {"c"}}));
  // A lone '\r' not followed by '\n' is cell data, not a terminator.
  EXPECT_EQ(parseCsv("a\rb\n"), (Rows{{"a\rb"}}));
}

TEST(CsvParse, MalformedInputThrowsWithByteOffset) {
  EXPECT_THROW(parseCsv("\"abc"), std::invalid_argument);    // Truncated.
  EXPECT_THROW(parseCsv("\"a\"b\n"), std::invalid_argument); // After quote.
  EXPECT_THROW(parseCsv("ab\"c\n"), std::invalid_argument);  // Stray quote.
  try {
    parseCsv("ab\"c\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte 2"), std::string::npos)
        << e.what();
  }
}

TEST(CsvParse, RecordIteratorAdvancesAndStops) {
  const std::string text = "a,b\nc\n";
  std::size_t pos = 0;
  std::vector<std::string> row;
  ASSERT_TRUE(parseCsvRecord(text, &pos, row));
  EXPECT_EQ(row, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(parseCsvRecord(text, &pos, row));
  EXPECT_EQ(row, (std::vector<std::string>{"c"}));
  EXPECT_FALSE(parseCsvRecord(text, &pos, row));
}

TEST(CsvParse, WriterOutputRoundTripsIncludingCarriageReturns) {
  // The writer/parser pair must agree; a cell holding a bare '\r' is
  // the historical disagreement (the writer left it unquoted and the
  // parser fused it with the row terminator into CRLF).
  const std::string path = ::testing::TempDir() + "moloc_csv_rt.csv";
  {
    CsvWriter writer(path, {"v"});
    writer.cell("ends with cr\r").endRow();
    writer.cell("plain").endRow();
  }
  const Rows rows = parseCsv(slurp(path));
  std::remove(path.c_str());
  EXPECT_EQ(rows,
            (Rows{{"v"}, {"ends with cr\r"}, {"plain"}}));
}

}  // namespace
}  // namespace moloc::util
