#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace moloc::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ =
      ::testing::TempDir() + "moloc_csv_test_" +
      std::to_string(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->line()) +
      ".csv";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter writer(path_, {"a", "b"});
    writer.cell(1).cell(2.5).endRow();
    writer.cell("x").cell(std::size_t{7}).endRow();
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\nx,7\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter writer(path_, {"v"});
    writer.cell("hello, world").endRow();
    writer.cell("say \"hi\"").endRow();
  }
  EXPECT_EQ(slurp(path_), "v\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, EmptyRowsAllowed) {
  {
    CsvWriter writer(path_, {"only_header"});
  }
  EXPECT_EQ(slurp(path_), "only_header\n");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace moloc::util
