#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/crc32c.hpp"
#include "store/fault_injection.hpp"
#include "store/format.hpp"

namespace moloc::store {
namespace {

// On-disk layout constants the damage-targeting tests depend on; the
// round-trip tests pin them so a format change fails loudly here.
constexpr std::size_t kHeaderBytes = 20;
constexpr std::size_t kFrameBytes = 8 + 33;  // len + crc + payload.

std::string freshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_wal_" + tag + "_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<ObservationRecord> replayAll(const std::string& dir,
                                         WalScan* scanOut = nullptr) {
  std::vector<ObservationRecord> records;
  const WalScan scan = WalReader(dir).replay(
      [&](const ObservationRecord& r) { records.push_back(r); });
  if (scanOut) *scanOut = scan;
  return records;
}

TEST(Crc32c, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix, iSCSI).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0x00000000u);
  // 32 zero bytes, second reference vector from RFC 3720.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneShot = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c(data.data(), split);
    crc = crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, oneShot) << "split at " << split;
  }
}

TEST(Wal, EmptyDirectoryScansEmpty) {
  const WalScan scan = WalReader(freshDir("empty")).scan();
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.lastSeq, 0u);
  EXPECT_FALSE(scan.tailDamaged);
  EXPECT_TRUE(scan.segments.empty());
}

TEST(Wal, RecordFreeSegmentHeaderPinsSequenceLowerBound) {
  const std::string dir = freshDir("emptyseq");
  // A header-only segment starting at seq 8 — exactly what checkpoint
  // compaction leaves behind once every record-bearing segment is
  // covered and deleted.
  { WalWriter writer(dir, {FsyncPolicy::kNone}, /*nextSeq=*/8,
                     /*segmentIndex=*/3); }

  const WalScan scan = WalReader(dir).scan();
  EXPECT_EQ(scan.records, 0u);
  ASSERT_EQ(scan.segments.size(), 1u);
  EXPECT_EQ(scan.segments[0].firstSeq, 8u);
  EXPECT_EQ(scan.segments[0].records, 0u);
  // The header proves seqs 1..7 were assigned before compaction; a
  // continuing writer seeded from lastSeq must not reissue them (a
  // reissued seq <= a checkpoint's throughSeq is silently skipped by
  // recovery — permanent data loss).
  EXPECT_EQ(scan.lastSeq, 7u);

  {
    WalWriter writer(dir, {FsyncPolicy::kNone}, scan.lastSeq + 1,
                     scan.nextSegmentIndex);
    EXPECT_EQ(writer.append(0, 1, 90.0, 4.0), 8u);
  }
  WalScan after;
  const auto records = replayAll(dir, &after);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 8u);
  EXPECT_EQ(after.lastSeq, 8u);
}

TEST(Wal, ZeroFirstSeqHeaderRaisesCorruption) {
  const std::string dir = freshDir("zeroseq");
  { WalWriter writer(dir, {FsyncPolicy::kNone}); }
  const WalScan scan = WalReader(dir).scan();
  ASSERT_EQ(scan.segments.size(), 1u);
  // Zero the header's firstSeq field (bytes 12..19): sequence numbers
  // are 1-based, so a zero can only come from corruption.
  std::string bytes = readFileBytes(scan.segments[0].path);
  for (std::size_t b = 12; b < 20; ++b) bytes[b] = '\0';
  writeFileBytes(scan.segments[0].path, bytes);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(Wal, AppendReplayRoundTripIsBitExact) {
  const std::string dir = freshDir("roundtrip");
  std::vector<ObservationRecord> written;
  {
    WalWriter writer(dir, {FsyncPolicy::kNone});
    for (int k = 0; k < 25; ++k) {
      ObservationRecord r;
      r.estimatedStart = k % 5;
      r.estimatedEnd = (k + 1) % 5;
      r.directionDeg = 90.0 + 0.1 * k;
      r.offsetMeters = 4.0 + 1e-13 * k;  // Exercises full precision.
      r.seq = writer.append(r.estimatedStart, r.estimatedEnd,
                            r.directionDeg, r.offsetMeters);
      EXPECT_EQ(r.seq, static_cast<std::uint64_t>(k + 1));
      written.push_back(r);
    }
    EXPECT_EQ(writer.lastSeq(), 25u);
  }

  WalScan scan;
  const auto read = replayAll(dir, &scan);
  ASSERT_EQ(read.size(), written.size());
  for (std::size_t k = 0; k < read.size(); ++k) {
    EXPECT_EQ(read[k].seq, written[k].seq);
    EXPECT_EQ(read[k].estimatedStart, written[k].estimatedStart);
    EXPECT_EQ(read[k].estimatedEnd, written[k].estimatedEnd);
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the log must preserve
    // the exact bit pattern or recovery diverges.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(read[k].directionDeg),
              std::bit_cast<std::uint64_t>(written[k].directionDeg));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(read[k].offsetMeters),
              std::bit_cast<std::uint64_t>(written[k].offsetMeters));
  }
  EXPECT_EQ(scan.lastSeq, 25u);
  EXPECT_FALSE(scan.tailDamaged);
  ASSERT_EQ(scan.segments.size(), 1u);
  EXPECT_EQ(scan.segments[0].records, 25u);
  // Pin the layout constants the damage tests rely on.
  EXPECT_EQ(std::filesystem::file_size(scan.segments[0].path),
            kHeaderBytes + 25 * kFrameBytes);
}

TEST(Wal, RotationSplitsSegmentsAndReplayCrossesThem) {
  const std::string dir = freshDir("rotate");
  WalConfig config;
  config.fsync = FsyncPolicy::kNone;
  // Header + two frames fit; the third record rotates.
  config.segmentMaxBytes = kHeaderBytes + 2 * kFrameBytes;
  {
    WalWriter writer(dir, config);
    for (int k = 0; k < 7; ++k) writer.append(0, 1, 90.0, 4.0);
    EXPECT_EQ(writer.stats().segmentsCreated, 4u);  // 2+2+2+1.
    EXPECT_EQ(writer.takeClosedSegments().size(), 3u);
  }
  WalScan scan;
  const auto read = replayAll(dir, &scan);
  EXPECT_EQ(read.size(), 7u);
  ASSERT_EQ(scan.segments.size(), 4u);
  EXPECT_EQ(scan.segments[0].firstSeq, 1u);
  EXPECT_EQ(scan.segments[1].firstSeq, 3u);
  EXPECT_EQ(scan.segments[3].records, 1u);
  EXPECT_EQ(scan.nextSegmentIndex, 5u);
}

TEST(Wal, FsyncPolicyControlsSyncCount) {
  {
    WalWriter w(freshDir("sync_every"), {FsyncPolicy::kEveryRecord});
    for (int k = 0; k < 10; ++k) w.append(0, 1, 90.0, 4.0);
    EXPECT_EQ(w.stats().fsyncs, 10u);
  }
  {
    WalConfig config;
    config.fsync = FsyncPolicy::kEveryN;
    config.fsyncEveryN = 4;
    WalWriter w(freshDir("sync_n"), config);
    for (int k = 0; k < 10; ++k) w.append(0, 1, 90.0, 4.0);
    EXPECT_EQ(w.stats().fsyncs, 2u);  // After records 4 and 8.
    w.sync();
    EXPECT_EQ(w.stats().fsyncs, 3u);
    w.sync();  // Nothing new to sync.
    EXPECT_EQ(w.stats().fsyncs, 3u);
  }
  {
    WalWriter w(freshDir("sync_none"), {FsyncPolicy::kNone});
    for (int k = 0; k < 10; ++k) w.append(0, 1, 90.0, 4.0);
    EXPECT_EQ(w.stats().fsyncs, 0u);
  }
}

TEST(Wal, RejectsInvalidConfig) {
  WalConfig config;
  config.fsync = FsyncPolicy::kEveryN;
  config.fsyncEveryN = 0;
  EXPECT_THROW(WalWriter(freshDir("badcfg"), config),
               std::invalid_argument);
  EXPECT_THROW(WalWriter(freshDir("badseq"), {FsyncPolicy::kNone}, 0, 1),
               std::invalid_argument);
}

/// The kill-at-any-point property at the byte level: truncating the
/// log at *every* possible length yields a clean prefix — never an
/// exception, never a record past the cut, and damage is flagged
/// exactly when the cut falls mid-record.
TEST(Wal, TruncationAtEveryByteYieldsCleanPrefix) {
  const std::string src = freshDir("trunc_src");
  {
    WalWriter writer(src, {FsyncPolicy::kNone});
    for (int k = 0; k < 8; ++k)
      writer.append(k % 3, (k + 1) % 3, 80.0 + k, 3.0 + k);
  }
  WalScan srcScan;
  replayAll(src, &srcScan);
  ASSERT_EQ(srcScan.segments.size(), 1u);
  const std::string bytes = readFileBytes(srcScan.segments[0].path);
  ASSERT_EQ(bytes.size(), kHeaderBytes + 8 * kFrameBytes);

  const std::string dir = freshDir("trunc_cut");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + std::filesystem::path(
                                           srcScan.segments[0].path)
                                           .filename()
                                           .string();
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    writeFileBytes(path, bytes.substr(0, cut));
    WalScan scan;
    std::vector<ObservationRecord> read;
    ASSERT_NO_THROW(read = replayAll(dir, &scan)) << "cut at " << cut;
    const std::size_t wholeRecords =
        cut < kHeaderBytes ? 0 : (cut - kHeaderBytes) / kFrameBytes;
    EXPECT_EQ(read.size(), wholeRecords) << "cut at " << cut;
    const bool atBoundary =
        cut >= kHeaderBytes && (cut - kHeaderBytes) % kFrameBytes == 0;
    EXPECT_EQ(scan.tailDamaged, !atBoundary) << "cut at " << cut;
    if (!read.empty()) {
      EXPECT_EQ(read.back().seq, wholeRecords);
    }
  }
}

TEST(Wal, BitFlipInFinalRecordIsToleratedAsTornTail) {
  const std::string dir = freshDir("fliptail");
  {
    WalWriter writer(dir, {FsyncPolicy::kNone});
    for (int k = 0; k < 5; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  WalScan before;
  replayAll(dir, &before);
  const std::string path = before.segments[0].path;

  // Flip one bit inside the last record's payload.
  testing::FaultFile fault(path);
  fault.flipBit(kHeaderBytes + 4 * kFrameBytes + 8 + 20, 3);

  WalScan scan;
  const auto read = replayAll(dir, &scan);
  EXPECT_EQ(read.size(), 4u);  // The damaged final record is dropped...
  EXPECT_TRUE(scan.tailDamaged);
  EXPECT_EQ(scan.tailBytesDropped, kFrameBytes);
  EXPECT_EQ(scan.tailValidBytes, kHeaderBytes + 4 * kFrameBytes);
}

TEST(Wal, BitFlipMidLogRaisesCorruptionError) {
  const std::string dir = freshDir("flipmid");
  {
    WalWriter writer(dir, {FsyncPolicy::kNone});
    for (int k = 0; k < 5; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  WalScan before;
  replayAll(dir, &before);
  // ...but the same flip in record 2 — with acknowledged records still
  // valid after it — is corruption, not crash fallout.
  testing::FaultFile fault(before.segments[0].path);
  fault.flipBit(kHeaderBytes + 1 * kFrameBytes + 8 + 20, 3);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(Wal, DamageInNonFinalSegmentRaisesEvenAtItsTail) {
  const std::string dir = freshDir("flipseg");
  WalConfig config;
  config.fsync = FsyncPolicy::kNone;
  config.segmentMaxBytes = kHeaderBytes + 2 * kFrameBytes;
  {
    WalWriter writer(dir, config);
    for (int k = 0; k < 4; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  std::vector<std::string> paths;
  for (const auto& seg : WalReader(dir).scan().segments)
    paths.push_back(seg.path);
  ASSERT_EQ(paths.size(), 2u);
  // Damage the *last* record of the *first* segment: positionally a
  // tail, but a non-final segment has no torn-tail excuse.
  testing::FaultFile fault(paths[0]);
  fault.flipByte(kHeaderBytes + kFrameBytes + 10);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(Wal, MissingMiddleSegmentRaisesSequenceGap) {
  const std::string dir = freshDir("gap");
  WalConfig config;
  config.fsync = FsyncPolicy::kNone;
  config.segmentMaxBytes = kHeaderBytes + 2 * kFrameBytes;
  {
    WalWriter writer(dir, config);
    for (int k = 0; k < 6; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  const auto segments = WalReader(dir).scan().segments;
  ASSERT_EQ(segments.size(), 3u);
  std::filesystem::remove(segments[1].path);
  EXPECT_THROW(WalReader(dir).scan(), CorruptionError);
}

TEST(Wal, RepairTruncatesTornTailAndWriterContinues) {
  const std::string dir = freshDir("repair");
  {
    WalWriter writer(dir, {FsyncPolicy::kNone});
    for (int k = 0; k < 6; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  WalScan before;
  replayAll(dir, &before);
  testing::FaultFile fault(before.segments[0].path);
  fault.chopBytes(10);  // Tear the last record.

  const WalScan repaired = WalReader(dir).repair();
  EXPECT_EQ(repaired.records, 5u);
  EXPECT_FALSE(repaired.tailDamaged);
  EXPECT_EQ(std::filesystem::file_size(before.segments[0].path),
            kHeaderBytes + 5 * kFrameBytes);

  // A new writer continues the sequence in a fresh segment; the full
  // log replays cleanly across both.
  {
    WalWriter writer(dir, {FsyncPolicy::kNone}, repaired.lastSeq + 1,
                     repaired.nextSegmentIndex);
    EXPECT_EQ(writer.append(1, 2, 91.0, 4.5), 6u);
  }
  WalScan after;
  const auto read = replayAll(dir, &after);
  ASSERT_EQ(read.size(), 6u);
  EXPECT_EQ(read.back().seq, 6u);
  EXPECT_EQ(read.back().estimatedStart, 1);
  EXPECT_FALSE(after.tailDamaged);
}

TEST(Wal, RepairDeletesHeaderlessTailSegment) {
  const std::string dir = freshDir("repair_headerless");
  WalConfig config;
  config.fsync = FsyncPolicy::kNone;
  config.segmentMaxBytes = kHeaderBytes + 2 * kFrameBytes;
  {
    WalWriter writer(dir, config);
    for (int k = 0; k < 3; ++k) writer.append(0, 1, 90.0, 4.0);
  }
  const auto segments = WalReader(dir).scan().segments;
  ASSERT_EQ(segments.size(), 2u);
  // Simulate a crash during creation of the second segment: its header
  // never fully reached the disk.
  testing::FaultFile(segments[1].path).truncateTo(7);

  const WalScan repaired = WalReader(dir).repair();
  EXPECT_EQ(repaired.records, 2u);
  EXPECT_FALSE(std::filesystem::exists(segments[1].path));
  // The burned index is not reused.
  EXPECT_EQ(repaired.nextSegmentIndex, segments[1].index + 1);
}

TEST(Wal, SegmentsAreNeverReopened) {
  const std::string dir = freshDir("noreopen");
  { WalWriter writer(dir, {FsyncPolicy::kNone}); }
  // Same segment index again: must refuse, not append over history.
  EXPECT_THROW(WalWriter(dir, {FsyncPolicy::kNone}, 1, 1), StoreError);
}

TEST(FaultFile, OperationsAndBounds) {
  const std::string dir = freshDir("fault");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/victim.bin";
  writeFileBytes(path, std::string("abcdef"));

  testing::FaultFile fault(path);
  EXPECT_EQ(fault.size(), 6u);
  fault.flipByte(1);
  EXPECT_EQ(readFileBytes(path)[1], static_cast<char>('b' ^ 0xff));
  fault.flipBit(2, 0);
  EXPECT_EQ(readFileBytes(path)[2], static_cast<char>('c' ^ 0x01));
  fault.chopBytes(2);
  EXPECT_EQ(fault.size(), 4u);
  fault.truncateTo(1);
  EXPECT_EQ(fault.size(), 1u);

  EXPECT_THROW(fault.flipByte(1), std::runtime_error);   // Past end.
  EXPECT_THROW(fault.flipByte(0, 0), std::runtime_error);  // No-op mask.
  EXPECT_THROW(fault.flipBit(0, 8), std::runtime_error);
  EXPECT_THROW(fault.truncateTo(2), std::runtime_error);  // Would grow.
  EXPECT_THROW(fault.chopBytes(5), std::runtime_error);
  EXPECT_THROW(testing::FaultFile(dir + "/absent"), std::runtime_error);
}

}  // namespace
}  // namespace moloc::store
