#include "core/motion_matcher.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace moloc::core {
namespace {

TEST(GaussianWindow, CentredWindowHasMostMass) {
  const double p = gaussianWindowProbability(0.0, 1.0, 0.0, 0.5);
  // +-2 sigma window: ~95 % of the mass.
  EXPECT_NEAR(p, 0.954, 0.01);
}

TEST(GaussianWindow, FarWindowHasLittleMass) {
  const double p = gaussianWindowProbability(5.0, 0.5, 0.0, 1.0);
  EXPECT_LT(p, 1e-3);
}

TEST(GaussianWindow, MassDecreasesWithDistanceFromMean) {
  double prev = 1.0;
  for (double x : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double p = gaussianWindowProbability(x, 0.5, 0.0, 1.0);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(GaussianWindow, WholeLineIsOne) {
  const double p = gaussianWindowProbability(0.0, 1e6, 0.0, 1.0);
  EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(GaussianWindow, DegenerateSigmaIsIndicator) {
  EXPECT_EQ(gaussianWindowProbability(0.3, 0.5, 0.0, 0.0), 1.0);
  EXPECT_EQ(gaussianWindowProbability(0.6, 0.5, 0.0, 0.0), 0.0);
}

TEST(GaussianWindow, SymmetricAroundMean) {
  const double left = gaussianWindowProbability(3.0, 0.5, 5.0, 1.2);
  const double right = gaussianWindowProbability(7.0, 0.5, 5.0, 1.2);
  EXPECT_NEAR(left, right, 1e-12);
}

class MotionMatcherTest : public ::testing::Test {
 protected:
  MotionMatcherTest() : db_(4) {
    // 0 -> 1: east, 4 m.  1 -> 2: north, 4 m.
    db_.setEntryWithMirror(0, 1, {90.0, 5.0, 4.0, 0.3, 10});
    db_.setEntryWithMirror(1, 2, {0.0, 5.0, 4.0, 0.3, 10});
  }

  MotionDatabase db_;
  MotionMatcherParams params_;
};

TEST_F(MotionMatcherTest, MatchingMotionScoresHigh) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(0, 1, {90.0, 4.0});
  EXPECT_GT(p, 0.5);
}

TEST_F(MotionMatcherTest, OppositeDirectionScoresLow) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(0, 1, {270.0, 4.0});
  EXPECT_LT(p, 1e-3);
}

TEST_F(MotionMatcherTest, WrongOffsetScoresLow) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(0, 1, {90.0, 9.0});
  EXPECT_LT(p, 1e-3);
}

TEST_F(MotionMatcherTest, MirroredEntryMatchesReverseWalk) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(1, 0, {270.0, 4.0});
  EXPECT_GT(p, 0.5);
}

TEST_F(MotionMatcherTest, UnknownPairGetsFloor) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(0, 3, {90.0, 4.0});
  EXPECT_DOUBLE_EQ(p, params_.unreachableFloor);
}

TEST_F(MotionMatcherTest, ProbabilityNeverBelowFloor) {
  const MotionMatcher matcher(db_, params_);
  const double p = matcher.pairProbability(0, 1, {270.0, 20.0});
  EXPECT_GE(p, params_.unreachableFloor);
}

TEST_F(MotionMatcherTest, DirectionHandlesWrap) {
  MotionDatabase db(2);
  db.setEntryWithMirror(0, 1, {359.0, 5.0, 4.0, 0.3, 10});
  const MotionMatcher matcher(db, params_);
  // Measured 2 degrees: circularly 3 degrees from the stored 359.
  const double near = matcher.pairProbability(0, 1, {2.0, 4.0});
  const double far = matcher.pairProbability(0, 1, {180.0, 4.0});
  EXPECT_GT(near, 0.3);
  EXPECT_LT(far, 1e-3);
}

TEST_F(MotionMatcherTest, StationarySelfTransition) {
  const MotionMatcher matcher(db_, params_);
  const double still = matcher.pairProbability(1, 1, {0.0, 0.1});
  const double moved = matcher.pairProbability(1, 1, {0.0, 4.0});
  EXPECT_GT(still, moved);
  EXPECT_GT(still, params_.unreachableFloor);
}

TEST_F(MotionMatcherTest, StationaryCanBeDisabled) {
  MotionMatcherParams params;
  params.allowStationary = false;
  const MotionMatcher matcher(db_, params);
  EXPECT_DOUBLE_EQ(matcher.pairProbability(1, 1, {0.0, 0.1}),
                   params.unreachableFloor);
}

TEST_F(MotionMatcherTest, SetProbabilityMarginalizesOverCandidates) {
  const MotionMatcher matcher(db_, params_);
  const std::vector<WeightedCandidate> prev{{0, 0.5}, {2, 0.5}};
  // Walking east 4 m: reachable from 0 (towards 1), not from 2.
  const double pTo1 = matcher.setProbability(prev, 1, {90.0, 4.0});
  const double expected =
      0.5 * matcher.pairProbability(0, 1, {90.0, 4.0}) +
      0.5 * matcher.pairProbability(2, 1, {90.0, 4.0});
  EXPECT_NEAR(pTo1, expected, 1e-12);
}

TEST_F(MotionMatcherTest, SetProbabilityWeightsByPrior) {
  const MotionMatcher matcher(db_, params_);
  const std::vector<WeightedCandidate> confident{{0, 0.9}, {2, 0.1}};
  const std::vector<WeightedCandidate> doubtful{{0, 0.1}, {2, 0.9}};
  const sensors::MotionMeasurement eastWalk{90.0, 4.0};
  EXPECT_GT(matcher.setProbability(confident, 1, eastWalk),
            matcher.setProbability(doubtful, 1, eastWalk));
}

TEST_F(MotionMatcherTest, EmptyPreviousSetYieldsZero) {
  const MotionMatcher matcher(db_, params_);
  EXPECT_DOUBLE_EQ(matcher.setProbability({}, 1, {90.0, 4.0}), 0.0);
}

TEST_F(MotionMatcherTest, FactorsMultiplyPerEq5) {
  const MotionMatcher matcher(db_, params_);
  const RlmStats stats{90.0, 5.0, 4.0, 0.3, 10};
  const sensors::MotionMeasurement motion{92.0, 4.1};
  const double product = matcher.directionFactor(stats, 92.0) *
                         matcher.offsetFactor(stats, 4.1);
  EXPECT_NEAR(matcher.pairProbability(0, 1, motion), product, 1e-12);
}

/// Alpha/beta discretization: wider windows catch more mass.
class WindowWidthTest : public ::testing::TestWithParam<double> {};

TEST_P(WindowWidthTest, WiderAlphaMoreMass) {
  MotionDatabase db(2);
  db.setEntryWithMirror(0, 1, {90.0, 8.0, 4.0, 0.3, 10});
  MotionMatcherParams narrow;
  narrow.alphaDeg = GetParam();
  MotionMatcherParams wide;
  wide.alphaDeg = GetParam() + 10.0;
  const MotionMatcher narrowMatcher(db, narrow);
  const MotionMatcher wideMatcher(db, wide);
  const RlmStats stats{90.0, 8.0, 4.0, 0.3, 10};
  EXPECT_LE(narrowMatcher.directionFactor(stats, 95.0),
            wideMatcher.directionFactor(stats, 95.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowWidthTest,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0, 45.0));

TEST(CircularGaussianWindow, MatchesUnwrappedWhenInsideCircle) {
  // A window wholly inside [-180, 180] must behave exactly like the
  // plain Gaussian window around a zero mean.
  for (double deviation : {-90.0, -10.0, 0.0, 25.0, 120.0}) {
    EXPECT_DOUBLE_EQ(
        circularGaussianWindowProbability(deviation, 30.0, 40.0),
        gaussianWindowProbability(deviation, 30.0, 0.0, 40.0));
  }
}

TEST(CircularGaussianWindow, ClampsSpilloverAtTheAntipode) {
  // Regression: with alpha near 360 the unwrapped window spilled past
  // +-180 and claimed probability mass that does not exist on the
  // circle.  A window [150, 190] must integrate only [150, 180] —
  // identical to an in-circle window centred at 165 with half-width 15.
  EXPECT_DOUBLE_EQ(circularGaussianWindowProbability(170.0, 20.0, 50.0),
                   gaussianWindowProbability(165.0, 15.0, 0.0, 50.0));
  EXPECT_DOUBLE_EQ(circularGaussianWindowProbability(-170.0, 20.0, 50.0),
                   gaussianWindowProbability(-165.0, 15.0, 0.0, 50.0));
  // The clamped value is strictly less than the unwrapped one.
  EXPECT_LT(circularGaussianWindowProbability(170.0, 20.0, 50.0),
            gaussianWindowProbability(170.0, 20.0, 0.0, 50.0));
}

TEST(CircularGaussianWindow, NeverExceedsCircularMass) {
  // For any measurement, the direction factor may claim at most the
  // total mass the Gaussian places on the circle.
  const double circleMass =
      gaussianWindowProbability(0.0, 180.0, 0.0, 100.0);
  for (double deviation = -180.0; deviation <= 180.0; deviation += 15.0) {
    EXPECT_LE(
        circularGaussianWindowProbability(deviation, 180.0, 100.0),
        circleMass + 1e-15)
        << "deviation " << deviation;
  }
}

TEST(CircularGaussianWindow, DegenerateSigmaIsIndicator) {
  EXPECT_EQ(circularGaussianWindowProbability(10.0, 20.0, 0.0), 1.0);
  EXPECT_EQ(circularGaussianWindowProbability(50.0, 20.0, 0.0), 0.0);
}

TEST(MotionMatcherCircular, DirectionFactorClampsWideAlpha) {
  MotionDatabase db(2);
  db.setEntry(0, 1, {0.0, 50.0, 4.0, 0.3, 10});
  MotionMatcherParams params;
  params.alphaDeg = 40.0;
  const MotionMatcher matcher(db, params);
  const RlmStats stats{0.0, 50.0, 4.0, 0.3, 10};
  // Deviation 170 with half-width 20: window clamps at the antipode.
  EXPECT_DOUBLE_EQ(matcher.directionFactor(stats, 170.0),
                   gaussianWindowProbability(165.0, 15.0, 0.0, 50.0));
}

TEST(MotionMatcherCircular, StationaryDirectionFactorCapsAtOne) {
  // An alpha wider than the circle covers at most the whole circle, so
  // the stationary self-transition probability stays a probability.
  MotionDatabase db(2);
  MotionMatcherParams params;
  params.alphaDeg = 400.0;
  params.stationarySigmaMeters = 0.5;
  const MotionMatcher matcher(db, params);
  const double p = matcher.pairProbability(0, 0, {90.0, 0.0});
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace moloc::core
