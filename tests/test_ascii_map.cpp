#include "eval/ascii_map.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "env/office_hall.hpp"

namespace moloc::eval {
namespace {

TEST(AsciiMap, RejectsBadResolution) {
  env::FloorPlan plan(10.0, 10.0);
  EXPECT_THROW(AsciiMap(plan, 0.0), std::invalid_argument);
  EXPECT_THROW(AsciiMap(plan, -1.0), std::invalid_argument);
}

TEST(AsciiMap, RendersLocationsAsIds) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({5.0, 5.0});
  const AsciiMap map(plan);
  const auto art = map.render();
  EXPECT_NE(art.find("00"), std::string::npos);
}

TEST(AsciiMap, RendersWalls) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addWall({{2.0, 2.0}, {8.0, 2.0}});
  const AsciiMap map(plan);
  EXPECT_NE(map.render().find('#'), std::string::npos);
}

TEST(AsciiMap, NorthIsUp) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({5.0, 9.0});  // North.
  plan.addReferenceLocation({5.0, 1.0});  // South.
  const AsciiMap map(plan);
  const auto art = map.render();
  // "00" (north) appears before "01" (south) in the rendered string.
  EXPECT_LT(art.find("00"), art.find("01"));
}

TEST(AsciiMap, MarksOverwrite) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({5.0, 5.0});
  AsciiMap map(plan);
  map.markLocation(0, 'T');
  EXPECT_NE(map.render().find('T'), std::string::npos);
}

TEST(AsciiMap, MarkClampsOutOfBounds) {
  env::FloorPlan plan(10.0, 10.0);
  AsciiMap map(plan);
  EXPECT_NO_THROW(map.mark({-5.0, 50.0}, 'X'));
  EXPECT_NE(map.render().find('X'), std::string::npos);
}

TEST(AsciiMap, OfficeHallRendersAllLocations) {
  const auto hall = env::makeOfficeHall();
  const AsciiMap map(hall.plan);
  const auto art = map.render();
  // Spot-check the corners of the grid: paper ids 1, 7, 22, 28 are our
  // 0-based 00, 06, 21, 27.
  for (const char* id : {"00", "06", "21", "27"})
    EXPECT_NE(art.find(id), std::string::npos) << id;

  // Line structure: every row has the same width.
  std::istringstream rows(art);
  std::string row;
  std::size_t width = 0;
  while (std::getline(rows, row)) {
    if (width == 0) width = row.size();
    EXPECT_EQ(row.size(), width);
  }
}

}  // namespace
}  // namespace moloc::eval
