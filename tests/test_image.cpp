// Tests of the venue-image subsystem (src/image): write -> load round
// trips must reproduce every serving structure bitwise, mmap and the
// read() fallback must be indistinguishable, views must pin the
// mapping, damaged files must raise typed ImageErrors (never crash or
// over-read), and the writer must keep the store's crash discipline.

#include "image/image_loader.hpp"
#include "image/image_writer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/motion_database.hpp"
#include "core/online_motion_database.hpp"
#include "core/world_snapshot.hpp"
#include "env/floor_plan.hpp"
#include "image/format.hpp"
#include "index/tiered_index.hpp"
#include "kernel/fingerprint_kernel.hpp"
#include "kernel/motion_kernel.hpp"
#include "radio/fingerprint.hpp"
#include "radio/fingerprint_database.hpp"
#include "store/fault_injection.hpp"
#include "store/format.hpp"
#include "store/state_store.hpp"
#include "util/rng.hpp"

namespace moloc::image {
namespace {

constexpr double kFloorDbm = -100.0;

std::string freshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_image_" + tag +
                          "_" + std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::shared_ptr<radio::FingerprintDatabase> makeSparseDb(
    std::size_t locations, std::size_t apCount, std::uint64_t seed) {
  auto db = std::make_shared<radio::FingerprintDatabase>();
  util::Rng rng(seed);
  for (std::size_t loc = 0; loc < locations; ++loc) {
    std::vector<double> rss(apCount, kFloorDbm);
    const std::size_t windowStart =
        (loc * apCount / std::max<std::size_t>(locations, 1)) % apCount;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, apCount); ++i)
      rss[(windowStart + i) % apCount] = rng.uniform(-90.0, -40.0);
    db->addLocation(static_cast<env::LocationId>(loc),
                    radio::Fingerprint(std::move(rss)));
  }
  return db;
}

radio::Fingerprint makeQuery(std::size_t apCount, util::Rng& rng) {
  std::vector<double> rss(apCount, kFloorDbm);
  const std::size_t start = static_cast<std::size_t>(
      rng.uniformIndex(static_cast<std::uint64_t>(apCount)));
  for (std::size_t i = 0; i < std::min<std::size_t>(4, apCount); ++i)
    rss[(start + i) % apCount] = rng.uniform(-92.0, -42.0);
  return radio::Fingerprint(std::move(rss));
}

core::MotionDatabase makeMotion(std::size_t locations,
                                std::uint64_t seed) {
  core::MotionDatabase motion(locations);
  util::Rng rng(seed);
  for (std::size_t i = 0; i + 1 < locations; ++i) {
    motion.setEntry(static_cast<env::LocationId>(i),
                    static_cast<env::LocationId>(i + 1),
                    {rng.uniform(0.0, 180.0), 4.0,
                     rng.uniform(2.0, 6.0), 0.3, 20});
    if (i + 2 < locations && i % 3 == 0)
      motion.setEntry(static_cast<env::LocationId>(i + 2),
                      static_cast<env::LocationId>(i),
                      {rng.uniform(-180.0, 0.0), 5.0,
                       rng.uniform(2.0, 6.0), 0.4, 12});
  }
  return motion;
}

std::shared_ptr<const core::WorldSnapshot> makeWorld(
    std::size_t locations, std::size_t apCount, std::uint64_t seed,
    bool withIndex) {
  auto db = makeSparseDb(locations, apCount, seed);
  std::shared_ptr<const index::TieredIndex> index;
  if (withIndex) {
    index::IndexConfig config;
    config.maxShardEntries = std::max<std::size_t>(locations / 4, 8);
    index = std::make_shared<const index::TieredIndex>(db, config);
  }
  return std::make_shared<const core::WorldSnapshot>(
      db, makeMotion(locations, seed + 1), /*generation=*/3,
      /*intakeRecords=*/77, index);
}

void expectMatchesBitwiseEqual(const std::vector<radio::Match>& a,
                               const std::vector<radio::Match>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].location, b[i].location) << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].dissimilarity, &b[i].dissimilarity,
                          sizeof(double)),
              0)
        << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].probability, &b[i].probability,
                          sizeof(double)),
              0)
        << "rank " << i;
  }
}

std::vector<std::uint8_t> readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)),
      std::istreambuf_iterator<char>());
  return bytes;
}

TEST(VenueImage, RoundTripPreservesEveryStructureBitwise) {
  const std::string dir = freshDir("roundtrip");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(400, 12, 17, /*withIndex=*/true);
  const ImageWriteInfo info = writeVenueImage(path, *world);
  EXPECT_GE(info.sections, 11u);
  EXPECT_EQ(info.bytes, std::filesystem::file_size(path));

  const VenueImage image = VenueImage::open(path);
  EXPECT_TRUE(image.mapped());
  EXPECT_EQ(image.locationCount(), 400u);
  EXPECT_EQ(image.apCount(), 12u);
  EXPECT_EQ(image.meta().generation, 3u);
  EXPECT_EQ(image.meta().intakeRecords, 77u);
  ASSERT_TRUE(image.hasIndex());

  // Fingerprints: ids, per-entry values, and the kernel mirror.
  const auto& db = *world->fingerprints();
  const auto& loaded = *image.fingerprints();
  ASSERT_EQ(loaded.size(), db.size());
  EXPECT_EQ(loaded.apCount(), db.apCount());
  for (std::size_t r = 0; r < db.size(); ++r) {
    EXPECT_EQ(loaded.idAt(r), db.idAt(r));
    const auto a = db.entryAt(r).values();
    const auto b = loaded.entryAt(r).values();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)),
              0)
        << "row " << r;
  }
  const auto& flatA = db.flatMatrix();
  const auto& flatB = loaded.flatMatrix();
  ASSERT_EQ(flatA.paddedRows(), flatB.paddedRows());
  ASSERT_EQ(flatA.cols(), flatB.cols());
  EXPECT_TRUE(flatB.isView());
  EXPECT_EQ(std::memcmp(flatA.data(), flatB.data(),
                        flatA.paddedRows() * flatA.cols() * sizeof(double)),
            0);

  // Adjacency: CSR arrays verbatim, precomputed constants included.
  const auto& adjA = world->adjacency();
  const auto& adjB = *image.adjacency();
  EXPECT_TRUE(adjB.isView());
  ASSERT_EQ(adjB.locationCount(), adjA.locationCount());
  ASSERT_EQ(adjB.edgeCount(), adjA.edgeCount());
  EXPECT_EQ(std::memcmp(adjA.rowStarts().data(), adjB.rowStarts().data(),
                        adjA.rowStarts().size() * sizeof(std::size_t)),
            0);
  EXPECT_EQ(std::memcmp(adjA.edges().data(), adjB.edges().data(),
                        adjA.edgeCount() * sizeof(kernel::PairWindow)),
            0);

  // Index: same shard structure, bitwise-identical answers.
  ASSERT_EQ(image.tieredIndex()->shardCount(),
            world->tieredIndex()->shardCount());
  util::Rng rng(5);
  std::vector<radio::Match> exact;
  std::vector<radio::Match> viaImage;
  for (int trial = 0; trial < 25; ++trial) {
    const radio::Fingerprint query = makeQuery(12, rng);
    for (const std::size_t k : {1u, 4u, 16u}) {
      db.queryInto(query, k, exact);
      image.tieredIndex()->queryInto(query, k, viaImage);
      expectMatchesBitwiseEqual(exact, viaImage);
    }
  }
}

TEST(VenueImage, MmapAndReadFallbackAreBitwiseIdentical) {
  const std::string dir = freshDir("fallback");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(150, 8, 23, /*withIndex=*/true);
  writeVenueImage(path, *world);

  const VenueImage viaMmap =
      VenueImage::open(path, {LoadMode::kMmap, VerifyMode::kFull});
  const VenueImage viaRead =
      VenueImage::open(path, {LoadMode::kReadFallback, VerifyMode::kFull});
  EXPECT_TRUE(viaMmap.mapped());
  EXPECT_FALSE(viaRead.mapped());

  ASSERT_EQ(viaMmap.locationCount(), viaRead.locationCount());
  EXPECT_EQ(std::memcmp(viaMmap.adjacency()->edges().data(),
                        viaRead.adjacency()->edges().data(),
                        viaMmap.adjacency()->edgeCount() *
                            sizeof(kernel::PairWindow)),
            0);
  util::Rng rng(7);
  std::vector<radio::Match> a;
  std::vector<radio::Match> b;
  for (int trial = 0; trial < 20; ++trial) {
    const radio::Fingerprint query = makeQuery(8, rng);
    viaMmap.tieredIndex()->queryInto(query, 6, a);
    viaRead.tieredIndex()->queryInto(query, 6, b);
    expectMatchesBitwiseEqual(a, b);
  }
}

TEST(VenueImage, BulkUnverifiedModeServesIdentically) {
  const std::string dir = freshDir("bulk");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(120, 8, 31, /*withIndex=*/true);
  writeVenueImage(path, *world);

  const VenueImage full =
      VenueImage::open(path, {LoadMode::kMmap, VerifyMode::kFull});
  const VenueImage fast = VenueImage::open(
      path, {LoadMode::kMmap, VerifyMode::kBulkUnverified});
  util::Rng rng(9);
  std::vector<radio::Match> a;
  std::vector<radio::Match> b;
  for (int trial = 0; trial < 10; ++trial) {
    const radio::Fingerprint query = makeQuery(8, rng);
    full.tieredIndex()->queryInto(query, 5, a);
    fast.tieredIndex()->queryInto(query, 5, b);
    expectMatchesBitwiseEqual(a, b);
  }
}

TEST(VenueImage, ViewsPinTheMappingAfterTheImageHandleDies) {
  const std::string dir = freshDir("pin");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(80, 6, 41, /*withIndex=*/true);
  writeVenueImage(path, *world);

  std::shared_ptr<const radio::FingerprintDatabase> db;
  std::shared_ptr<const kernel::MotionAdjacency> adjacency;
  std::shared_ptr<const index::TieredIndex> index;
  {
    const VenueImage image = VenueImage::open(path);
    db = image.fingerprints();
    adjacency = image.adjacency();
    index = image.tieredIndex();
  }
  // The VenueImage is gone; the mapping must survive behind each
  // aliasing handle independently.
  util::Rng rng(3);
  const radio::Fingerprint query = makeQuery(6, rng);
  std::vector<radio::Match> exact;
  std::vector<radio::Match> tiered;
  db->queryInto(query, 4, exact);
  index->queryInto(query, 4, tiered);
  expectMatchesBitwiseEqual(exact, tiered);
  EXPECT_GT(adjacency->edgeCount(), 0u);
  EXPECT_EQ(adjacency->outEdges(0).size(),
            world->adjacency().outEdges(0).size());
  // Drop the database and index; the adjacency alone must still pin
  // the mapping.
  db.reset();
  index.reset();
  EXPECT_EQ(std::memcmp(adjacency->edges().data(),
                        world->adjacency().edges().data(),
                        adjacency->edgeCount() * sizeof(kernel::PairWindow)),
            0);
}

TEST(VenueImage, ImageBackedWorldSnapshotServesTheSameWorld) {
  const std::string dir = freshDir("snapshot");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(90, 8, 53, /*withIndex=*/true);
  writeVenueImage(path, *world);

  const VenueImage image = VenueImage::open(path);
  auto adopted = std::make_shared<const core::WorldSnapshot>(
      image.fingerprints(), image.adjacency(),
      image.meta().generation, image.meta().intakeRecords,
      image.tieredIndex());
  EXPECT_EQ(adopted->generation(), 3u);
  EXPECT_EQ(adopted->intakeRecords(), 77u);
  EXPECT_EQ(&adopted->adjacency(), image.adjacency().get());
  EXPECT_EQ(adopted->motion().locationCount(), 0u);

  // adjacencyOf must pin the adopted chain exactly like a built world.
  auto alias = core::WorldSnapshot::adjacencyOf(adopted);
  adopted.reset();
  ASSERT_NE(alias, nullptr);
  EXPECT_EQ(alias->edgeCount(), world->adjacency().edgeCount());
  for (env::LocationId id = 0;
       static_cast<std::size_t>(id) < world->adjacency().locationCount();
       ++id) {
    const auto a = world->adjacency().outEdges(id);
    const auto b = alias->outEdges(id);
    ASSERT_EQ(a.size(), b.size()) << "row " << id;
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(kernel::PairWindow)),
              0)
        << "row " << id;
  }
}

TEST(VenueImage, WorldWithoutIndexRoundTripsWithoutIndexSections) {
  const std::string dir = freshDir("noindex");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(60, 6, 67, /*withIndex=*/false);
  const ImageWriteInfo info =
      writeVenueImage(path, *world, {/*fsync=*/false});
  EXPECT_EQ(info.sections, 6u);

  const VenueImage image = VenueImage::open(path);
  EXPECT_FALSE(image.hasIndex());
  EXPECT_EQ(image.tieredIndex(), nullptr);
  util::Rng rng(11);
  const radio::Fingerprint query = makeQuery(6, rng);
  std::vector<radio::Match> exact;
  std::vector<radio::Match> loaded;
  world->fingerprints()->queryInto(query, 3, exact);
  image.fingerprints()->queryInto(query, 3, loaded);
  expectMatchesBitwiseEqual(exact, loaded);
}

TEST(VenueImage, WriterRejectsWorldViolatingTheServingInvariant) {
  // A fingerprinted id the adjacency cannot look up would make
  // outEdges() over-read at serve time; the writer must refuse.
  auto db = std::make_shared<radio::FingerprintDatabase>();
  db->addLocation(5, radio::Fingerprint({-50.0, -60.0}));
  const core::WorldSnapshot world(db, core::MotionDatabase(3), 1, 0);
  const std::string dir = freshDir("invariant");
  EXPECT_THROW(writeVenueImage(dir + "/venue.img", world), ImageError);
}

TEST(VenueImage, EveryTruncationIsATypedError) {
  const std::string dir = freshDir("truncate");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(12, 4, 71, /*withIndex=*/true);
  writeVenueImage(path, *world);
  const std::vector<std::uint8_t> bytes = readBytes(path);
  ASSERT_GT(bytes.size(), sizeof(FileHeader));

  // The full buffer loads; every proper prefix is typed damage.
  EXPECT_NO_THROW(VenueImage::fromBuffer(bytes));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        VenueImage::fromBuffer(std::span(bytes.data(), len)),
        ImageError)
        << "prefix " << len;
  }
}

TEST(VenueImage, EveryCoveredByteFlipIsDetected) {
  const std::string dir = freshDir("bitflip");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(12, 4, 73, /*withIndex=*/true);
  writeVenueImage(path, *world);
  std::vector<std::uint8_t> bytes = readBytes(path);

  // Which byte offsets are covered by a checksum (header + table via
  // tableCrc, every section via its entry's crc)?  Only the zero
  // padding between sections is uncovered; a flip there must load as
  // if nothing happened.
  FileHeader header{};
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<bool> covered(bytes.size(), false);
  const std::size_t tableEnd =
      sizeof(FileHeader) + header.sectionCount * sizeof(SectionEntry);
  for (std::size_t i = 0; i < tableEnd; ++i) covered[i] = true;
  std::vector<SectionEntry> table(header.sectionCount);
  std::memcpy(table.data(), bytes.data() + sizeof(FileHeader),
              header.sectionCount * sizeof(SectionEntry));
  for (const SectionEntry& entry : table)
    for (std::uint64_t i = 0; i < entry.length; ++i)
      covered[entry.offset + i] = true;

  for (std::size_t at = 0; at < bytes.size(); ++at) {
    bytes[at] ^= 0x40;
    if (covered[at]) {
      EXPECT_THROW(VenueImage::fromBuffer(bytes), ImageError)
          << "offset " << at;
    } else {
      const VenueImage image = VenueImage::fromBuffer(bytes);
      EXPECT_EQ(image.locationCount(), 12u) << "offset " << at;
    }
    bytes[at] ^= 0x40;
  }
}

TEST(VenueImage, CrashFaultsOnThePublishedFileAreTypedErrors) {
  const std::string dir = freshDir("faults");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(40, 6, 79, /*withIndex=*/true);
  writeVenueImage(path, *world);

  // A leftover .tmp from a crashed writer must not shadow the
  // published image.
  {
    const std::vector<std::uint8_t> bytes = readBytes(path);
    std::ofstream torn(path + ".tmp", std::ios::binary);
    torn.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_NO_THROW(VenueImage::open(path));

  // Re-publishing over the same path replaces the image atomically.
  writeVenueImage(path, *world);
  EXPECT_NO_THROW(VenueImage::open(path));

  const store::testing::FaultFile fault(path);
  const std::uint64_t size = fault.size();
  fault.flipByte(size / 2);
  EXPECT_THROW(VenueImage::open(path), ImageError);
  fault.flipByte(size / 2);  // Undo.
  EXPECT_NO_THROW(VenueImage::open(path));
  fault.truncateTo(size / 2);
  EXPECT_THROW(VenueImage::open(path), ImageError);
  EXPECT_THROW(
      VenueImage::open(path, {LoadMode::kReadFallback, VerifyMode::kFull}),
      ImageError);

  // Missing files are I/O errors, not format damage.
  EXPECT_THROW(VenueImage::open(dir + "/absent.img"), store::StoreError);
  EXPECT_THROW(VenueImage::open(dir + "/absent.img",
                                {LoadMode::kReadFallback,
                                 VerifyMode::kFull}),
               store::StoreError);
}

TEST(VenueImage, ViewStructuresRefuseMutation) {
  const std::string dir = freshDir("immutable");
  const std::string path = dir + "/venue.img";
  const auto world = makeWorld(30, 6, 83, /*withIndex=*/false);
  writeVenueImage(path, *world);
  const VenueImage image = VenueImage::open(path);

  kernel::FlatMatrix flat = image.fingerprints()->flatMatrix();
  EXPECT_TRUE(flat.isView());
  EXPECT_THROW(flat.appendRow(std::vector<double>(6, -70.0)),
               std::logic_error);
  EXPECT_THROW(flat.reset(6), std::logic_error);

  radio::Fingerprint entry = image.fingerprints()->entryAt(0);
  EXPECT_THROW(entry[0] = -1.0, std::logic_error);
  // truncated() must hand back an owning fingerprint, not a view.
  radio::Fingerprint owned = entry.truncated(3);
  EXPECT_NO_THROW(owned[0] = -1.0);

  kernel::MotionAdjacency adjacency = *image.adjacency();
  EXPECT_TRUE(adjacency.isView());
  EXPECT_THROW(adjacency.rebuild(core::MotionDatabase(3)),
               std::logic_error);
}

TEST(VenueImage, StateStoreKeepsImageAlongsideCheckpointLineage) {
  const std::string dir = freshDir("store");
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});

  const auto world = makeWorld(50, 6, 97, /*withIndex=*/true);
  std::uint64_t expectedLastSeq = 0;
  {
    store::StateStore store(dir);
    EXPECT_FALSE(store.hasImage());

    core::OnlineMotionDatabase db(plan);
    db.setSink(&store);
    for (int k = 0; k < 20; ++k)
      db.addObservation(k % 2, 1 + k % 2, 87.0 + 0.3 * (k % 13),
                        3.6 + 0.03 * (k % 17));
    store.checkpointNow(db);

    // The image publishes between the checkpoint and the WAL tail...
    store.saveImage(*world);
    EXPECT_TRUE(store.hasImage());

    // ...and more records land after it.
    for (int k = 0; k < 7; ++k)
      db.addObservation(0, 1, 90.0 + 0.1 * k, 4.0);
    db.setSink(nullptr);
    expectedLastSeq = store.lastSeq();
    EXPECT_GT(expectedLastSeq, store.lastCheckpointSeq());
  }

  // Recovery semantics are untouched by the image file: the checkpoint
  // loads and the WAL tail still replays on top.
  core::OnlineMotionDatabase recovered(plan);
  const store::RecoveryResult result = store::recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  EXPECT_EQ(result.lastSeq, expectedLastSeq);
  EXPECT_EQ(result.replayedRecords, 7u);

  // Meanwhile the image serves the world it captured.
  store::StateStore reopened(dir);
  EXPECT_TRUE(reopened.hasImage());
  const VenueImage image = reopened.openImage();
  EXPECT_EQ(image.locationCount(), 50u);
  EXPECT_TRUE(image.hasIndex());

  // A damaged image is a typed, recoverable failure — the durable
  // lineage does not depend on it.
  const store::testing::FaultFile fault(reopened.imagePath());
  fault.flipByte(fault.size() - 1);
  EXPECT_THROW(reopened.openImage(), ImageError);
  core::OnlineMotionDatabase again(plan);
  EXPECT_EQ(store::recover(dir, again).lastSeq, expectedLastSeq);
}

TEST(TieredIndexParallelBuild, BitwiseIdenticalToSerial) {
  const auto db = makeSparseDb(1200, 16, 91);
  index::IndexConfig serialConfig;
  serialConfig.maxShardEntries = 128;
  serialConfig.buildThreads = 1;
  index::IndexConfig parallelConfig = serialConfig;
  parallelConfig.buildThreads = 4;

  const index::TieredIndex serial(db, serialConfig);
  const index::TieredIndex parallel(db, parallelConfig);
  ASSERT_EQ(serial.shardCount(), parallel.shardCount());
  EXPECT_GT(serial.shardCount(), 4u);
  for (std::size_t s = 0; s < serial.shardCount(); ++s) {
    const index::ShardView a = serial.shardView(s);
    const index::ShardView b = parallel.shardView(s);
    EXPECT_EQ(a.rowBegin, b.rowBegin);
    EXPECT_EQ(a.rowEnd, b.rowEnd);
    ASSERT_EQ(a.activeAps.size(), b.activeAps.size());
    EXPECT_EQ(std::memcmp(a.activeAps.data(), b.activeAps.data(),
                          a.activeAps.size() * sizeof(std::uint32_t)),
              0);
    EXPECT_EQ(std::memcmp(a.minBucket.data(), b.minBucket.data(),
                          a.minBucket.size()),
              0);
    EXPECT_EQ(std::memcmp(a.maxBucket.data(), b.maxBucket.data(),
                          a.maxBucket.size()),
              0);
    ASSERT_EQ(a.slab.size(), b.slab.size());
    EXPECT_EQ(std::memcmp(a.slab.data(), b.slab.data(),
                          a.slab.size() * sizeof(std::uint64_t)),
              0);
  }

  util::Rng rng(13);
  std::vector<radio::Match> a;
  std::vector<radio::Match> b;
  for (int trial = 0; trial < 25; ++trial) {
    const radio::Fingerprint query = makeQuery(16, rng);
    serial.queryInto(query, 8, a);
    parallel.queryInto(query, 8, b);
    expectMatchesBitwiseEqual(a, b);
  }
}

}  // namespace
}  // namespace moloc::image
