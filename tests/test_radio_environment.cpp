#include "radio/radio_environment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::radio {
namespace {

PropagationParams quietParams() {
  PropagationParams p;
  p.shadowingSigmaDb = 0.0;
  p.temporalSigmaDb = 0.0;
  p.bodyAttenuationDb = 0.0;
  p.driftSigmaDb = 0.0;
  return p;
}

class RadioEnvironmentTest : public ::testing::Test {
 protected:
  env::FloorPlan plan_{20.0, 10.0};
  std::vector<AccessPoint> aps_{{0, {1.0, 5.0}}, {1, {19.0, 5.0}}};
};

TEST_F(RadioEnvironmentTest, RejectsNoAps) {
  EXPECT_THROW(RadioEnvironment(plan_, {}, quietParams()),
               std::invalid_argument);
}

TEST_F(RadioEnvironmentTest, ScanHasOneValuePerAp) {
  const RadioEnvironment radio(plan_, aps_, quietParams());
  util::Rng rng(1);
  const auto fp = radio.scan({10.0, 5.0}, 0.0, rng);
  EXPECT_EQ(fp.size(), 2u);
  EXPECT_EQ(radio.apCount(), 2u);
}

TEST_F(RadioEnvironmentTest, ExpectedFingerprintIsDeterministic) {
  const RadioEnvironment radio(plan_, aps_, quietParams());
  const auto a = radio.expectedFingerprint({10.0, 5.0}, 0.0);
  const auto b = radio.expectedFingerprint({10.0, 5.0}, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(RadioEnvironmentTest, NoiselessScanEqualsExpected) {
  const RadioEnvironment radio(plan_, aps_, quietParams());
  util::Rng rng(2);
  const auto scan = radio.scan({7.0, 3.0}, 90.0, rng);
  const auto expected = radio.expectedFingerprint({7.0, 3.0}, 90.0);
  for (std::size_t i = 0; i < scan.size(); ++i)
    EXPECT_DOUBLE_EQ(scan[i], expected[i]);
}

TEST_F(RadioEnvironmentTest, ProximityOrdersRss) {
  const RadioEnvironment radio(plan_, aps_, quietParams());
  const auto nearAp0 = radio.expectedFingerprint({3.0, 5.0}, 0.0);
  EXPECT_GT(nearAp0[0], nearAp0[1]);
  const auto nearAp1 = radio.expectedFingerprint({17.0, 5.0}, 0.0);
  EXPECT_LT(nearAp1[0], nearAp1[1]);
}

TEST_F(RadioEnvironmentTest, NoisyScansDiffer) {
  auto params = quietParams();
  params.temporalSigmaDb = 4.0;
  const RadioEnvironment radio(plan_, aps_, params);
  util::Rng rng(3);
  const auto a = radio.scan({10.0, 5.0}, 0.0, rng);
  const auto b = radio.scan({10.0, 5.0}, 0.0, rng);
  EXPECT_NE(a[0], b[0]);
}

TEST_F(RadioEnvironmentTest, EpochSelectsDrift) {
  auto params = quietParams();
  params.driftSigmaDb = 4.0;
  const RadioEnvironment radio(plan_, aps_, params);
  const auto survey =
      radio.expectedFingerprint({10.0, 5.0}, 0.0, Epoch::kSurvey);
  const auto serving =
      radio.expectedFingerprint({10.0, 5.0}, 0.0, Epoch::kServing);
  EXPECT_NE(survey[0], serving[0]);
}

TEST_F(RadioEnvironmentTest, SameSeedSameScan) {
  auto params = quietParams();
  params.temporalSigmaDb = 4.0;
  const RadioEnvironment radio(plan_, aps_, params);
  util::Rng rngA(7);
  util::Rng rngB(7);
  const auto a = radio.scan({4.0, 4.0}, 45.0, rngA);
  const auto b = radio.scan({4.0, 4.0}, 45.0, rngB);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace moloc::radio
