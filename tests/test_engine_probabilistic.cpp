// MoLocEngine with the Horus-style probabilistic candidate backend:
// the engine contract must hold identically regardless of which
// matcher feeds candidate estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/moloc_engine.hpp"
#include "radio/probabilistic_database.hpp"

namespace moloc::core {
namespace {

radio::ProbabilisticFingerprintDatabase twinWorldDb() {
  auto samples = [](double a, double b) {
    std::vector<radio::Fingerprint> out;
    for (int i = 0; i < 10; ++i) {
      const double jitter = 2.0 * (i % 3 - 1);
      out.emplace_back(std::vector<double>{a + jitter, b - jitter});
    }
    return out;
  };
  radio::ProbabilisticFingerprintDatabase db;
  db.addLocation(0, samples(-50.0, -60.0));   // Twin of 1.
  db.addLocation(1, samples(-50.3, -60.3));   // Twin of 0.
  db.addLocation(2, samples(-70.0, -40.0));   // Unique.
  return db;
}

MotionDatabase twinWorldMotion() {
  MotionDatabase motion(3);
  // 0 -> 2: east; 1 -> 2: north (the disambiguating legs).
  motion.setEntryWithMirror(0, 2, {90.0, 4.0, 6.0, 0.3, 20});
  motion.setEntryWithMirror(1, 2, {0.0, 4.0, 6.0, 0.3, 20});
  return motion;
}

TEST(EngineProbabilistic, FirstFixFollowsLikelihood) {
  const auto db = twinWorldDb();
  const auto motion = twinWorldMotion();
  MoLocEngine engine(db, motion, {3, {}});
  const auto fix =
      engine.localize(radio::Fingerprint({-69.0, -41.0}), std::nullopt);
  EXPECT_EQ(fix.location, 2);
  EXPECT_EQ(fix.candidates.size(), 3u);
}

TEST(EngineProbabilistic, PosteriorIsNormalized) {
  const auto db = twinWorldDb();
  const auto motion = twinWorldMotion();
  MoLocEngine engine(db, motion, {3, {}});
  const auto fix =
      engine.localize(radio::Fingerprint({-55.0, -55.0}), std::nullopt);
  double total = 0.0;
  for (const auto& c : fix.candidates) {
    EXPECT_TRUE(std::isfinite(c.probability));
    total += c.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EngineProbabilistic, MotionStillDisambiguatesTwins) {
  const auto db = twinWorldDb();
  const auto motion = twinWorldMotion();
  MoLocEngine engine(db, motion, {3, {}});
  // Start at the unique location, then walk the reverse of 0 -> 2
  // (west 6 m): only twin 0 explains that motion.
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  const auto fix =
      engine.localize(radio::Fingerprint({-50.15, -60.15}),
                      sensors::MotionMeasurement{270.0, 6.0});
  EXPECT_EQ(fix.location, 0);

  // Same scan but walking south (reverse of 1 -> 2): twin 1 wins.
  engine.reset();
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  const auto other =
      engine.localize(radio::Fingerprint({-50.15, -60.15}),
                      sensors::MotionMeasurement{180.0, 6.0});
  EXPECT_EQ(other.location, 1);
}

TEST(EngineProbabilistic, MatchesDeterministicContractOnUnambiguous) {
  // On an unambiguous scan both backends agree on the estimate.
  const auto probDb = twinWorldDb();
  radio::FingerprintDatabase detDb;
  detDb.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  detDb.addLocation(1, radio::Fingerprint({-50.3, -60.3}));
  detDb.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  const auto motion = twinWorldMotion();

  MoLocEngine probEngine(probDb, motion, {3, {}});
  MoLocEngine detEngine(detDb, motion, {3, {}});
  const radio::Fingerprint scan({-68.0, -42.0});
  EXPECT_EQ(probEngine.localize(scan, std::nullopt).location,
            detEngine.localize(scan, std::nullopt).location);
}

}  // namespace
}  // namespace moloc::core
