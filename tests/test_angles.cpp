#include "geometry/angles.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace moloc::geometry {
namespace {

TEST(Angles, NormalizeDeg) {
  EXPECT_DOUBLE_EQ(normalizeDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeDeg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(normalizeDeg(-90.0), 270.0);
  EXPECT_DOUBLE_EQ(normalizeDeg(725.0), 5.0);
  EXPECT_DOUBLE_EQ(normalizeDeg(-725.0), 355.0);
}

TEST(Angles, SignedDiffShortestWay) {
  EXPECT_DOUBLE_EQ(signedAngularDiffDeg(10.0, 20.0), 10.0);
  EXPECT_DOUBLE_EQ(signedAngularDiffDeg(20.0, 10.0), -10.0);
  EXPECT_DOUBLE_EQ(signedAngularDiffDeg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(signedAngularDiffDeg(10.0, 350.0), -20.0);
  // The antipode maps to +180, not -180.
  EXPECT_DOUBLE_EQ(signedAngularDiffDeg(0.0, 180.0), 180.0);
}

TEST(Angles, AngularDistSymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(angularDistDeg(350.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(angularDistDeg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angularDistDeg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(angularDistDeg(90.0, 90.0), 0.0);
}

TEST(Angles, ReverseHeading) {
  EXPECT_DOUBLE_EQ(reverseHeadingDeg(0.0), 180.0);
  EXPECT_DOUBLE_EQ(reverseHeadingDeg(270.0), 90.0);
  EXPECT_DOUBLE_EQ(reverseHeadingDeg(359.0), 179.0);
}

TEST(Angles, ReverseIsInvolution) {
  for (double d : {0.0, 45.0, 123.4, 200.0, 359.9})
    EXPECT_NEAR(reverseHeadingDeg(reverseHeadingDeg(d)), d, 1e-9);
}

TEST(Angles, CircularMeanWrapsAroundNorth) {
  const std::vector<double> degs{350.0, 10.0};
  EXPECT_NEAR(circularMeanDeg(degs), 0.0, 1e-9);
}

TEST(Angles, CircularMeanSimple) {
  const std::vector<double> degs{80.0, 100.0};
  EXPECT_NEAR(circularMeanDeg(degs), 90.0, 1e-9);
}

TEST(Angles, CircularMeanEmptyIsZero) {
  EXPECT_EQ(circularMeanDeg({}), 0.0);
}

TEST(Angles, CircularStddevZeroForIdentical) {
  const std::vector<double> degs{42.0, 42.0, 42.0};
  EXPECT_NEAR(circularStddevDeg(degs), 0.0, 1e-9);
}

TEST(Angles, CircularStddevGrowsWithSpread) {
  const std::vector<double> narrow{88.0, 90.0, 92.0};
  const std::vector<double> wide{60.0, 90.0, 120.0};
  EXPECT_LT(circularStddevDeg(narrow), circularStddevDeg(wide));
}

TEST(Angles, CircularStddevHandlesWrap) {
  // Same spread, once wrapped around north, once not: same stddev.
  const std::vector<double> atNorth{355.0, 0.0, 5.0};
  const std::vector<double> atEast{85.0, 90.0, 95.0};
  EXPECT_NEAR(circularStddevDeg(atNorth), circularStddevDeg(atEast), 1e-9);
}

TEST(Angles, CircularMedianBasics) {
  EXPECT_EQ(circularMedianDeg({}), 0.0);
  const std::vector<double> one{123.0};
  EXPECT_DOUBLE_EQ(circularMedianDeg(one), 123.0);
  const std::vector<double> cluster{88.0, 90.0, 92.0};
  EXPECT_DOUBLE_EQ(circularMedianDeg(cluster), 90.0);
}

TEST(Angles, CircularMedianWrapsAroundNorth) {
  const std::vector<double> degs{354.0, 358.0, 2.0, 6.0, 10.0};
  const double median = circularMedianDeg(degs);
  EXPECT_LT(angularDistDeg(median, 2.0), 1e-9);
}

TEST(Angles, CircularMedianResistsOutliers) {
  // 70 % cluster at 90, 30 % junk at 250: the mean gets dragged, the
  // median stays with the cluster.
  std::vector<double> degs;
  for (int i = 0; i < 7; ++i) degs.push_back(90.0 + i - 3);
  for (int i = 0; i < 3; ++i) degs.push_back(250.0 + i);
  EXPECT_LT(angularDistDeg(circularMedianDeg(degs), 90.0), 4.0);
  EXPECT_GT(angularDistDeg(circularMeanDeg(degs), 90.0), 10.0);
}

TEST(Angles, CircularMedianLargeSampleSubsampling) {
  // Beyond 200 elements candidates are subsampled; the answer must
  // stay near the cluster centre.
  std::vector<double> degs;
  for (int i = 0; i < 1000; ++i)
    degs.push_back(normalizeDeg(180.0 + (i % 21) - 10));
  EXPECT_LT(angularDistDeg(circularMedianDeg(degs), 180.0), 6.0);
}

TEST(Angles, HeadingBetweenCardinals) {
  const Vec2 origin{0.0, 0.0};
  EXPECT_NEAR(headingBetweenDeg(origin, {0.0, 1.0}), 0.0, 1e-9);    // N
  EXPECT_NEAR(headingBetweenDeg(origin, {1.0, 0.0}), 90.0, 1e-9);   // E
  EXPECT_NEAR(headingBetweenDeg(origin, {0.0, -1.0}), 180.0, 1e-9); // S
  EXPECT_NEAR(headingBetweenDeg(origin, {-1.0, 0.0}), 270.0, 1e-9); // W
}

TEST(Angles, HeadingBetweenCoincidentPointsIsZero) {
  EXPECT_EQ(headingBetweenDeg({2.0, 2.0}, {2.0, 2.0}), 0.0);
}

TEST(Angles, HeadingToUnitVecCardinals) {
  const Vec2 north = headingToUnitVec(0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-12);
  EXPECT_NEAR(north.y, 1.0, 1e-12);
  const Vec2 east = headingToUnitVec(90.0);
  EXPECT_NEAR(east.x, 1.0, 1e-12);
  EXPECT_NEAR(east.y, 0.0, 1e-12);
}

TEST(Angles, DegRadRoundTrip) {
  for (double d : {0.0, 30.0, 90.0, 180.0, 300.0})
    EXPECT_NEAR(radToDeg(degToRad(d)), d, 1e-12);
}

/// Property sweep: heading -> unit vector -> heading round-trips.
class HeadingRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(HeadingRoundTripTest, RoundTrips) {
  const double deg = GetParam();
  const Vec2 unit = headingToUnitVec(deg);
  EXPECT_NEAR(headingBetweenDeg({0.0, 0.0}, unit), deg, 1e-9);
  EXPECT_NEAR(unit.norm(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HeadingRoundTripTest,
                         ::testing::Values(0.0, 15.0, 90.0, 135.5, 180.0,
                                           222.2, 270.0, 315.0, 359.0));

/// Property sweep: the reverse rule of Sec. IV.B.2 flips the angular
/// distance to any reference by exactly 180 degrees worth.
class ReverseRuleTest : public ::testing::TestWithParam<double> {};

TEST_P(ReverseRuleTest, ReversePlusForwardIsAntipodal) {
  const double d = GetParam();
  EXPECT_NEAR(angularDistDeg(d, reverseHeadingDeg(d)), 180.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReverseRuleTest,
                         ::testing::Values(0.0, 10.0, 89.9, 90.0, 180.0,
                                           269.5, 359.9));

}  // namespace
}  // namespace moloc::geometry
