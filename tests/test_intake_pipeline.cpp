// Unit tests of service::IntakePipeline — the bounded MPSC admission
// queue and single writer thread on the write side of the epoch-style
// serving split (docs/serving.md).  The contracts pinned here:
// admission order == WAL order == apply order, typed backpressure that
// never breaks the write-ahead guarantee, flush as the durability +
// visibility barrier, and the record-count/staleness publish cadence.

#include "service/intake.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "util/mutex.hpp"

namespace moloc::service {
namespace {

env::FloorPlan corridorPlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

/// Write-ahead sink recording the logged order.  Only the pipeline's
/// writer thread calls onAccepted, so no synchronization is needed as
/// long as readers look only after a flush/stop barrier.
class RecordingSink : public core::ObservationSink {
 public:
  struct Entry {
    env::LocationId start = 0;
    env::LocationId end = 0;
    double directionDeg = 0.0;
    double offsetMeters = 0.0;
  };
  void onAccepted(env::LocationId start, env::LocationId end,
                  double directionDeg, double offsetMeters) override {
    logged.push_back({start, end, directionDeg, offsetMeters});
  }
  std::vector<Entry> logged;
};

/// A sink whose log always fails — exercises the write-ahead abort.
class FailingSink : public core::ObservationSink {
 public:
  void onAccepted(env::LocationId, env::LocationId, double,
                  double) override {
    throw std::runtime_error("log unavailable");
  }
};

/// A one-way gate the writer thread can be parked on (via the apply
/// hook), so tests can fill the queue deterministically.
class Gate {
 public:
  void arrive() {
    const util::MutexLock lock(mu_);
    ++arrivals_;
    cv_.notifyAll();
    while (!open_) cv_.wait(mu_);
  }
  void waitForArrival() {
    const util::MutexLock lock(mu_);
    while (arrivals_ == 0) cv_.wait(mu_);
  }
  void open() {
    const util::MutexLock lock(mu_);
    open_ = true;
    cv_.notifyAll();
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  int arrivals_ MOLOC_GUARDED_BY(mu_) = 0;
  bool open_ MOLOC_GUARDED_BY(mu_) = false;
};

IntakePolicy slowPublishPolicy() {
  IntakePolicy policy;
  policy.publishEveryRecords = 1000000;
  policy.maxStaleness = std::chrono::milliseconds(3600 * 1000);
  return policy;
}

TEST(IntakePipeline, RejectsDegeneratePolicies) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  IntakePolicy zeroCapacity;
  zeroCapacity.queueCapacity = 0;
  EXPECT_THROW(IntakePipeline(db, zeroCapacity, nullptr, nullptr),
               std::invalid_argument);
  IntakePolicy zeroRecords;
  zeroRecords.publishEveryRecords = 0;
  EXPECT_THROW(IntakePipeline(db, zeroRecords, nullptr, nullptr),
               std::invalid_argument);
  IntakePolicy zeroStaleness;
  zeroStaleness.maxStaleness = std::chrono::milliseconds(0);
  EXPECT_THROW(IntakePipeline(db, zeroStaleness, nullptr, nullptr),
               std::invalid_argument);
}

TEST(IntakePipeline, AppliesInAdmissionOrderThroughTheWal) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  RecordingSink sink;
  db.setSink(&sink);
  IntakePipeline pipeline(db, slowPublishPolicy(), nullptr, nullptr);

  EXPECT_TRUE(pipeline.submit(0, 1, 90.0, 4.0));
  EXPECT_TRUE(pipeline.submit(1, 2, 91.0, 4.1));
  EXPECT_FALSE(pipeline.submit(0, 1, 180.0, 4.0));  // Coarse reject:
                                                    // never enqueued.
  EXPECT_TRUE(pipeline.submit(0, 1, 89.0, 3.9));
  pipeline.flush();

  // WAL order == admission order, rejected observation absent.
  ASSERT_EQ(sink.logged.size(), 3u);
  EXPECT_EQ(sink.logged[0].end, 1);
  EXPECT_EQ(sink.logged[0].directionDeg, 90.0);
  EXPECT_EQ(sink.logged[1].start, 1);
  EXPECT_EQ(sink.logged[1].end, 2);
  EXPECT_EQ(sink.logged[2].directionDeg, 89.0);
  EXPECT_EQ(db.counters().observations, 4u);  // Counted at admission.
  EXPECT_EQ(db.counters().accepted, 3u);      // Counted at apply.

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(stats.queueDepth, 0u);
  EXPECT_EQ(stats.backpressure, 0u);
}

TEST(IntakePipeline, BackpressureIsTypedAndPreservesTheWalGuarantee) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  RecordingSink sink;
  db.setSink(&sink);

  Gate gate;
  IntakePolicy policy = slowPublishPolicy();
  policy.queueCapacity = 2;
  IntakePipeline pipeline(db, policy, nullptr,
                          /*afterApply=*/[&gate] { gate.arrive(); });

  // Park the writer inside the first apply's hook, then fill the queue.
  EXPECT_TRUE(pipeline.submit(0, 1, 90.0, 4.0));
  gate.waitForArrival();
  EXPECT_TRUE(pipeline.submit(0, 1, 91.0, 4.1));
  EXPECT_TRUE(pipeline.submit(1, 2, 92.0, 4.2));
  EXPECT_THROW(pipeline.submit(1, 2, 93.0, 4.3), BackpressureError);
  EXPECT_EQ(pipeline.stats().backpressure, 1u);
  EXPECT_EQ(pipeline.stats().queueDepth, 2u);

  gate.open();
  pipeline.flush();

  // The rejected submit was neither logged nor applied; everything
  // admitted before and after it went through in admission order.
  ASSERT_EQ(sink.logged.size(), 3u);
  EXPECT_EQ(sink.logged[0].directionDeg, 90.0);
  EXPECT_EQ(sink.logged[1].directionDeg, 91.0);
  EXPECT_EQ(sink.logged[2].directionDeg, 92.0);
  EXPECT_EQ(db.counters().accepted, 3u);
  EXPECT_EQ(pipeline.stats().applied, 3u);
}

TEST(IntakePipeline, PublishesOnTheRecordCadence) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> lastRecords{0};
  IntakePolicy policy = slowPublishPolicy();
  policy.publishEveryRecords = 2;
  IntakePipeline pipeline(
      db, policy,
      /*publish=*/
      [&](std::uint64_t records) {
        publishes.fetch_add(1);
        lastRecords.store(records);
      },
      nullptr);

  for (int k = 0; k < 4; ++k)
    EXPECT_TRUE(pipeline.submit(k % 2, 1 + k % 2, 90.0 + k, 4.0));
  pipeline.flush();

  // 4 applies at a cadence of 2: publishes after the 2nd and the 4th,
  // and flush needs no extra (the world is clean at the barrier).
  EXPECT_EQ(publishes.load(), 2u);
  EXPECT_EQ(lastRecords.load(), 4u);
  EXPECT_EQ(pipeline.stats().publishes, 2u);
}

TEST(IntakePipeline, PublishesWhenTheStalenessBoundExpires) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  std::atomic<std::uint64_t> publishes{0};
  IntakePolicy policy;
  policy.publishEveryRecords = 1000000;  // Record trigger never fires.
  policy.maxStaleness = std::chrono::milliseconds(20);
  IntakePipeline pipeline(
      db, policy,
      /*publish=*/[&](std::uint64_t) { publishes.fetch_add(1); },
      nullptr);

  EXPECT_TRUE(pipeline.submit(0, 1, 90.0, 4.0));
  // No flush: the staleness bound alone must surface the observation.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (publishes.load() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(publishes.load(), 1u);
}

TEST(IntakePipeline, WriteAheadFailureIsCountedNotApplied) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  FailingSink sink;
  db.setSink(&sink);
  IntakePipeline pipeline(db, slowPublishPolicy(), nullptr, nullptr);

  EXPECT_TRUE(pipeline.submit(0, 1, 90.0, 4.0));  // Admitted...
  pipeline.flush();
  // ...but the log write failed, so the write-ahead discipline aborted
  // the update: nothing applied, the loss surfaced in the stats.
  EXPECT_EQ(pipeline.stats().applyFailures, 1u);
  EXPECT_EQ(pipeline.stats().applied, 0u);
  EXPECT_EQ(db.counters().accepted, 0u);
  EXPECT_EQ(db.trackedPairs(), 0u);
}

TEST(IntakePipeline, StopDrainsAdmittedWorkAndRejectsNewSubmits) {
  const auto plan = corridorPlan();
  core::OnlineMotionDatabase db(plan);
  RecordingSink sink;
  db.setSink(&sink);
  std::atomic<std::uint64_t> publishes{0};
  auto pipeline = std::make_unique<IntakePipeline>(
      db, slowPublishPolicy(),
      /*publish=*/[&](std::uint64_t) { publishes.fetch_add(1); },
      nullptr);

  EXPECT_TRUE(pipeline->submit(0, 1, 90.0, 4.0));
  EXPECT_TRUE(pipeline->submit(1, 2, 91.0, 4.1));
  pipeline->stop();

  // Everything admitted before the stop was logged, applied, and
  // covered by the final publish; later submits get the typed error.
  EXPECT_EQ(sink.logged.size(), 2u);
  EXPECT_EQ(db.counters().accepted, 2u);
  EXPECT_GE(publishes.load(), 1u);
  EXPECT_THROW(pipeline->submit(0, 1, 90.0, 4.0), ShutdownError);
  pipeline->stop();  // Idempotent.
}

}  // namespace
}  // namespace moloc::service
