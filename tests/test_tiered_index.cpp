#include "index/tiered_index.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/world_snapshot.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/rng.hpp"

namespace moloc::index {
namespace {

constexpr double kFloorDbm = -100.0;

/// A radio map with sparse AP visibility: each location hears a
/// seeded subset of the APs, everything else sits at the detection
/// floor — the shape worldgen produces and the index is built for.
std::shared_ptr<radio::FingerprintDatabase> makeSparseDb(
    std::size_t locations, std::size_t apCount, std::uint64_t seed) {
  auto db = std::make_shared<radio::FingerprintDatabase>();
  util::Rng rng(seed);
  for (std::size_t loc = 0; loc < locations; ++loc) {
    std::vector<double> rss(apCount, kFloorDbm);
    // Hear a contiguous window of APs (mimics floor locality) plus a
    // couple of random extras.
    const std::size_t windowStart =
        (loc * apCount / std::max<std::size_t>(locations, 1)) %
        apCount;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, apCount); ++i)
      rss[(windowStart + i) % apCount] = rng.uniform(-90.0, -40.0);
    rss[static_cast<std::size_t>(
        rng.uniformIndex(static_cast<std::uint64_t>(apCount)))] =
        rng.uniform(-95.0, -45.0);
    db->addLocation(static_cast<env::LocationId>(loc),
                    radio::Fingerprint(std::move(rss)));
  }
  return db;
}

radio::Fingerprint makeQuery(std::size_t apCount, util::Rng& rng) {
  std::vector<double> rss(apCount, kFloorDbm);
  const std::size_t start = static_cast<std::size_t>(
      rng.uniformIndex(static_cast<std::uint64_t>(apCount)));
  for (std::size_t i = 0; i < std::min<std::size_t>(4, apCount); ++i)
    rss[(start + i) % apCount] = rng.uniform(-92.0, -42.0);
  return radio::Fingerprint(std::move(rss));
}

void expectBitwiseEqual(const std::vector<radio::Match>& exact,
                        const std::vector<radio::Match>& tiered) {
  ASSERT_EQ(exact.size(), tiered.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].location, tiered[i].location) << "rank " << i;
    EXPECT_EQ(std::memcmp(&exact[i].dissimilarity,
                          &tiered[i].dissimilarity, sizeof(double)),
              0)
        << "rank " << i;
    EXPECT_EQ(std::memcmp(&exact[i].probability, &tiered[i].probability,
                          sizeof(double)),
              0)
        << "rank " << i;
  }
}

TEST(TieredIndexTest, BitwiseIdenticalToExactQuery) {
  const auto db = makeSparseDb(1500, 24, 99);
  IndexConfig config;
  config.maxShardEntries = 256;
  config.exhaustiveCheck = true;  // Throws on any recall miss.
  const TieredIndex index(db, config);
  EXPECT_GT(index.shardCount(), 1u);

  util::Rng rng(5);
  std::vector<radio::Match> exact;
  std::vector<radio::Match> tiered;
  for (int trial = 0; trial < 40; ++trial) {
    const radio::Fingerprint query = makeQuery(24, rng);
    for (const std::size_t k : {1u, 3u, 12u, 64u}) {
      db->queryInto(query, k, exact);
      QueryStats stats;
      index.queryInto(query, k, tiered, &stats);
      expectBitwiseEqual(exact, tiered);
      EXPECT_EQ(stats.missedTopK, 0u);
      EXPECT_GE(stats.shortlistSize, exact.size());
      EXPECT_LE(stats.scannedEntries, index.entryCount());
      EXPECT_EQ(stats.totalShards, index.shardCount());
    }
  }
}

TEST(TieredIndexTest, PrefilterPrunesShardsOnDisjointVisibility) {
  // Two "floors" hearing disjoint AP halves: a query heard only on
  // floor A must not need floor B's shard.
  auto db = std::make_shared<radio::FingerprintDatabase>();
  util::Rng rng(3);
  const std::size_t perFloor = 600;
  for (std::size_t loc = 0; loc < 2 * perFloor; ++loc) {
    std::vector<double> rss(8, kFloorDbm);
    const std::size_t base = loc < perFloor ? 0 : 4;
    for (std::size_t i = 0; i < 4; ++i)
      rss[base + i] = rng.uniform(-85.0, -45.0);
    db->addLocation(static_cast<env::LocationId>(loc),
                    radio::Fingerprint(std::move(rss)));
  }
  IndexConfig config;
  config.exhaustiveCheck = true;
  // A tight shortlist keeps the admission threshold close to the true
  // nearest entries so the disjoint floor's lower bound prunes it.
  config.minShortlist = 8;
  const std::vector<std::size_t> shardStarts{0, perFloor};
  const TieredIndex index(db, config, shardStarts);
  ASSERT_EQ(index.shardCount(), 2u);
  EXPECT_EQ(index.shardInfo(0).activeApCount, 4u);
  EXPECT_EQ(index.shardInfo(1).activeApCount, 4u);

  std::vector<double> rss(8, kFloorDbm);
  rss[0] = -60.0;
  rss[1] = -70.0;
  const radio::Fingerprint query{std::move(rss)};
  std::vector<radio::Match> tiered;
  QueryStats stats;
  index.queryInto(query, 8, tiered, &stats);
  EXPECT_EQ(stats.scannedShards, 1u);
  EXPECT_LE(stats.scannedEntries, perFloor);
  for (const auto& match : tiered) EXPECT_LT(match.location, perFloor);

  std::vector<radio::Match> exact;
  db->queryInto(query, 8, exact);
  expectBitwiseEqual(exact, tiered);
}

// Satellite: an unheard AP must behave identically through the exact
// kernel and the prefilter's presence plane — sweep a query pair that
// differs only in hearing vs not hearing one AP.
TEST(TieredIndexTest, UnheardApMatchesExactKernelSemantics) {
  auto db = std::make_shared<radio::FingerprintDatabase>();
  // Locations 0..9 hear AP 2 at increasing strength; 10..19 do not
  // hear it at all.  All hear APs 0-1 identically.
  for (std::size_t loc = 0; loc < 20; ++loc) {
    std::vector<double> rss{-50.0, -60.0, kFloorDbm};
    if (loc < 10) rss[2] = -90.0 + static_cast<double>(loc) * 4.0;
    db->addLocation(static_cast<env::LocationId>(loc),
                    radio::Fingerprint(std::move(rss)));
  }
  IndexConfig config;
  config.minShortlist = 4;
  config.exhaustiveCheck = true;
  const TieredIndex index(db, config);

  std::vector<radio::Match> exact;
  std::vector<radio::Match> tiered;
  for (double rss2 = kFloorDbm; rss2 <= -50.0; rss2 += 5.0) {
    const radio::Fingerprint query{{-50.0, -60.0, rss2}};
    for (const std::size_t k : {1u, 5u, 20u}) {
      db->queryInto(query, k, exact);
      index.queryInto(query, k, tiered);
      expectBitwiseEqual(exact, tiered);
    }
  }
}

// Satellite regression: pins Eq. 1/Eq. 4 for partially-overlapping AP
// sets — an AP one side does not hear contributes its full floor gap
// to the dissimilarity, through both backends.
TEST(TieredIndexTest, PinsDissimilarityForPartialOverlap) {
  auto db = std::make_shared<radio::FingerprintDatabase>();
  db->addLocation(0, radio::Fingerprint{{-60.0, kFloorDbm}});
  db->addLocation(1, radio::Fingerprint{{kFloorDbm, -60.0}});
  IndexConfig config;
  config.exhaustiveCheck = true;
  const TieredIndex index(db, config);

  // Query hears only AP 0, exactly like location 0.
  const radio::Fingerprint query{{-60.0, kFloorDbm}};
  const auto matches = index.query(query, 2);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].location, 0u);
  EXPECT_EQ(matches[0].dissimilarity, 0.0);
  // phi = sqrt(40^2 + 40^2) against the non-overlapping twin.
  const double expected = std::sqrt(2.0) * 40.0;
  EXPECT_EQ(matches[1].location, 1u);
  EXPECT_EQ(matches[1].dissimilarity, expected);
  // Eq. 4 with the exported floor: exact match is floored to 0.5.
  const double invSum =
      1.0 / radio::kMinDissimilarity + 1.0 / expected;
  EXPECT_EQ(matches[0].probability,
            (1.0 / radio::kMinDissimilarity) / invSum);
  EXPECT_EQ(matches[1].probability, (1.0 / expected) / invSum);

  std::vector<radio::Match> exact;
  db->queryInto(query, 2, exact);
  expectBitwiseEqual(exact, matches);
}

TEST(TieredIndexTest, MirrorsQueryErrorContract) {
  const auto db = makeSparseDb(64, 6, 1);
  const TieredIndex index(db);
  std::vector<radio::Match> out;
  const radio::Fingerprint query{{-50, -50, -50, -50, -50, -50}};

  EXPECT_THROW(index.queryInto(query, 0, out), std::invalid_argument);
  EXPECT_THROW(index.queryInto(
                   radio::Fingerprint{
                       {-50, std::numeric_limits<double>::quiet_NaN(),
                        -50, -50, -50, -50}},
                   3, out),
               std::invalid_argument);
  EXPECT_THROW(index.queryInto(radio::Fingerprint{{-50.0}}, 3, out),
               std::invalid_argument);

  const auto empty = std::make_shared<radio::FingerprintDatabase>();
  const TieredIndex emptyIndex(empty);
  EXPECT_EQ(emptyIndex.entryCount(), 0u);
  EXPECT_THROW(emptyIndex.queryInto(query, 3, out), std::logic_error);

  EXPECT_THROW(TieredIndex(nullptr), std::invalid_argument);

  IndexConfig bad;
  bad.maxShardEntries = 0;
  EXPECT_THROW(TieredIndex(db, bad), std::invalid_argument);
  bad = IndexConfig{};
  bad.quantizer.bucketCount = 1;
  EXPECT_THROW(TieredIndex(db, bad), std::invalid_argument);
}

TEST(TieredIndexTest, ValidatesShardStarts) {
  const auto db = makeSparseDb(100, 6, 2);
  const auto make = [&](std::vector<std::size_t> starts) {
    return TieredIndex(db, IndexConfig{},
                       std::span<const std::size_t>(starts));
  };
  EXPECT_NO_THROW(make({0, 50}));
  EXPECT_THROW(make({1, 50}), std::invalid_argument);
  EXPECT_THROW(make({0, 50, 50}), std::invalid_argument);
  EXPECT_THROW(make({0, 100}), std::invalid_argument);
}

TEST(TieredIndexTest, SplitsOversizedShards) {
  const auto db = makeSparseDb(1000, 6, 4);
  IndexConfig config;
  config.maxShardEntries = 128;
  const TieredIndex index(db, config);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < index.shardCount(); ++s) {
    const ShardInfo info = index.shardInfo(s);
    EXPECT_EQ(info.rowBegin, covered);
    EXPECT_LE(info.rowEnd - info.rowBegin, config.maxShardEntries);
    covered = info.rowEnd;
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_THROW(index.shardInfo(index.shardCount()), std::out_of_range);
}

TEST(TieredIndexTest, BatchCapturesPerQueryErrors) {
  const auto db = makeSparseDb(200, 6, 8);
  IndexConfig config;
  config.exhaustiveCheck = true;
  const TieredIndex index(db, config);

  util::Rng rng(17);
  const radio::Fingerprint good = makeQuery(6, rng);
  const radio::Fingerprint bad{
      {std::numeric_limits<double>::infinity(), -50, -50, -50, -50,
       -50}};
  const std::vector<const radio::Fingerprint*> queries{&good, &bad,
                                                       &good};
  std::vector<std::vector<radio::Match>> out;
  std::vector<std::exception_ptr> errors;
  index.queryBatchInto(queries, 5, out, &errors);
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_FALSE(errors[0]);
  EXPECT_TRUE(errors[1]);
  EXPECT_TRUE(out[1].empty());
  EXPECT_FALSE(errors[2]);

  std::vector<radio::Match> exact;
  db->queryInto(good, 5, exact);
  expectBitwiseEqual(exact, out[0]);
  expectBitwiseEqual(exact, out[2]);

  // Null errors: the first failure throws.
  EXPECT_THROW(index.queryBatchInto(queries, 5, out),
               std::invalid_argument);
  // Database-wide preconditions always throw.
  EXPECT_THROW(index.queryBatchInto(queries, 0, out, &errors),
               std::invalid_argument);
}

TEST(TieredIndexTest, WorldSnapshotOwnsIndexImmutably) {
  const auto db = makeSparseDb(300, 8, 21);
  auto index = std::make_shared<const TieredIndex>(db);
  const TieredIndex* raw = index.get();
  auto snapshot = std::make_shared<const core::WorldSnapshot>(
      db, core::MotionDatabase(300), 1, 0, index);
  index.reset();
  ASSERT_EQ(snapshot->tieredIndex().get(), raw);

  // The snapshot keeps the index (and its database) alive and
  // queryable.
  util::Rng rng(2);
  const radio::Fingerprint query = makeQuery(8, rng);
  std::vector<radio::Match> exact;
  db->queryInto(query, 4, exact);
  const auto tiered = snapshot->tieredIndex()->query(query, 4);
  expectBitwiseEqual(exact, tiered);
}

// Named to match the sanitizer CI filters (TieredIndex.*): concurrent
// readers over one immutable index must be race-free (per-thread scan
// workspaces) and bitwise-deterministic.
TEST(TieredIndexTest, ConcurrentQueriesAreRaceFreeAndDeterministic) {
  const auto db = makeSparseDb(800, 12, 31);
  IndexConfig config;
  config.maxShardEntries = 200;
  const TieredIndex index(db, config);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::vector<std::vector<radio::Match>> expected(kQueriesPerThread);
  {
    util::Rng rng(77);
    for (int q = 0; q < kQueriesPerThread; ++q)
      db->queryInto(makeQuery(12, rng), 8, expected[q]);
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Same stream as the expected pass: every thread replays the
      // identical query sequence concurrently.
      util::Rng rng(77);
      std::vector<radio::Match> out;
      for (int q = 0; q < kQueriesPerThread; ++q) {
        index.queryInto(makeQuery(12, rng), 8, out);
        if (out.size() != expected[q].size()) {
          ++mismatches[t];
          continue;
        }
        for (std::size_t i = 0; i < out.size(); ++i)
          if (out[i].location != expected[q][i].location ||
              std::memcmp(&out[i].dissimilarity,
                          &expected[q][i].dissimilarity,
                          sizeof(double)) != 0)
            ++mismatches[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

}  // namespace
}  // namespace moloc::index
