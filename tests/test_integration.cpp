// End-to-end integration tests asserting the paper's qualitative
// results hold in the reproduced system (reduced scale for test-suite
// speed; the bench binaries run the full protocol).

#include <gtest/gtest.h>

#include "baseline/dead_reckoning.hpp"
#include "baseline/hmm_localizer.hpp"
#include "baseline/wifi_fingerprinting.hpp"
#include "eval/convergence.hpp"
#include "eval/experiment_world.hpp"

namespace moloc {
namespace {

eval::WorldConfig testConfig(int apCount) {
  // The paper-scale training volume (150 walks x 20 legs); construction
  // is fast enough to keep in the unit-test suite.
  eval::WorldConfig config;
  config.apCount = apCount;
  return config;
}

struct PairedStats {
  eval::ErrorStats moloc;
  eval::ErrorStats wifi;
  std::vector<std::vector<eval::LocalizationRecord>> molocWalks;
  std::vector<std::vector<eval::LocalizationRecord>> wifiWalks;
};

PairedStats runPaired(eval::ExperimentWorld& world, int traces,
                      int legs) {
  PairedStats stats;
  for (const auto& outcome : eval::runComparison(world, traces, legs)) {
    stats.moloc.addAll(outcome.moloc);
    stats.wifi.addAll(outcome.wifi);
    stats.molocWalks.push_back(outcome.moloc);
    stats.wifiWalks.push_back(outcome.wifi);
  }
  return stats;
}

TEST(Integration, MoLocBeatsWifiAccuracySixAps) {
  eval::ExperimentWorld world(testConfig(6));
  const auto stats = runPaired(world, 30, 10);
  // The paper's headline: MoLoc roughly doubles fingerprinting
  // accuracy.  At reduced scale we assert a generous margin.
  EXPECT_GT(stats.moloc.accuracy(), stats.wifi.accuracy() * 1.4);
  EXPECT_GT(stats.moloc.accuracy(), 0.75);
  EXPECT_LT(stats.wifi.accuracy(), 0.65);
}

TEST(Integration, MoLocMeanErrorUnderOneMeterSixAps) {
  eval::ExperimentWorld world(testConfig(6));
  const auto stats = runPaired(world, 30, 10);
  EXPECT_LT(stats.moloc.meanError(), 1.0);
  EXPECT_GT(stats.wifi.meanError(), 2.0);
}

TEST(Integration, AccuracyImprovesWithApCount) {
  double previousMoloc = 0.0;
  double previousWifi = 0.0;
  for (int aps : {4, 6}) {
    eval::ExperimentWorld world(testConfig(aps));
    const auto stats = runPaired(world, 30, 10);
    EXPECT_GT(stats.moloc.accuracy(), previousMoloc);
    EXPECT_GT(stats.wifi.accuracy(), previousWifi);
    previousMoloc = stats.moloc.accuracy();
    previousWifi = stats.wifi.accuracy();
  }
}

TEST(Integration, LargeErrorsReduced) {
  // Fig. 8's story: at the twin-prone fixes where WiFi errs badly
  // (> 6 m), MoLoc errs far less on average.
  eval::ExperimentWorld world(testConfig(6));
  const auto outcomes = eval::runComparison(world, 30, 10);
  eval::ErrorStats molocAtTwinFixes;
  eval::ErrorStats wifiAtTwinFixes;
  for (const auto& outcome : outcomes) {
    for (std::size_t i = 0; i < outcome.wifi.size(); ++i) {
      if (outcome.wifi[i].errorMeters > 6.0) {
        wifiAtTwinFixes.add(outcome.wifi[i]);
        molocAtTwinFixes.add(outcome.moloc[i]);
      }
    }
  }
  ASSERT_GT(wifiAtTwinFixes.count(), 10u);  // Twins do occur.
  EXPECT_LT(molocAtTwinFixes.meanError(),
            wifiAtTwinFixes.meanError() * 0.5);
}

TEST(Integration, PostConvergenceAccuracyHigh) {
  // Table I's story: after the first accurate fix MoLoc stays right.
  eval::ExperimentWorld world(testConfig(6));
  const auto stats = runPaired(world, 40, 10);
  const auto convMoloc = eval::analyzeConvergence(stats.molocWalks);
  const auto convWifi = eval::analyzeConvergence(stats.wifiWalks);
  EXPECT_GT(convMoloc.subsequentAccuracy, 0.85);
  EXPECT_LT(convWifi.subsequentAccuracy, 0.70);
  EXPECT_LT(convMoloc.subsequentMeanError,
            convWifi.subsequentMeanError * 0.5);
}

TEST(Integration, HmmBeatsWifiButCarriesFullBelief) {
  // The related-work comparator: accelerometer-assisted HMM also
  // improves on memoryless WiFi (it uses offsets), while MoLoc adds
  // direction on top.
  eval::ExperimentWorld world(testConfig(6));
  baseline::HmmLocalizer hmm(world.fingerprintDb(), world.hall().graph);
  const baseline::WifiFingerprinting wifi(world.fingerprintDb());

  eval::ErrorStats hmmStats;
  eval::ErrorStats wifiStats;
  for (int t = 0; t < 25; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace = world.makeTrace(user, 10, world.evalRng());
    hmm.reset();
    hmm.update(trace.initialScan, std::nullopt);
    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      const auto hmmFix = hmm.update(
          interval.scanAtArrival,
          motion ? std::optional<double>(motion->offsetMeters)
                 : std::nullopt);
      const auto wifiFix = wifi.localize(interval.scanAtArrival);
      hmmStats.add({hmmFix, interval.toTruth,
                    world.locationDistance(hmmFix, interval.toTruth)});
      wifiStats.add({wifiFix, interval.toTruth,
                     world.locationDistance(wifiFix, interval.toTruth)});
    }
  }
  EXPECT_GT(hmmStats.accuracy(), wifiStats.accuracy());
}

TEST(Integration, DeadReckoningDriftsWithoutFingerprints) {
  // Feed dead reckoning the ground-truth legs distorted by a constant
  // 8-degree heading bias (a realistic uncorrected compass error): the
  // continuous track must drift away from the truth, with the final
  // error far exceeding the early error — the failure mode fingerprint
  // re-anchoring prevents.
  // A straight end-to-end route along the north aisle: a rotation bias
  // cannot cancel out as it can on a loop.
  eval::ExperimentWorld world(testConfig(6));
  const std::vector<env::LocationId> route{0, 1, 2, 3, 4, 5, 6};
  const auto& graph = world.hall().graph;

  baseline::DeadReckoning dr(world.hall().plan, world.fingerprintDb());
  dr.initialize(world.fingerprintDb().entry(route.front()));

  double earlyError = -1.0;
  double finalError = -1.0;
  for (std::size_t leg = 0; leg + 1 < route.size(); ++leg) {
    const auto rlm = graph.groundTruthRlm(route[leg], route[leg + 1]);
    ASSERT_TRUE(rlm.has_value());
    dr.update({rlm->directionDeg + 8.0, rlm->offsetMeters});
    const double error = geometry::distance(
        dr.position(), world.hall().plan.location(route[leg + 1]).pos);
    if (leg == 1) earlyError = error;
    finalError = error;
  }
  ASSERT_GE(earlyError, 0.0);
  EXPECT_GT(finalError, earlyError);
  EXPECT_GT(finalError, 3.0);
}

TEST(Integration, DriftedEnvironmentDegradesWifiMore) {
  // The staleness knob: serving-time drift ages the radio map.  Both
  // methods lose accuracy; WiFi has no second signal to fall back on,
  // so it must not end up ahead.
  auto freshConfig = testConfig(6);
  auto staleConfig = testConfig(6);
  staleConfig.propagation.driftSigmaDb = 3.0;

  eval::ExperimentWorld fresh(freshConfig);
  eval::ExperimentWorld stale(staleConfig);
  const auto freshStats = runPaired(fresh, 25, 10);
  const auto staleStats = runPaired(stale, 25, 10);

  EXPECT_LT(staleStats.wifi.accuracy(), freshStats.wifi.accuracy());
  EXPECT_GT(staleStats.moloc.accuracy(), staleStats.wifi.accuracy());
}

}  // namespace
}  // namespace moloc
