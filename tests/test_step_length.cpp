#include "sensors/step_length.hpp"

#include <gtest/gtest.h>

namespace moloc::sensors {
namespace {

TEST(StepLength, ScalesWithHeight) {
  EXPECT_LT(estimateStepLength(1.55, 70.0), estimateStepLength(1.90, 70.0));
}

TEST(StepLength, ReferenceRatio) {
  // At the 70 kg reference the estimate is exactly 0.41 x height.
  EXPECT_NEAR(estimateStepLength(1.70, 70.0), 0.41 * 1.70, 1e-12);
}

TEST(StepLength, HeavierGaitSlightlyShorter) {
  EXPECT_LT(estimateStepLength(1.75, 95.0), estimateStepLength(1.75, 70.0));
  EXPECT_GT(estimateStepLength(1.75, 50.0), estimateStepLength(1.75, 70.0));
}

TEST(StepLength, PlausibleHumanRange) {
  for (double h : {1.5, 1.6, 1.7, 1.8, 1.9, 2.0}) {
    for (double w : {50.0, 70.0, 90.0}) {
      const double step = estimateStepLength(h, w);
      EXPECT_GT(step, 0.5);
      EXPECT_LT(step, 0.95);
    }
  }
}

TEST(StepLength, ClampsAbsurdInputs) {
  // Crowdsourced profile data can be garbage; the estimate must stay
  // within the clamped envelope rather than extrapolate.
  EXPECT_EQ(estimateStepLength(0.3, 70.0),
            estimateStepLength(kMinHeightMeters, 70.0));
  EXPECT_EQ(estimateStepLength(4.0, 70.0),
            estimateStepLength(kMaxHeightMeters, 70.0));
  EXPECT_EQ(estimateStepLength(1.7, 5.0),
            estimateStepLength(1.7, kMinWeightKg));
  EXPECT_EQ(estimateStepLength(1.7, 900.0),
            estimateStepLength(1.7, kMaxWeightKg));
}

TEST(StepLength, WeightCorrectionBounded) {
  // The weight factor never moves the estimate more than 10 %.
  const double base = 0.41 * 1.75;
  EXPECT_GE(estimateStepLength(1.75, kMaxWeightKg), base * 0.9 - 1e-12);
  EXPECT_LE(estimateStepLength(1.75, kMinWeightKg), base * 1.1 + 1e-12);
}

}  // namespace
}  // namespace moloc::sensors
