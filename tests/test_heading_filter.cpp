#include "sensors/heading_filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geometry/angles.hpp"
#include "sensors/compass_model.hpp"
#include "sensors/gyroscope_model.hpp"
#include "util/rng.hpp"

namespace moloc::sensors {
namespace {

TEST(KalmanHeadingFilter, FirstUpdateInitializesOutright) {
  KalmanHeadingFilter filter;
  EXPECT_TRUE(filter.update(123.0));
  EXPECT_NEAR(filter.headingDeg(), 123.0, 1e-9);
}

TEST(KalmanHeadingFilter, ConvergesToConstantHeading) {
  KalmanHeadingFilter filter;
  for (int i = 0; i < 50; ++i) {
    filter.predict(0.0, 0.1);
    filter.update(77.0);
  }
  EXPECT_NEAR(filter.headingDeg(), 77.0, 0.5);
  EXPECT_LT(filter.sigmaDeg(), 3.0);
}

TEST(KalmanHeadingFilter, PredictIntegratesRate) {
  KalmanHeadingFilter filter;
  filter.update(0.0);
  filter.predict(90.0, 1.0);  // 90 deg/s for 1 s.
  EXPECT_NEAR(filter.headingDeg(), 90.0, 1e-9);
}

TEST(KalmanHeadingFilter, PredictWrapsAroundNorth) {
  KalmanHeadingFilter filter;
  filter.update(350.0);
  filter.predict(30.0, 1.0);
  EXPECT_NEAR(filter.headingDeg(), 20.0, 1e-9);
}

TEST(KalmanHeadingFilter, UpdateWrapsAroundNorth) {
  KalmanHeadingFilter filter;
  filter.update(359.0);
  for (int i = 0; i < 50; ++i) {
    filter.predict(0.0, 0.1);
    filter.update(1.0);  // 2 degrees across the wrap.
  }
  EXPECT_LT(geometry::angularDistDeg(filter.headingDeg(), 1.0), 1.0);
}

TEST(KalmanHeadingFilter, GateRejectsOutliers) {
  KalmanHeadingFilter filter;
  // Converge tightly on 90.
  for (int i = 0; i < 100; ++i) {
    filter.predict(0.0, 0.02);
    filter.update(90.0);
  }
  // A 60-degree spike must be rejected, not absorbed.
  EXPECT_FALSE(filter.update(150.0));
  EXPECT_EQ(filter.rejectedUpdates(), 1u);
  EXPECT_NEAR(filter.headingDeg(), 90.0, 1.0);
}

TEST(KalmanHeadingFilter, GateCanBeDisabled) {
  KalmanHeadingParams params;
  params.gateSigma = 0.0;
  KalmanHeadingFilter filter(params);
  for (int i = 0; i < 100; ++i) {
    filter.predict(0.0, 0.02);
    filter.update(90.0);
  }
  EXPECT_TRUE(filter.update(150.0));  // Absorbed.
  EXPECT_GT(filter.headingDeg(), 90.0);
}

TEST(KalmanHeadingFilter, VarianceGrowsOnPredictShrinksOnUpdate) {
  KalmanHeadingFilter filter;
  filter.update(10.0);
  const double afterUpdate = filter.sigmaDeg();
  filter.predict(0.0, 5.0);
  EXPECT_GT(filter.sigmaDeg(), afterUpdate);
  filter.update(10.0);
  EXPECT_LT(filter.sigmaDeg(), afterUpdate + 1e-9);
}

TEST(KalmanHeadingFilter, ResetClearsState) {
  KalmanHeadingFilter filter;
  for (int i = 0; i < 100; ++i) {
    filter.predict(0.0, 0.02);
    filter.update(90.0);
  }
  filter.update(200.0);  // Likely rejected.
  filter.reset(45.0);
  EXPECT_NEAR(filter.headingDeg(), 45.0, 1e-9);
  EXPECT_EQ(filter.rejectedUpdates(), 0u);
}

TEST(FuseHeading, FallsBackToCircularMeanWithoutGyro) {
  const std::vector<double> compass{88.0, 92.0, 90.0};
  EXPECT_NEAR(fuseHeadingDeg(compass, {}, 50.0),
              geometry::circularMeanDeg(compass), 1e-9);
}

TEST(FuseHeading, MatchesMeanOnCleanStraightWalk) {
  util::Rng rng(7);
  const CompassModel compass;
  const GyroscopeModel gyro;
  const auto readings = compass.readings(135.0, 0.0, 200, rng);
  const auto rates = gyro.straightWalkRates(200, 0.0, rng);
  const double fused = fuseHeadingDeg(readings, rates, 50.0);
  EXPECT_LT(geometry::angularDistDeg(fused, 135.0), 3.0);
}

TEST(FuseHeading, RejectsMagneticDisturbance) {
  // A disturbance drags the circular mean but not the gated filter.
  util::Rng rng(8);
  CompassParams params;
  params.disturbanceProbability = 1.0;
  params.disturbanceMagnitudeDeg = 40.0;
  params.disturbanceFractionOfLeg = 0.3;
  const CompassModel compass(params);
  const GyroscopeModel gyro;

  double meanErrorSum = 0.0;
  double fusedErrorSum = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    auto readings = compass.readings(90.0, 0.0, 250, rng);
    compass.maybeDisturb(readings, rng);
    const auto rates = gyro.straightWalkRates(250, 0.0, rng);
    meanErrorSum += geometry::angularDistDeg(
        geometry::circularMeanDeg(readings), 90.0);
    fusedErrorSum += geometry::angularDistDeg(
        fuseHeadingDeg(readings, rates, 50.0), 90.0);
  }
  EXPECT_LT(fusedErrorSum, meanErrorSum * 0.5);
}

}  // namespace
}  // namespace moloc::sensors
