#include "eval/ambiguity.hpp"

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"

namespace moloc::eval {
namespace {

/// A hand-built map with one obvious twin pair and one unique location.
struct TwinFixture {
  TwinFixture() : plan(30.0, 10.0) {
    plan.addReferenceLocation({2.0, 5.0});    // 0: twin of 1.
    plan.addReferenceLocation({28.0, 5.0});   // 1: twin of 0 (26 m away).
    plan.addReferenceLocation({15.0, 5.0});   // 2: unique.
    db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
    db.addLocation(1, radio::Fingerprint({-50.5, -60.5}));
    db.addLocation(2, radio::Fingerprint({-80.0, -30.0}));
  }
  env::FloorPlan plan;
  radio::FingerprintDatabase db;
};

TEST(Ambiguity, FindsTheTwinPair) {
  const TwinFixture fixture;
  const auto twins = findFingerprintTwins(fixture.db, fixture.plan);
  ASSERT_EQ(twins.size(), 1u);
  EXPECT_EQ(twins[0].a, 0);
  EXPECT_EQ(twins[0].b, 1);
  EXPECT_NEAR(twins[0].fingerprintGapDb, 0.71, 0.01);
  EXPECT_NEAR(twins[0].geometricGapMeters, 26.0, 1e-9);
}

TEST(Ambiguity, CriteriaAreRespected) {
  const TwinFixture fixture;
  // Tighten the fingerprint criterion below the pair's gap: no twins.
  TwinCriteria strict;
  strict.maxFingerprintGapDb = 0.5;
  EXPECT_TRUE(
      findFingerprintTwins(fixture.db, fixture.plan, strict).empty());

  // Raise the geometric criterion beyond 26 m: no twins.
  TwinCriteria far;
  far.minGeometricGapMeters = 30.0;
  EXPECT_TRUE(
      findFingerprintTwins(fixture.db, fixture.plan, far).empty());
}

TEST(Ambiguity, NearbyConfusablePairsAreNotTwins) {
  // Two locations 2 m apart with identical fingerprints: confusable,
  // but a confusion is a small error, so not a "twin" by the paper's
  // meaning.
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({4.0, 5.0});
  plan.addReferenceLocation({6.0, 5.0});
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0}));
  db.addLocation(1, radio::Fingerprint({-50.1}));
  EXPECT_TRUE(findFingerprintTwins(db, plan).empty());
}

TEST(Ambiguity, ScoresIdentifyWorstLocationsFirst) {
  const TwinFixture fixture;
  const auto scores = ambiguityScores(fixture.db, fixture.plan);
  ASSERT_EQ(scores.size(), 3u);
  // The twin endpoints carry the largest error-if-confused (26 m) and
  // rank first; the unique location ranks last.
  EXPECT_NEAR(scores[0].errorIfConfusedMeters, 26.0, 1e-9);
  EXPECT_NEAR(scores[1].errorIfConfusedMeters, 26.0, 1e-9);
  EXPECT_EQ(scores[2].location, 2);
  // Each twin's nearest-in-signal-space is the other twin.
  EXPECT_EQ(scores[0].nearestInSignalSpace,
            scores[0].location == 0 ? 1 : 0);
}

TEST(Ambiguity, OfficeHallHasTwins) {
  // The calibrated hall must actually contain the ambiguity the paper
  // studies: several far-apart pairs with close fingerprints at 4 APs.
  eval::WorldConfig config;
  config.apCount = 4;
  config.trainingTraces = 2;  // DB content irrelevant here; keep fast.
  config.legsPerTrainingTrace = 3;
  ExperimentWorld world(config);
  const auto twins =
      findFingerprintTwins(world.fingerprintDb(), world.hall().plan);
  EXPECT_GE(twins.size(), 3u);
}

}  // namespace
}  // namespace moloc::eval
