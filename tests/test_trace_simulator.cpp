#include "traj/trace_simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "env/office_hall.hpp"
#include "geometry/angles.hpp"
#include "sensors/motion_processor.hpp"

namespace moloc::traj {
namespace {

class TraceSimulatorTest : public ::testing::Test {
 protected:
  TraceSimulatorTest() {
    radio_ = std::make_unique<radio::RadioEnvironment>(
        hall_.plan,
        std::vector<radio::AccessPoint>{{0, hall_.apPositions[0]},
                                        {1, hall_.apPositions[3]}},
        radio::PropagationParams{});
    sim_ = std::make_unique<TraceSimulator>(*radio_, hall_.graph);
  }

  env::OfficeHall hall_ = env::makeOfficeHall();
  std::unique_ptr<radio::RadioEnvironment> radio_;
  std::unique_ptr<TraceSimulator> sim_;
  UserProfile user_ = makeDefaultUsers().front();
};

TEST_F(TraceSimulatorTest, RejectsEmptyRoute) {
  util::Rng rng(1);
  EXPECT_THROW(sim_->simulate(user_, {}, rng), std::invalid_argument);
}

TEST_F(TraceSimulatorTest, RejectsNonAdjacentLegs) {
  util::Rng rng(1);
  EXPECT_THROW(sim_->simulate(user_, {0, 27}, rng),
               std::invalid_argument);
}

TEST_F(TraceSimulatorTest, SingleNodeRouteHasOnlyInitialScan) {
  util::Rng rng(2);
  const auto trace = sim_->simulate(user_, {5}, rng);
  EXPECT_EQ(trace.startTruth, 5);
  EXPECT_EQ(trace.intervals.size(), 0u);
  EXPECT_EQ(trace.initialScan.size(), 2u);
}

TEST_F(TraceSimulatorTest, IntervalsMatchRouteLegs) {
  util::Rng rng(3);
  const auto trace = sim_->simulate(user_, {0, 1, 2, 3}, rng);
  ASSERT_EQ(trace.intervals.size(), 3u);
  EXPECT_EQ(trace.intervals[0].fromTruth, 0);
  EXPECT_EQ(trace.intervals[0].toTruth, 1);
  EXPECT_EQ(trace.intervals[2].fromTruth, 2);
  EXPECT_EQ(trace.intervals[2].toTruth, 3);
}

TEST_F(TraceSimulatorTest, GroundTruthRlmsMatchGraph) {
  util::Rng rng(4);
  const auto trace = sim_->simulate(user_, {0, 1, 8}, rng);
  const auto leg0 = hall_.graph.groundTruthRlm(0, 1);
  EXPECT_DOUBLE_EQ(trace.intervals[0].trueDirectionDeg,
                   leg0->directionDeg);
  EXPECT_DOUBLE_EQ(trace.intervals[0].trueOffsetMeters,
                   leg0->offsetMeters);
}

TEST_F(TraceSimulatorTest, ImuDurationMatchesLegAtUserSpeed) {
  util::Rng rng(5);
  const auto trace = sim_->simulate(user_, {0, 1}, rng);
  const double expected =
      trace.intervals[0].trueOffsetMeters / user_.speedMps();
  EXPECT_NEAR(trace.intervals[0].imu.duration(), expected, 0.05);
}

TEST_F(TraceSimulatorTest, MotionProcessingRecoversLegRlm) {
  util::Rng rng(6);
  const auto trace = sim_->simulate(user_, {0, 1, 2, 3}, rng);
  const sensors::MotionProcessor processor;
  for (const auto& interval : trace.intervals) {
    const auto motion = processor.process(
        interval.imu, user_.estimatedStepLengthMeters());
    ASSERT_TRUE(motion.has_value());
    EXPECT_LT(geometry::angularDistDeg(motion->directionDeg,
                                       interval.trueDirectionDeg),
              20.0);
    EXPECT_NEAR(motion->offsetMeters, interval.trueOffsetMeters, 1.5);
  }
}

TEST_F(TraceSimulatorTest, ScansHaveApDimension) {
  util::Rng rng(7);
  const auto trace = sim_->simulate(user_, {0, 1, 2}, rng);
  EXPECT_EQ(trace.initialScan.size(), 2u);
  for (const auto& interval : trace.intervals)
    EXPECT_EQ(interval.scanAtArrival.size(), 2u);
}

TEST_F(TraceSimulatorTest, CompassBiasIsPerTrace) {
  util::Rng rng(8);
  const auto a = sim_->simulate(user_, {0, 1}, rng);
  const auto b = sim_->simulate(user_, {0, 1}, rng);
  EXPECT_NE(a.compassBiasDeg, b.compassBiasDeg);
}

TEST_F(TraceSimulatorTest, Deterministic) {
  util::Rng rngA(9);
  util::Rng rngB(9);
  const auto a = sim_->simulate(user_, {0, 1, 2}, rngA);
  const auto b = sim_->simulate(user_, {0, 1, 2}, rngB);
  EXPECT_EQ(a.compassBiasDeg, b.compassBiasDeg);
  EXPECT_EQ(a.initialScan[0], b.initialScan[0]);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  EXPECT_EQ(a.intervals[1].imu.size(), b.intervals[1].imu.size());
  EXPECT_EQ(a.intervals[1].scanAtArrival[1],
            b.intervals[1].scanAtArrival[1]);
}

TEST_F(TraceSimulatorTest, FasterUserProducesShorterTraces) {
  util::Rng rngA(10);
  util::Rng rngB(10);
  UserProfile fast = user_;
  fast.cadenceHz = 2.1;
  fast.trueStepLengthMeters = 0.8;
  const auto slow = sim_->simulate(user_, {0, 1}, rngA);
  const auto quick = sim_->simulate(fast, {0, 1}, rngB);
  EXPECT_GT(slow.intervals[0].imu.size(), quick.intervals[0].imu.size());
}

}  // namespace
}  // namespace moloc::traj
