#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace moloc::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Counter, IgnoresNegativeAndNonFiniteDeltas) {
  Counter c;
  c.inc(5.0);
  c.inc(-3.0);
  c.inc(std::numeric_limits<double>::quiet_NaN());
  c.inc(std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(c.value(), 5.0);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& thread : threads) thread.join();
  // Integer totals below 2^53 are exactly representable in a double,
  // so no tolerance: any lost update is a bug.
  EXPECT_DOUBLE_EQ(c.value(),
                   static_cast<double>(kThreads) * kPerThread);
}

TEST(Gauge, SetIncDec) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(10.0);
  g.inc(2.0);
  g.dec();
  EXPECT_DOUBLE_EQ(g.value(), 11.0);
  g.set(-4.5);  // Gauges may go negative.
  EXPECT_DOUBLE_EQ(g.value(), -4.5);
}

TEST(Gauge, ConcurrentIncDecBalancesToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.inc();
        g.dec();
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(Histogram, BucketAssignmentUpperBoundInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // -> bucket le=1
  h.observe(1.0);  // -> bucket le=1 (le is inclusive, as in Prometheus)
  h.observe(1.5);  // -> bucket le=2
  h.observe(4.0);  // -> bucket le=4
  h.observe(9.0);  // -> overflow
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + overflow.
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Histogram, IgnoresNonFiniteObservations) {
  Histogram h({1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(15.0);  // All in (10, 20].
  // The whole mass is in bucket (10, 20]; linear interpolation puts
  // the median at its midpoint.
  EXPECT_NEAR(h.quantile(0.5), 15.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.0), 10.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 20.0, 1e-9);
}

TEST(Histogram, QuantileAcrossBuckets) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  // 25 observations per bucket.
  for (int b = 0; b < 4; ++b)
    for (int i = 0; i < 25; ++i) h.observe(b + 0.5);
  EXPECT_NEAR(h.quantile(0.25), 1.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.95), 3.8, 1e-9);
}

TEST(Histogram, QuantileEmptyAndOverflow) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // Empty histogram.
  h.observe(100.0);                 // Only the overflow bucket.
  // Overflow has no finite upper bound; the estimate clamps to the
  // last finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  Histogram h(Histogram::exponentialBuckets(1.0, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(t % 4) + 0.5);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.bucketCounts()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, BucketGenerators) {
  const auto exp = Histogram::exponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const auto lin = Histogram::linearBuckets(0.5, 0.25, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[1], 0.75);
  EXPECT_THROW(Histogram::exponentialBuckets(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponentialBuckets(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::linearBuckets(1.0, 0.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::linearBuckets(1.0, 1.0, 0),
               std::invalid_argument);
}

TEST(ScopedTimer, ObservesElapsedSeconds) {
  Histogram h({1e-6, 1e-3, 1.0});
  {
    ScopedTimer timer(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.002);
  EXPECT_LT(h.sum(), 1.0);
}

TEST(ScopedTimer, TickClockTracksWallTime) {
  // The tick clock (TSC on x86) must agree with steady_clock once
  // calibrated — a 20 ms sleep measured by both should match within
  // a generous scheduling tolerance.
  const auto wall0 = std::chrono::steady_clock::now();
  const std::uint64_t tick0 = detail::ticksNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t tick1 = detail::ticksNow();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();
  const double ticked = detail::ticksToSeconds(tick0, tick1);
  EXPECT_GE(ticked, 0.019);
  EXPECT_LE(ticked, wall * 1.05 + 1e-4);
  // Reversed or equal tick pairs clamp to zero instead of wrapping.
  EXPECT_EQ(detail::ticksToSeconds(tick1, tick0), 0.0);
  EXPECT_EQ(detail::ticksToSeconds(tick0, tick0), 0.0);
}

TEST(ScopedTimer, NullSinkIsSafeAndStopIsIdempotent) {
  ScopedTimer nullTimer(nullptr);  // Must not crash at destruction.
  Histogram h({1.0});
  ScopedTimer timer(&h);
  timer.stop();
  timer.stop();  // Second stop must not double-observe.
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("moloc_test_total", "help");
  Counter& b = registry.counter("moloc_test_total", "help");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter& a =
      registry.counter("moloc_test_total", "help", {{"stage", "a"}});
  Counter& b =
      registry.counter("moloc_test_total", "help", {{"stage", "b"}});
  EXPECT_NE(&a, &b);
  // Label order must not matter.
  Counter& a2 = registry.counter("moloc_test_total", "help",
                                 {{"stage", "a"}});
  EXPECT_EQ(&a, &a2);
  Counter& multi = registry.counter(
      "moloc_multi_total", "help", {{"x", "1"}, {"y", "2"}});
  Counter& multiSwapped = registry.counter(
      "moloc_multi_total", "help", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&multi, &multiSwapped);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("moloc_test_total", "help");
  EXPECT_THROW(registry.gauge("moloc_test_total", "help"),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("moloc_test_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, InvalidNamesAndLabelsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("", "help"), std::invalid_argument);
  EXPECT_THROW(registry.counter("9starts_with_digit", "help"),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("has space", "help"),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_total", "help", {{"9bad", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(
      registry.counter("ok_total", "help", {{"k", "a"}, {"k", "b"}}),
      std::invalid_argument);
}

TEST(MetricsRegistry, FirstRegistrationFixesHistogramBuckets) {
  MetricsRegistry registry;
  Histogram& a =
      registry.histogram("moloc_test_seconds", "help", {1.0, 2.0});
  // Later callers get the existing instrument; their bounds are
  // ignored.
  Histogram& b =
      registry.histogram("moloc_test_seconds", "help", {5.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bucketCounts().size(), 3u);  // 2 finite + overflow.
}

TEST(MetricsRegistry, FindReturnsNullWhenAbsent) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.findCounter("nope_total"), nullptr);
  EXPECT_EQ(registry.findGauge("nope"), nullptr);
  EXPECT_EQ(registry.findHistogram("nope_seconds"), nullptr);
  Counter& c = registry.counter("yes_total", "help");
  EXPECT_EQ(registry.findCounter("yes_total"), &c);
  EXPECT_EQ(registry.findCounter("yes_total", {{"k", "v"}}), nullptr);
  EXPECT_EQ(registry.findGauge("yes_total"), nullptr);  // Wrong kind.
}

TEST(MetricsRegistry, SnapshotReflectsState) {
  MetricsRegistry registry;
  registry.counter("moloc_a_total", "count things").inc(3.0);
  registry.gauge("moloc_b", "level").set(-1.5);
  registry.histogram("moloc_c_seconds", "timing", {1.0, 2.0})
      .observe(1.5);

  const auto families = registry.snapshot();
  ASSERT_EQ(families.size(), 3u);  // Sorted by name.
  EXPECT_EQ(families[0].name, "moloc_a_total");
  EXPECT_EQ(families[0].kind, MetricKind::kCounter);
  EXPECT_EQ(families[0].help, "count things");
  ASSERT_EQ(families[0].series.size(), 1u);
  EXPECT_DOUBLE_EQ(families[0].series[0].value, 3.0);

  EXPECT_EQ(families[1].name, "moloc_b");
  EXPECT_DOUBLE_EQ(families[1].series[0].value, -1.5);

  EXPECT_EQ(families[2].name, "moloc_c_seconds");
  const auto& hist = families[2].series[0].histogram;
  EXPECT_EQ(hist.count, 1u);
  EXPECT_DOUBLE_EQ(hist.sum, 1.5);
  ASSERT_EQ(hist.bucketCounts.size(), 3u);
  EXPECT_EQ(hist.bucketCounts[1], 1u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUse) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      // Every thread races get-or-create for the same series, then
      // hammers it; the total must still be exact.
      Counter& c = registry.counter("moloc_race_total", "help");
      Histogram& h = registry.histogram("moloc_race_seconds", "help",
                                        {1.0, 2.0, 4.0});
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.5);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(registry.findCounter("moloc_race_total")->value(),
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(registry.findHistogram("moloc_race_seconds")->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace moloc::obs
