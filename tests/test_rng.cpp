#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace moloc::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniformInt(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    sawLo = sawLo || x == 0;
    sawHi = sawHi || x == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i)
    EXPECT_LT(rng.uniformIndex(7), 7u);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(rng.uniformIndex(1), 0u);
}

TEST(Rng, UniformIndexZeroBoundThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.uniformIndex(0), std::invalid_argument);
}

TEST(Rng, UniformIndexRoughlyUniform) {
  Rng rng(29);
  const std::uint64_t bound = 5;
  const int n = 50000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.uniformIndex(bound)];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c), n / 5.0, n / 5.0 * 0.05);
}

TEST(Rng, UniformIndexHandlesBoundsBeyond32Bits) {
  // The motivating bug: reservoir `seen` counters were squeezed
  // through int before drawing a slot.  Verify draws against a bound
  // past 2^32 stay in range and actually reach the upper region.
  Rng rng(31);
  const std::uint64_t bound = (1ULL << 33) + 12345;
  bool sawHigh = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.uniformIndex(bound);
    EXPECT_LT(x, bound);
    sawHigh = sawHigh || x > (1ULL << 32);
  }
  EXPECT_TRUE(sawHigh);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child stream should differ from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (parent() != child()) ++differing;
  EXPECT_GT(differing, 12);
}

}  // namespace
}  // namespace moloc::util
