#include "net/server.hpp"

#include <gtest/gtest.h>

#include <linux/sockios.h>
#include <sys/ioctl.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/online_motion_database.hpp"
#include "image/image_loader.hpp"
#include "image/image_writer.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "service/localization_service.hpp"
#include "util/rng.hpp"

namespace moloc::net {
namespace {

// ---- The Fig. 1 twin world (mirrors test_localization_service) -----

radio::FingerprintDatabase twinFingerprints() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
  db.addLocation(2, radio::Fingerprint({-50.1, -60.1}));
  db.addLocation(3, radio::Fingerprint({-55.1, -57.1}));
  db.addLocation(4, radio::Fingerprint({-70.0, -40.0}));
  return db;
}

core::MotionDatabase twinMotion() {
  core::MotionDatabase db(5);
  db.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
  db.setEntryWithMirror(2, 3, {90.0, 4.0, 4.0, 0.3, 20});
  db.setEntryWithMirror(1, 4, {117.0, 4.0, 8.9, 0.4, 20});
  db.setEntryWithMirror(3, 4, {63.0, 4.0, 8.9, 0.4, 20});
  return db;
}

sensors::ImuTrace walkingTrace(std::uint64_t seed) {
  util::Rng rng(seed);
  sensors::AccelerometerModel accel;
  sensors::CompassModel compass;
  const auto accelSeries = accel.walkingSamples(150, 1.8, rng);
  const auto compassSeries = compass.readings(90.0, 0.0, 150, rng);
  sensors::ImuTrace trace(50.0);
  for (std::size_t i = 0; i < 150; ++i)
    trace.append({i / 50.0, accelSeries[i], compassSeries[i]});
  return trace;
}

struct Walk {
  std::vector<radio::Fingerprint> scans;
  std::vector<sensors::ImuTrace> imu;
};

Walk makeWalk(std::uint64_t seed) {
  util::Rng rng(seed);
  Walk walk;
  const double jitter = rng.uniform(-0.4, 0.4);
  walk.scans.push_back(radio::Fingerprint({-50.0 + jitter, -60.0}));
  walk.imu.push_back(sensors::ImuTrace(50.0));  // First fix: no IMU.
  walk.scans.push_back(radio::Fingerprint({-55.0 + jitter, -57.0}));
  walk.imu.push_back(walkingTrace(seed * 7 + 1));
  walk.scans.push_back(radio::Fingerprint({-70.0 + jitter, -40.0}));
  walk.imu.push_back(walkingTrace(seed * 7 + 2));
  return walk;
}

bool estimatesBitwiseEqual(const core::LocationEstimate& a,
                           const core::LocationEstimate& b) {
  if (a.location != b.location || a.probability != b.probability ||
      a.candidates.size() != b.candidates.size())
    return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i)
    if (a.candidates[i].location != b.candidates[i].location ||
        a.candidates[i].probability != b.candidates[i].probability)
      return false;
  return true;
}

service::ServiceConfig testConfig(std::size_t threads) {
  service::ServiceConfig config;
  config.threadCount = threads;
  config.shardCount = 4;
  config.engine = core::MoLocConfig{5, {}};
  return config;
}

env::FloorPlan intakePlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

ServerConfig loopbackConfig() {
  ServerConfig config;
  config.port = 0;  // Ephemeral; never collides across parallel tests.
  config.workerThreads = 2;
  return config;
}

/// Spins until `predicate` holds or ~2 s pass (the server's counters
/// are updated by the loop thread slightly after the client observes
/// the socket effect).
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

/// Blocks until every byte the client sent has been ACKed — i.e. the
/// whole burst sits in the server's kernel receive buffer, whether or
/// not the server has read it.  Makes the drain tests deterministic:
/// the stop request provably races only the *serving* of the burst,
/// not its TCP delivery.
void awaitDelivered(const Client& client) {
  ASSERT_TRUE(eventually([&] {
    int unacked = -1;
    return ::ioctl(client.fd(), SIOCOUTQ, &unacked) == 0 && unacked == 0;
  }));
}

TEST(NetServer, LoopbackLocalizeIsBitwiseIdenticalToInProcess) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  service::LocalizationService reference(twinFingerprints(), twinMotion(),
                                         testConfig(1));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  for (std::uint64_t user = 1; user <= 3; ++user) {
    const Walk walk = makeWalk(user);
    for (std::size_t r = 0; r < walk.scans.size(); ++r) {
      const std::uint64_t tag = user * 100 + r;
      const LocalizeResponse response =
          client.localize(tag, user, walk.scans[r], walk.imu[r]);
      ASSERT_EQ(response.status, Status::kOk) << response.message;
      EXPECT_EQ(response.tag, tag);
      const auto expected =
          reference.submitScan(user, walk.scans[r], walk.imu[r]);
      EXPECT_TRUE(estimatesBitwiseEqual(response.estimate, expected))
          << "user " << user << " round " << r;
    }
  }
  EXPECT_EQ(served.sessionCount(), 3u);
  EXPECT_EQ(server.stats().requestsServed, 9u);
}

// The tentpole acceptance test for src/image: a service booted from a
// venue image (zero-copy mmap views all the way down) must answer the
// wire protocol bitwise-identically to a service built fresh from the
// same databases.
TEST(NetServer, ImageLoadedWorldServesBitwiseIdenticalToFreshlyBuilt) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_net_image_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/venue.img";

  // Force the tiered index on so the image embeds signature planes and
  // the served localize path exercises them.
  service::ServiceConfig config = testConfig(2);
  config.indexMode = service::IndexMode::kOn;
  service::LocalizationService reference(twinFingerprints(), twinMotion(),
                                         config);
  ASSERT_NE(reference.tieredIndex(), nullptr);
  image::writeVenueImage(path, *reference.currentWorld());

  const image::VenueImage venueImage = image::VenueImage::open(path);
  ASSERT_TRUE(venueImage.hasIndex());
  service::LocalizationService served(
      venueImage.fingerprints(), venueImage.adjacency(),
      venueImage.tieredIndex(), venueImage.meta().generation,
      venueImage.meta().intakeRecords, config);
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  for (std::uint64_t user = 1; user <= 3; ++user) {
    const Walk walk = makeWalk(user + 20);
    for (std::size_t r = 0; r < walk.scans.size(); ++r) {
      const std::uint64_t tag = user * 100 + r;
      const LocalizeResponse response =
          client.localize(tag, user, walk.scans[r], walk.imu[r]);
      ASSERT_EQ(response.status, Status::kOk) << response.message;
      const auto expected =
          reference.submitScan(user, walk.scans[r], walk.imu[r]);
      EXPECT_TRUE(estimatesBitwiseEqual(response.estimate, expected))
          << "user " << user << " round " << r;
    }
  }
  EXPECT_EQ(served.sessionCount(), 3u);
}

TEST(NetServer, LocalizeBatchMatchesAndPreservesOrder) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  service::LocalizationService reference(twinFingerprints(), twinMotion(),
                                         testConfig(1));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  LocalizeBatchRequest request;
  request.tag = 5;
  std::vector<service::ScanRequest> referenceBatch;
  for (std::uint64_t user = 1; user <= 4; ++user) {
    const Walk walk = makeWalk(user + 10);
    for (std::size_t r = 0; r < walk.scans.size(); ++r) {
      WireScan scan;
      scan.sessionId = user;
      scan.scan = walk.scans[r];
      scan.imu = walk.imu[r];
      request.scans.push_back(scan);
      referenceBatch.push_back({user, walk.scans[r], walk.imu[r]});
    }
  }

  const LocalizeBatchResponse response = client.localizeBatch(request);
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  const auto expected = reference.localizeBatch(referenceBatch);
  ASSERT_EQ(response.estimates.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_TRUE(estimatesBitwiseEqual(response.estimates[i], expected[i]))
        << "batch index " << i;
}

TEST(NetServer, ReportFlushAndStatsRoundTrip) {
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan);
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  served.attachIntake(&db);
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  const ReportObservationResponse accepted =
      client.reportObservation(1, 0, 1, 90.0, 4.0);
  ASSERT_EQ(accepted.status, Status::kOk) << accepted.message;
  EXPECT_TRUE(accepted.accepted);

  // Coarse map rejection is a normal kOk answer with accepted=false.
  const ReportObservationResponse rejected =
      client.reportObservation(2, 0, 1, 180.0, 4.0);
  ASSERT_EQ(rejected.status, Status::kOk) << rejected.message;
  EXPECT_FALSE(rejected.accepted);

  const FlushResponse flushed = client.flush(3);
  ASSERT_EQ(flushed.status, Status::kOk) << flushed.message;
  EXPECT_EQ(db.counters().accepted, 1u);

  const StatsResponse stats = client.stats(4);
  ASSERT_EQ(stats.status, Status::kOk) << stats.message;
  EXPECT_EQ(stats.stats.intakeApplied, 1u);
  EXPECT_EQ(stats.stats.requestsServed, 4u);
  EXPECT_EQ(stats.stats.connectionsAccepted, 1u);
  // The published world moved past the boot generation.
  EXPECT_GE(stats.stats.worldGeneration, 1u);
}

TEST(NetServer, ReportWithoutIntakeIsBadRequestNotDisconnect) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  const ReportObservationResponse response =
      client.reportObservation(1, 0, 1, 90.0, 4.0);
  EXPECT_EQ(response.status, Status::kBadRequest);
  EXPECT_FALSE(response.message.empty());

  // The connection survives an application-level error.
  const StatsResponse stats = client.stats(2);
  EXPECT_EQ(stats.status, Status::kOk);
}

/// Write-ahead sink that parks the intake writer until released, so
/// the one-slot queue below stays provably full while the test floods
/// the server.
class BlockingSink : public core::ObservationSink {
 public:
  void onAccepted(env::LocationId, env::LocationId, double,
                  double) override {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
};

TEST(NetServer, IntakeBackpressureMapsToOverloadedStatus) {
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan);
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  service::IntakePolicy policy;
  policy.queueCapacity = 1;
  served.attachIntake(&db, nullptr, 0, policy);
  BlockingSink sink;
  db.setSink(&sink);

  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  // First observation: admitted, then pinned mid-apply by the sink.
  // Second: admitted into the one queue slot.  Third and later: the
  // queue is full — the server must answer OVERLOADED and keep the
  // connection, never drop it.
  ASSERT_EQ(client.reportObservation(1, 0, 1, 90.0, 4.0).status,
            Status::kOk);
  ASSERT_TRUE(eventually([&] { return sink.entered.load(); }));

  bool sawOverload = false;
  for (std::uint64_t tag = 2; tag <= 6; ++tag) {
    const ReportObservationResponse response =
        client.reportObservation(tag, 0, 1, 90.0, 4.0);
    if (response.status == Status::kOverloaded) {
      sawOverload = true;
      EXPECT_FALSE(response.message.empty());
    } else {
      EXPECT_EQ(response.status, Status::kOk) << response.message;
    }
  }
  EXPECT_TRUE(sawOverload);
  EXPECT_GE(server.stats().overloadRejections, 1u);

  // Release the writer; the connection is still healthy.
  sink.release.store(true);
  EXPECT_EQ(client.stats(99).status, Status::kOk);
  db.setSink(nullptr);
}

TEST(NetServer, DrainAnswersEveryPipelinedRequestBeforeClosing) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  // Pipeline a burst without reading, then immediately request drain.
  constexpr std::uint64_t kBurst = 24;
  const Walk walk = makeWalk(1);
  for (std::uint64_t tag = 0; tag < kBurst; ++tag) {
    LocalizeRequest request;
    request.tag = tag;
    request.scan.sessionId = 1 + (tag % 4);
    request.scan.scan = walk.scans[0];
    request.scan.imu = walk.imu[0];
    client.send(encodeLocalizeRequest(request));
  }
  awaitDelivered(client);
  server.requestStop();

  // Every response owed must still arrive, in order, before the close.
  for (std::uint64_t tag = 0; tag < kBurst; ++tag) {
    const Frame frame = client.recvFrame();
    ASSERT_EQ(frame.type, MsgType::kLocalizeResponse);
    const LocalizeResponse response = decodeLocalizeResponse(frame.payload);
    EXPECT_EQ(response.tag, tag);
    EXPECT_EQ(response.status, Status::kOk) << response.message;
  }
  EXPECT_THROW(client.recvFrame(), NetError);  // Clean close after drain.

  server.waitUntilStopped();
  EXPECT_TRUE(server.stopped());
  EXPECT_EQ(server.stats().requestsServed, kBurst);
}

TEST(NetServer, OversizedBatchResponseIsAnErrorNotAWedgedConnection) {
  // Each served estimate encodes larger than the minimal scan that
  // produced it, so a batch that fits the 1 MiB request bound can
  // yield a response that does not.  The failed encode must come back
  // as a kInternalError *response* — never wedge the connection (a
  // worker exception would leave `processing` set forever) or block
  // the drain.
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  service::LocalizationService reference(twinFingerprints(), twinMotion(),
                                         testConfig(1));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  // Learn the per-estimate encoded size from one in-process first fix
  // (same world, same scan), then size the batch so its response
  // provably overflows while the request still frames.
  const radio::Fingerprint scan({-50.0, -60.0});
  const sensors::ImuTrace noImu(50.0);
  const auto fix = reference.submitScan(1, scan, noImu);
  ASSERT_GE(fix.candidates.size(), 3u);  // twin world: k=5 over 5 locations
  const std::size_t perEstimate = 4 + 8 + 4 + 12 * fix.candidates.size();
  const std::size_t count = kMaxPayloadBytes / perEstimate + 100;
  const std::size_t perScan = 8 + 4 + 2 * 8 + 8 + 4;  // 2 APs, no IMU
  ASSERT_LE(8 + 4 + count * perScan, kMaxPayloadBytes);

  LocalizeBatchRequest request;
  request.tag = 1;
  request.scans.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WireScan s;
    s.sessionId = i + 1;  // Distinct sessions: every estimate is a first fix.
    s.scan = scan;
    s.imu = noImu;
    request.scans.push_back(std::move(s));
  }

  const LocalizeBatchResponse response = client.localizeBatch(request);
  EXPECT_EQ(response.status, Status::kInternalError);
  EXPECT_FALSE(response.message.empty());
  EXPECT_TRUE(response.estimates.empty());

  // The connection survived and the server still drains cleanly.
  EXPECT_EQ(client.stats(2).status, Status::kOk);
  server.requestStop();
  server.waitUntilStopped();
  EXPECT_TRUE(server.stopped());
}

TEST(NetServer, DrainDeadlineForceClosesAStalledMidFramePeer) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  ServerConfig config = loopbackConfig();
  config.drainTimeoutMs = 200;
  Server server(served, config);
  Client client("127.0.0.1", server.port());

  // A frame that never finishes: only half the header arrives.  The
  // peer looks permanently "mid-send" to the reap pass.
  const std::string frame = encodeFlushRequest({1});
  client.send(std::string_view(frame.data(), 6));
  awaitDelivered(client);

  server.requestStop();
  // Without the deadline the loop would wait forever for the rest of
  // the frame; with it the straggler is cut and the drain completes.
  server.waitUntilStopped();
  EXPECT_TRUE(server.stopped());
  EXPECT_THROW(client.recvFrame(), NetError);
  // Force-closing is our hang-up, not a peer one: never counted clean.
  EXPECT_EQ(server.stats().cleanDisconnects, 0u);
}

TEST(NetServer, DrainRunsTheDrainHookAfterFlushingResponses) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  std::atomic<bool> hookRan{false};
  ServerConfig config = loopbackConfig();
  config.drainHook = [&] { hookRan.store(true); };
  Server server(served, config);

  Client client("127.0.0.1", server.port());
  client.send(encodeStatsRequest({1}));
  awaitDelivered(client);
  server.requestStop();
  EXPECT_EQ(client.recvFrame().type, MsgType::kStatsResponse);
  server.waitUntilStopped();
  EXPECT_TRUE(hookRan.load());

  // A drained server accepts no new connections.
  EXPECT_THROW(Client("127.0.0.1", server.port()), NetError);
}

TEST(NetServer, SigtermHandlerDrainsLikeMolocd) {
  // Mirrors molocd's signal wiring: requestStop() is async-signal-safe,
  // so the handler may call it directly.
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  Server server(served, loopbackConfig());

  static Server* signalTarget;
  signalTarget = &server;
  using HandlerFn = void (*)(int);
  const HandlerFn previous = std::signal(
      SIGTERM, [](int) { signalTarget->requestStop(); });
  ASSERT_NE(previous, SIG_ERR);
  std::raise(SIGTERM);
  std::signal(SIGTERM, previous);

  server.waitUntilStopped();
  EXPECT_TRUE(server.stopped());
  signalTarget = nullptr;
}

TEST(NetServer, MalformedBytesCountAndDropTheConnection) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  Server server(served, loopbackConfig());
  Client client("127.0.0.1", server.port());

  client.send("this is not a MLOC frame, not even close....");
  EXPECT_THROW(client.recvFrame(), NetError);
  EXPECT_TRUE(eventually([&] { return server.stats().protocolErrors >= 1; }));

  // A response-typed frame from a client is equally a protocol error.
  Client second("127.0.0.1", server.port());
  FlushResponse spoofed;
  spoofed.tag = 1;
  second.send(encodeFlushResponse(spoofed));
  EXPECT_THROW(second.recvFrame(), NetError);
  EXPECT_TRUE(eventually([&] { return server.stats().protocolErrors >= 2; }));

  // The server itself is unharmed.
  Client third("127.0.0.1", server.port());
  EXPECT_EQ(third.stats(1).status, Status::kOk);

  // Taxonomy: a protocol-error drop is *not* a clean disconnect — the
  // two counters partition disconnect causes, they never double-count.
  // (The stats round trip above guarantees the loop has long since
  // reaped both dropped connections.)
  EXPECT_EQ(server.stats().cleanDisconnects, 0u);
}

TEST(NetServer, PeerHangupIsACleanCountedDisconnect) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(1));
  Server server(served, loopbackConfig());
  {
    Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.stats(1).status, Status::kOk);
  }  // Destructor closes the socket: EOF at the server.
  EXPECT_TRUE(
      eventually([&] { return server.stats().cleanDisconnects >= 1; }));
  EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(NetServer, ManyConcurrentClientsKeepSessionsIsolated) {
  service::LocalizationService served(twinFingerprints(), twinMotion(),
                                      testConfig(2));
  service::LocalizationService reference(twinFingerprints(), twinMotion(),
                                         testConfig(1));
  Server server(served, loopbackConfig());

  constexpr std::uint64_t kClients = 8;
  std::vector<std::vector<LocalizeResponse>> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::uint64_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      const Walk walk = makeWalk(c + 1);
      for (std::size_t r = 0; r < walk.scans.size(); ++r)
        results[c].push_back(
            client.localize(r, c + 1, walk.scans[r], walk.imu[r]));
    });
  }
  for (auto& t : threads) t.join();

  for (std::uint64_t c = 0; c < kClients; ++c) {
    const Walk walk = makeWalk(c + 1);
    ASSERT_EQ(results[c].size(), walk.scans.size());
    for (std::size_t r = 0; r < walk.scans.size(); ++r) {
      ASSERT_EQ(results[c][r].status, Status::kOk);
      const auto expected =
          reference.submitScan(c + 1, walk.scans[r], walk.imu[r]);
      EXPECT_TRUE(estimatesBitwiseEqual(results[c][r].estimate, expected))
          << "client " << c << " round " << r;
    }
  }
  EXPECT_EQ(served.sessionCount(), kClients);
}

}  // namespace
}  // namespace moloc::net
