#include "sensors/imu_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::sensors {
namespace {

TEST(ImuTrace, RejectsNonPositiveRate) {
  EXPECT_THROW(ImuTrace(0.0), std::invalid_argument);
  EXPECT_THROW(ImuTrace(-10.0), std::invalid_argument);
}

TEST(ImuTrace, EmptyTrace) {
  const ImuTrace trace(50.0);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.duration(), 0.0);
}

TEST(ImuTrace, AppendAndAccess) {
  ImuTrace trace(10.0);
  trace.append({0.0, 9.8, 45.0});
  trace.append({0.1, 10.2, 46.0});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[1].accelMagnitude, 10.2);
  EXPECT_DOUBLE_EQ(trace[0].compassDeg, 45.0);
}

TEST(ImuTrace, DurationIncludesLastSamplePeriod) {
  ImuTrace trace(10.0);
  trace.append({0.0, 9.8, 0.0});
  trace.append({0.1, 9.8, 0.0});
  trace.append({0.2, 9.8, 0.0});
  // 3 samples at 10 Hz cover 0.3 s of signal.
  EXPECT_NEAR(trace.duration(), 0.3, 1e-12);
}

TEST(ImuTrace, SingleSampleDuration) {
  ImuTrace trace(50.0);
  trace.append({0.0, 9.8, 0.0});
  EXPECT_NEAR(trace.duration(), 0.02, 1e-12);
}

TEST(ImuTrace, SeriesExtraction) {
  ImuTrace trace(10.0);
  trace.append({0.0, 9.0, 10.0});
  trace.append({0.1, 11.0, 20.0});
  const auto accel = trace.accelSeries();
  const auto compass = trace.compassSeries();
  ASSERT_EQ(accel.size(), 2u);
  ASSERT_EQ(compass.size(), 2u);
  EXPECT_DOUBLE_EQ(accel[1], 11.0);
  EXPECT_DOUBLE_EQ(compass[0], 10.0);
}

}  // namespace
}  // namespace moloc::sensors
