#include "core/motion_database.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::core {
namespace {

TEST(MotionDatabase, EmptyByDefault) {
  const MotionDatabase db(4);
  EXPECT_EQ(db.locationCount(), 4u);
  EXPECT_EQ(db.entryCount(), 0u);
  EXPECT_FALSE(db.hasEntry(0, 1));
  EXPECT_FALSE(db.entry(0, 1).has_value());
}

TEST(MotionDatabase, SetAndGetEntry) {
  MotionDatabase db(4);
  db.setEntry(1, 2, {90.0, 5.0, 4.0, 0.3, 12});
  ASSERT_TRUE(db.hasEntry(1, 2));
  const auto stats = db.entry(1, 2);
  EXPECT_DOUBLE_EQ(stats->muDirectionDeg, 90.0);
  EXPECT_DOUBLE_EQ(stats->sigmaDirectionDeg, 5.0);
  EXPECT_DOUBLE_EQ(stats->muOffsetMeters, 4.0);
  EXPECT_DOUBLE_EQ(stats->sigmaOffsetMeters, 0.3);
  EXPECT_EQ(stats->sampleCount, 12);
  // The plain setter does not mirror.
  EXPECT_FALSE(db.hasEntry(2, 1));
}

TEST(MotionDatabase, MirrorFollowsMutualReachability) {
  MotionDatabase db(4);
  db.setEntryWithMirror(0, 3, {45.0, 6.0, 5.7, 0.4, 8});
  ASSERT_TRUE(db.hasEntry(3, 0));
  const auto mirrored = db.entry(3, 0);
  // Reverse rule of Sec. IV.B.2: direction + 180 (mod 360), offset and
  // sigmas unchanged.
  EXPECT_DOUBLE_EQ(mirrored->muDirectionDeg, 225.0);
  EXPECT_DOUBLE_EQ(mirrored->sigmaDirectionDeg, 6.0);
  EXPECT_DOUBLE_EQ(mirrored->muOffsetMeters, 5.7);
  EXPECT_DOUBLE_EQ(mirrored->sigmaOffsetMeters, 0.4);
  EXPECT_EQ(mirrored->sampleCount, 8);
  EXPECT_EQ(db.entryCount(), 2u);
}

TEST(MotionDatabase, MirrorWrapsAround360) {
  MotionDatabase db(3);
  db.setEntryWithMirror(0, 1, {300.0, 3.0, 4.0, 0.2, 5});
  EXPECT_DOUBLE_EQ(db.entry(1, 0)->muDirectionDeg, 120.0);
}

TEST(MotionDatabase, OverwriteReplaces) {
  MotionDatabase db(3);
  db.setEntry(0, 1, {10.0, 1.0, 2.0, 0.1, 3});
  db.setEntry(0, 1, {20.0, 2.0, 3.0, 0.2, 4});
  EXPECT_DOUBLE_EQ(db.entry(0, 1)->muDirectionDeg, 20.0);
  EXPECT_EQ(db.entryCount(), 1u);
}

TEST(MotionDatabase, SelfEntryAllowedButNotAutomatic) {
  MotionDatabase db(3);
  EXPECT_FALSE(db.hasEntry(1, 1));
  db.setEntry(1, 1, {0.0, 1.0, 0.0, 0.1, 2});
  EXPECT_TRUE(db.hasEntry(1, 1));
}

TEST(MotionDatabase, ThrowsOnBadIds) {
  MotionDatabase db(3);
  EXPECT_THROW(db.setEntry(3, 0, {}), std::out_of_range);
  EXPECT_THROW(db.setEntry(0, -1, {}), std::out_of_range);
  EXPECT_THROW(db.entry(0, 3), std::out_of_range);
  EXPECT_THROW(db.hasEntry(-1, 0), std::out_of_range);
}

TEST(MotionDatabase, DefaultConstructedIsSizeZero) {
  const MotionDatabase db;
  EXPECT_EQ(db.locationCount(), 0u);
  EXPECT_THROW(db.entry(0, 0), std::out_of_range);
}

TEST(MotionDatabase, EntryCountCountsDirected) {
  MotionDatabase db(5);
  db.setEntryWithMirror(0, 1, {});
  db.setEntryWithMirror(1, 2, {});
  db.setEntry(3, 4, {});
  EXPECT_EQ(db.entryCount(), 5u);
}

}  // namespace
}  // namespace moloc::core
