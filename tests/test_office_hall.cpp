#include "env/office_hall.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace moloc::env {
namespace {

class OfficeHallTest : public ::testing::Test {
 protected:
  OfficeHall hall_ = makeOfficeHall();
};

TEST_F(OfficeHallTest, PaperDimensions) {
  EXPECT_DOUBLE_EQ(hall_.plan.width(), 40.8);
  EXPECT_DOUBLE_EQ(hall_.plan.height(), 16.0);
  EXPECT_EQ(hall_.plan.locationCount(),
            static_cast<std::size_t>(kHallLocations));
  EXPECT_EQ(hall_.apPositions.size(), 6u);
}

TEST_F(OfficeHallTest, RowMajorNumberingMatchesFig5) {
  // Id 0 is the paper's location 1 (north-west corner of the grid);
  // id 7 starts the second row.
  EXPECT_EQ(hall_.plan.location(0).pos, hallGridPosition(0, 0));
  EXPECT_EQ(hall_.plan.location(6).pos, hallGridPosition(0, 6));
  EXPECT_EQ(hall_.plan.location(7).pos, hallGridPosition(1, 0));
  EXPECT_EQ(hall_.plan.location(27).pos, hallGridPosition(3, 6));
}

TEST_F(OfficeHallTest, GridPositionsInsideBounds) {
  for (int r = 0; r < kHallRows; ++r) {
    for (int c = 0; c < kHallColumns; ++c) {
      const auto pos = hallGridPosition(r, c);
      EXPECT_GT(pos.x, 0.0);
      EXPECT_LT(pos.x, kHallWidth);
      EXPECT_GT(pos.y, 0.0);
      EXPECT_LT(pos.y, kHallHeight);
    }
  }
}

TEST_F(OfficeHallTest, GridPositionRejectsBadIndices) {
  EXPECT_THROW(hallGridPosition(-1, 0), std::out_of_range);
  EXPECT_THROW(hallGridPosition(0, kHallColumns), std::out_of_range);
  EXPECT_THROW(hallGridPosition(kHallRows, 0), std::out_of_range);
}

TEST_F(OfficeHallTest, NorthRowIsRowZero) {
  EXPECT_GT(hallGridPosition(0, 0).y, hallGridPosition(3, 0).y);
}

TEST_F(OfficeHallTest, GraphIsConnectedDespitePartitions) {
  EXPECT_TRUE(hall_.graph.isConnected());
}

TEST_F(OfficeHallTest, PartitionsSeverExactlyThreeVerticalLegs) {
  // The full 7x4 grid has 6*4 horizontal + 7*3 vertical = 45 legs;
  // partition P1 severs two (rows 0-1, columns 2 and 3) and P2 one
  // (rows 2-3, column 5).
  EXPECT_EQ(hall_.graph.edgeCount(), 42u);
  EXPECT_FALSE(hall_.graph.adjacent(2, 9));    // (0,2)-(1,2)
  EXPECT_FALSE(hall_.graph.adjacent(3, 10));   // (0,3)-(1,3)
  EXPECT_FALSE(hall_.graph.adjacent(19, 26));  // (2,5)-(3,5)
}

TEST_F(OfficeHallTest, SeveredNeighboursNeedDetours) {
  // The severed pairs stay mutually reachable, but only via a detour
  // strictly longer than the 4 m row spacing.
  for (const auto& [i, j] : {std::pair{2, 9}, {3, 10}, {19, 26}}) {
    const double walkable = hall_.graph.walkableDistance(i, j);
    EXPECT_TRUE(std::isfinite(walkable));
    EXPECT_GT(walkable, 4.0 + 1.0);
  }
}

TEST_F(OfficeHallTest, UnseveredLegsExist) {
  EXPECT_TRUE(hall_.graph.adjacent(0, 1));   // Horizontal in row 0.
  EXPECT_TRUE(hall_.graph.adjacent(0, 7));   // Vertical, column 0.
  EXPECT_TRUE(hall_.graph.adjacent(20, 27)); // Vertical, column 6.
}

TEST_F(OfficeHallTest, NoDiagonalAdjacency) {
  EXPECT_FALSE(hall_.graph.adjacent(0, 8));
  EXPECT_FALSE(hall_.graph.adjacent(1, 7));
}

TEST_F(OfficeHallTest, ApsInsideHall) {
  for (const auto& ap : hall_.apPositions) {
    EXPECT_GE(ap.x, 0.0);
    EXPECT_LE(ap.x, kHallWidth);
    EXPECT_GE(ap.y, 0.0);
    EXPECT_LE(ap.y, kHallHeight);
  }
}

TEST_F(OfficeHallTest, PillarsDoNotBlockAisleLegs) {
  // Every expected grid leg that is not explicitly severed by a
  // partition must be present: pillars sit off the aisles.
  int missing = 0;
  for (int r = 0; r < kHallRows; ++r)
    for (int c = 0; c + 1 < kHallColumns; ++c)
      if (!hall_.graph.adjacent(r * kHallColumns + c,
                                r * kHallColumns + c + 1))
        ++missing;
  EXPECT_EQ(missing, 0);  // All horizontal legs walkable.
}

TEST_F(OfficeHallTest, DeterministicConstruction) {
  const OfficeHall again = makeOfficeHall();
  EXPECT_EQ(again.plan.locationCount(), hall_.plan.locationCount());
  EXPECT_EQ(again.graph.edgeCount(), hall_.graph.edgeCount());
  for (std::size_t i = 0; i < hall_.apPositions.size(); ++i)
    EXPECT_EQ(again.apPositions[i], hall_.apPositions[i]);
}

}  // namespace
}  // namespace moloc::env
