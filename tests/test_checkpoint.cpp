#include "store/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "store/fault_injection.hpp"
#include "store/format.hpp"

namespace moloc::store {
namespace {

std::string freshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_ckpt_" + tag +
                          "_" + std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Bitwise equality of two intake states — the recovery contract is
/// "identical", not "close".
void expectIdenticalState(const core::OnlineMotionDatabase& a,
                          const core::OnlineMotionDatabase& b) {
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  EXPECT_EQ(sa.rngState, sb.rngState);
  ASSERT_EQ(sa.reservoirs.size(), sb.reservoirs.size());
  for (std::size_t p = 0; p < sa.reservoirs.size(); ++p) {
    EXPECT_EQ(sa.reservoirs[p].i, sb.reservoirs[p].i);
    EXPECT_EQ(sa.reservoirs[p].j, sb.reservoirs[p].j);
    EXPECT_EQ(sa.reservoirs[p].seen, sb.reservoirs[p].seen);
    ASSERT_EQ(sa.reservoirs[p].samples.size(),
              sb.reservoirs[p].samples.size());
    for (std::size_t k = 0; k < sa.reservoirs[p].samples.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sa.reservoirs[p].samples[k].directionDeg),
                std::bit_cast<std::uint64_t>(
                    sb.reservoirs[p].samples[k].directionDeg));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sa.reservoirs[p].samples[k].offsetMeters),
                std::bit_cast<std::uint64_t>(
                    sb.reservoirs[p].samples[k].offsetMeters));
    }
  }
  ASSERT_EQ(sa.entries.size(), sb.entries.size());
  for (std::size_t e = 0; e < sa.entries.size(); ++e) {
    EXPECT_EQ(sa.entries[e].i, sb.entries[e].i);
    EXPECT_EQ(sa.entries[e].j, sb.entries[e].j);
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(sa.entries[e].stats.muDirectionDeg),
        std::bit_cast<std::uint64_t>(sb.entries[e].stats.muDirectionDeg));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  sa.entries[e].stats.sigmaDirectionDeg),
              std::bit_cast<std::uint64_t>(
                  sb.entries[e].stats.sigmaDirectionDeg));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(sa.entries[e].stats.muOffsetMeters),
        std::bit_cast<std::uint64_t>(sb.entries[e].stats.muOffsetMeters));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  sa.entries[e].stats.sigmaOffsetMeters),
              std::bit_cast<std::uint64_t>(
                  sb.entries[e].stats.sigmaOffsetMeters));
    EXPECT_EQ(sa.entries[e].stats.sampleCount,
              sb.entries[e].stats.sampleCount);
  }
  EXPECT_EQ(sa.counters.accepted, sb.counters.accepted);
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
  }

  /// A database with busy reservoirs: small capacity so eviction (and
  /// thus the RNG stream) is exercised.  Built behind a unique_ptr —
  /// the intake mutex makes the database immovable.
  std::unique_ptr<core::OnlineMotionDatabase> populatedDb(
      std::uint64_t seed = 7) {
    auto db = std::make_unique<core::OnlineMotionDatabase>(
        plan_, core::BuilderConfig{}, /*reservoirCapacity=*/4, seed);
    for (int k = 0; k < 40; ++k) {
      db->addObservation(k % 2, 1 + k % 2, 88.0 + 0.2 * (k % 9),
                         3.7 + 0.02 * (k % 11));
    }
    return db;
  }

  env::FloorPlan plan_{12.0, 4.0};
};

TEST_F(CheckpointTest, SnapshotRestoreRoundTripsAndStaysInLockstep) {
  auto originalPtr = populatedDb();
  auto& original = *originalPtr;
  core::OnlineMotionDatabase restored(plan_, {}, 4, /*seed=*/999);
  restored.restore(original.snapshot());
  expectIdenticalState(original, restored);

  // The real contract: after restore, the two databases evolve in
  // lockstep — same acceptances, same evictions, same refits.
  for (int k = 0; k < 30; ++k) {
    const bool a = original.addObservation(0, 2, 89.5, 7.9 + 0.01 * k);
    const bool b = restored.addObservation(0, 2, 89.5, 7.9 + 0.01 * k);
    EXPECT_EQ(a, b);
  }
  expectIdenticalState(original, restored);
}

TEST_F(CheckpointTest, FileRoundTripIsExact) {
  const std::string dir = freshDir("roundtrip");
  auto dbPtr = populatedDb();
  auto& db = *dbPtr;

  CheckpointData data;
  data.throughSeq = 42;
  data.snapshot = db.snapshot();
  const std::string path = writeCheckpointFile(dir, data);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.throughSeq, 42u);
  EXPECT_EQ(loaded->skippedInvalid, 0u);
  EXPECT_FALSE(loaded->data.fingerprints.has_value());

  core::OnlineMotionDatabase restored(plan_);
  restored.restore(loaded->data.snapshot);
  expectIdenticalState(db, restored);
}

TEST_F(CheckpointTest, FingerprintsRoundTrip) {
  const std::string dir = freshDir("fps");
  radio::FingerprintDatabase fps;
  fps.addLocation(0, radio::Fingerprint({-40.0, -55.5, -71.25}));
  fps.addLocation(2, radio::Fingerprint({-42.0, -50.0, -60.0}));

  CheckpointData data;
  data.throughSeq = 1;
  data.snapshot = core::OnlineMotionDatabase(plan_).snapshot();
  data.fingerprints = fps;
  writeCheckpointFile(dir, data);

  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->data.fingerprints.has_value());
  const auto& back = *loaded->data.fingerprints;
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.apCount(), 3u);
  EXPECT_EQ(back.locationIds(), fps.locationIds());
  for (const auto id : fps.locationIds())
    for (std::size_t i = 0; i < fps.apCount(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.entry(id)[i]),
                std::bit_cast<std::uint64_t>(fps.entry(id)[i]));
}

TEST_F(CheckpointTest, EmptyDirectoryLoadsNothing) {
  EXPECT_FALSE(loadNewestCheckpoint(freshDir("none")).has_value());
}

TEST_F(CheckpointTest, CorruptNewestFallsBackToOlder) {
  const std::string dir = freshDir("fallback");
  auto dbPtr = populatedDb();
  auto& db = *dbPtr;

  CheckpointData older;
  older.throughSeq = 10;
  older.snapshot = db.snapshot();
  writeCheckpointFile(dir, older);

  db.addObservation(0, 1, 90.0, 4.0);
  CheckpointData newer;
  newer.throughSeq = 20;
  newer.snapshot = db.snapshot();
  const std::string newerPath = writeCheckpointFile(dir, newer);

  testing::FaultFile(newerPath).flipByte(100);

  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.throughSeq, 10u);
  EXPECT_EQ(loaded->skippedInvalid, 1u);
  // The corrupt file is evidence; loading must not delete it.
  EXPECT_TRUE(std::filesystem::exists(newerPath));
}

TEST_F(CheckpointTest, StrayTmpAndForeignFilesAreIgnored) {
  const std::string dir = freshDir("stray");
  CheckpointData data;
  data.throughSeq = 5;
  data.snapshot = core::OnlineMotionDatabase(plan_).snapshot();
  const std::string path = writeCheckpointFile(dir, data);

  // A crash mid-publish leaves a .tmp; operators leave notes.
  std::ofstream(path + ".tmp") << "torn half-written checkpoint";
  std::ofstream(dir + "/README") << "not a checkpoint";
  std::ofstream(dir + "/checkpoint-99999999999999999999.ckpt.bak") << "x";

  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.throughSeq, 5u);
  EXPECT_EQ(loaded->skippedInvalid, 0u);
}

TEST_F(CheckpointTest, NameContentSeqMismatchIsSkipped) {
  const std::string dir = freshDir("mismatch");
  CheckpointData data;
  data.throughSeq = 5;
  data.snapshot = core::OnlineMotionDatabase(plan_).snapshot();
  const std::string path = writeCheckpointFile(dir, data);
  // Forge a "newer" checkpoint by renaming: contents still say 5.
  std::filesystem::rename(
      path, dir + "/checkpoint-00000000000000000009.ckpt");
  EXPECT_FALSE(loadNewestCheckpoint(dir).has_value());
}

TEST_F(CheckpointTest, PruneKeepsNewest) {
  const std::string dir = freshDir("prune");
  CheckpointData data;
  data.snapshot = core::OnlineMotionDatabase(plan_).snapshot();
  for (std::uint64_t seq : {3u, 7u, 11u, 15u}) {
    data.throughSeq = seq;
    writeCheckpointFile(dir, data);
  }
  EXPECT_EQ(pruneCheckpoints(dir, 2), 2u);
  const auto loaded = loadNewestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.throughSeq, 15u);
  std::size_t remaining = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    remaining += entry.path().extension() == ".ckpt" ? 1 : 0;
  EXPECT_EQ(remaining, 2u);
  EXPECT_THROW(pruneCheckpoints(dir, 0), std::invalid_argument);
}

TEST_F(CheckpointTest, RestoreValidatesAgainstThisDatabase) {
  auto dbPtr = populatedDb();
  auto& db = *dbPtr;
  const auto good = db.snapshot();

  {  // Wrong floor plan size.
    auto bad = good;
    bad.locationCount = 99;
    core::OnlineMotionDatabase target(plan_);
    EXPECT_THROW(target.restore(bad), std::invalid_argument);
  }
  {  // Non-canonical pair key.
    auto bad = good;
    ASSERT_FALSE(bad.reservoirs.empty());
    std::swap(bad.reservoirs[0].i, bad.reservoirs[0].j);
    core::OnlineMotionDatabase target(plan_);
    EXPECT_THROW(target.restore(bad), std::invalid_argument);
  }
  {  // Reservoir above capacity.
    auto bad = good;
    bad.capacity = 1;
    core::OnlineMotionDatabase target(plan_);
    EXPECT_THROW(target.restore(bad), std::invalid_argument);
  }
  {  // Zero RNG state (xoshiro fixed point).
    auto bad = good;
    bad.rngState = {0, 0, 0, 0};
    core::OnlineMotionDatabase target(plan_);
    EXPECT_THROW(target.restore(bad), std::invalid_argument);
  }
  // A failed restore leaves the target untouched (strong guarantee).
  core::OnlineMotionDatabase target(plan_);
  auto bad = good;
  bad.locationCount = 99;
  try {
    target.restore(bad);
  } catch (const std::invalid_argument&) {
  }
  EXPECT_EQ(target.trackedPairs(), 0u);
  target.restore(good);  // And the good one still lands.
  expectIdenticalState(db, target);
}

}  // namespace
}  // namespace moloc::store
