#include <gtest/gtest.h>

#include "geometry/angles.hpp"
#include "sensors/compass_model.hpp"
#include "util/stats.hpp"

namespace moloc::sensors {
namespace {

TEST(SoftIron, SystematicErrorIsSinusoidal) {
  const CompassDistortion distortion{0.0, 10.0, 0.0};
  EXPECT_NEAR(CompassModel::systematicErrorDeg(0.0, distortion), 0.0,
              1e-9);
  EXPECT_NEAR(CompassModel::systematicErrorDeg(90.0, distortion), 10.0,
              1e-9);
  EXPECT_NEAR(CompassModel::systematicErrorDeg(270.0, distortion),
              -10.0, 1e-9);
}

TEST(SoftIron, ReversalBiasIsTwiceAmplitude) {
  // The paper's observation: reversing directions brings in bias
  // errors of 10-20 degrees.  With soft-iron amplitude A, the error at
  // a heading and at its reverse differ by 2A sin(theta + phase).
  const CompassDistortion distortion{0.0, 8.0, 0.5};
  for (double heading : {0.0, 45.0, 90.0, 200.0}) {
    const double forward =
        CompassModel::systematicErrorDeg(heading, distortion);
    const double backward = CompassModel::systematicErrorDeg(
        geometry::reverseHeadingDeg(heading), distortion);
    EXPECT_NEAR(forward, -backward, 1e-9);
    EXPECT_LE(std::abs(forward - backward), 16.0 + 1e-9);
  }
}

TEST(SoftIron, BiasAddsOnTop) {
  const CompassDistortion distortion{5.0, 10.0, 0.0};
  EXPECT_NEAR(CompassModel::systematicErrorDeg(90.0, distortion), 15.0,
              1e-9);
}

TEST(SoftIron, ReadingsCarryDistortion) {
  CompassParams params;
  params.noiseSigmaDeg = 0.0;
  const CompassModel compass(params);
  util::Rng rng(1);
  const CompassDistortion distortion{2.0, 6.0, 0.0};
  const auto readings = compass.readings(90.0, distortion, 5, rng);
  for (double r : readings) EXPECT_NEAR(r, 98.0, 1e-9);
}

TEST(Disturbance, ZeroProbabilityNeverDisturbs) {
  const CompassModel compass;  // disturbanceProbability = 0.
  util::Rng rng(2);
  std::vector<double> readings(100, 90.0);
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(compass.maybeDisturb(readings, rng));
  for (double r : readings) EXPECT_DOUBLE_EQ(r, 90.0);
}

TEST(Disturbance, AlwaysDisturbsAtProbabilityOne) {
  CompassParams params;
  params.disturbanceProbability = 1.0;
  params.disturbanceMagnitudeDeg = 30.0;
  params.disturbanceFractionOfLeg = 0.25;
  const CompassModel compass(params);
  util::Rng rng(3);
  std::vector<double> readings(100, 90.0);
  EXPECT_TRUE(compass.maybeDisturb(readings, rng));

  int disturbed = 0;
  for (double r : readings)
    if (std::abs(geometry::signedAngularDiffDeg(90.0, r)) > 1.0)
      ++disturbed;
  EXPECT_EQ(disturbed, 25);  // Exactly the window size.
}

TEST(Disturbance, WindowIsContiguous) {
  CompassParams params;
  params.disturbanceProbability = 1.0;
  params.disturbanceFractionOfLeg = 0.3;
  const CompassModel compass(params);
  util::Rng rng(4);
  std::vector<double> readings(100, 180.0);
  compass.maybeDisturb(readings, rng);

  // Find the disturbed region and assert no clean sample inside it.
  int first = -1;
  int last = -1;
  for (int i = 0; i < 100; ++i) {
    if (std::abs(geometry::signedAngularDiffDeg(180.0, readings[static_cast<std::size_t>(i)])) >
        1.0) {
      if (first < 0) first = i;
      last = i;
    }
  }
  ASSERT_GE(first, 0);
  EXPECT_EQ(last - first + 1, 30);
}

TEST(Disturbance, EmptyAndTinyInputsSafe) {
  CompassParams params;
  params.disturbanceProbability = 1.0;
  params.disturbanceFractionOfLeg = 0.3;
  const CompassModel compass(params);
  util::Rng rng(5);
  std::vector<double> empty;
  EXPECT_FALSE(compass.maybeDisturb(empty, rng));
  std::vector<double> two{90.0, 90.0};  // Window rounds to 0.
  EXPECT_FALSE(compass.maybeDisturb(two, rng));
}

/// Parameterized: across phases, the soft-iron error never exceeds the
/// amplitude in magnitude and averages to ~0 over all headings.
class SoftIronPhaseTest : public ::testing::TestWithParam<double> {};

TEST_P(SoftIronPhaseTest, BoundedAndZeroMean) {
  const CompassDistortion distortion{0.0, 7.0, GetParam()};
  double sum = 0.0;
  int n = 0;
  for (double heading = 0.0; heading < 360.0; heading += 5.0) {
    const double error =
        CompassModel::systematicErrorDeg(heading, distortion);
    EXPECT_LE(std::abs(error), 7.0 + 1e-9);
    sum += error;
    ++n;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoftIronPhaseTest,
                         ::testing::Values(0.0, 0.7, 1.6, 3.1, 4.5,
                                           5.9));

}  // namespace
}  // namespace moloc::sensors
