// Failure-injection tests: corrupted inputs, adversarial crowd data,
// and degenerate configurations must fail loudly at well-defined
// boundaries or degrade gracefully — never crash or silently corrupt.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/moloc_engine.hpp"
#include "core/motion_database_builder.hpp"
#include "core/online_motion_database.hpp"
#include "eval/experiment_world.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FailureInjection, FingerprintDbRejectsNonFiniteEntries) {
  radio::FingerprintDatabase db;
  EXPECT_THROW(db.addLocation(0, radio::Fingerprint({-40.0, kNan})),
               std::invalid_argument);
  EXPECT_THROW(db.addLocation(0, radio::Fingerprint({kInf, -40.0})),
               std::invalid_argument);
}

TEST(FailureInjection, FingerprintDbRejectsNonFiniteQueries) {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-40.0, -50.0}));
  EXPECT_THROW(db.nearest(radio::Fingerprint({kNan, -50.0})),
               std::invalid_argument);
  EXPECT_THROW(db.query(radio::Fingerprint({-40.0, kInf}), 1),
               std::invalid_argument);
}

TEST(FailureInjection, BuilderRejectsNonFiniteMeasurements) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({2.0, 5.0});
  plan.addReferenceLocation({8.0, 5.0});
  core::MotionDatabaseBuilder builder(plan);
  EXPECT_THROW(builder.addObservation(0, 1, kNan, 4.0),
               std::invalid_argument);
  EXPECT_THROW(builder.addObservation(0, 1, 90.0, kInf),
               std::invalid_argument);
  EXPECT_THROW(builder.addObservation(0, 1, 90.0, -1.0),
               std::invalid_argument);
}

TEST(FailureInjection, OnlineDbRejectsNonFiniteMeasurements) {
  env::FloorPlan plan(10.0, 10.0);
  plan.addReferenceLocation({2.0, 5.0});
  plan.addReferenceLocation({8.0, 5.0});
  core::OnlineMotionDatabase online(plan);
  EXPECT_THROW(online.addObservation(0, 1, kNan, 4.0),
               std::invalid_argument);
  EXPECT_THROW(online.addObservation(0, 1, 90.0, -0.5),
               std::invalid_argument);
}

TEST(FailureInjection, EngineSurvivesNonFiniteMotion) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  fingerprints.addLocation(1, radio::Fingerprint({-70.0, -40.0}));
  core::MotionDatabase motion(2);
  motion.setEntryWithMirror(0, 1, {90.0, 5.0, 4.0, 0.3, 9});

  core::MoLocEngine engine(fingerprints, motion);
  engine.localize(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  // Corrupt motion degrades to a fingerprint-only fix.
  const auto fix =
      engine.localize(radio::Fingerprint({-69.0, -41.0}),
                      sensors::MotionMeasurement{kNan, kInf});
  EXPECT_EQ(fix.location, 1);
  EXPECT_TRUE(std::isfinite(fix.probability));
}

TEST(FailureInjection, PoisonedCrowdDataIsFilteredOut) {
  // An adversary (or a chronically mislocated walker) floods the
  // builder with fabricated RLMs that do not match the map; the
  // sanitation must keep them all out of the database.
  env::FloorPlan plan(20.0, 10.0);
  plan.addReferenceLocation({2.0, 5.0});
  plan.addReferenceLocation({8.0, 5.0});
  plan.addReferenceLocation({14.0, 5.0});
  core::MotionDatabaseBuilder builder(plan);

  // Honest minority.
  for (int i = 0; i < 10; ++i) builder.addObservation(0, 1, 90.0, 6.0);
  // Poison majority: reversed directions, absurd offsets.
  for (int i = 0; i < 100; ++i) {
    builder.addObservation(0, 1, 270.0, 6.0);
    builder.addObservation(0, 1, 90.0, 18.0);
  }

  core::BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 200u);
  ASSERT_TRUE(db.hasEntry(0, 1));
  EXPECT_EQ(db.entry(0, 1)->sampleCount, 10);
  EXPECT_NEAR(db.entry(0, 1)->muDirectionDeg, 90.0, 1.0);
}

TEST(FailureInjection, InPlanePoisonShiftsButFineFilterResists) {
  // Poison *within* the coarse gate (subtle bias attack): the fine
  // 2-sigma pass limits — though it cannot eliminate — the damage.
  env::FloorPlan plan(20.0, 10.0);
  plan.addReferenceLocation({2.0, 5.0});
  plan.addReferenceLocation({8.0, 5.0});
  core::MotionDatabaseBuilder builder(plan);
  for (int i = 0; i < 50; ++i)
    builder.addObservation(0, 1, 90.0 + (i % 5 - 2) * 0.5, 6.0);
  for (int i = 0; i < 5; ++i)
    builder.addObservation(0, 1, 108.0, 6.0);  // 18 deg: inside gate.

  core::BuilderReport report;
  const auto db = builder.build(report);
  ASSERT_TRUE(db.hasEntry(0, 1));
  // The fine filter rejected the biased cluster.
  EXPECT_EQ(report.rejectedFine, 5u);
  EXPECT_NEAR(db.entry(0, 1)->muDirectionDeg, 90.0, 1.5);
}

TEST(FailureInjection, MotionMatcherHandlesDegenerateStats) {
  core::MotionDatabase db(2);
  // Zero sigmas (should never be produced by the builder, but the
  // matcher must not divide by zero if constructed by hand).
  db.setEntryWithMirror(0, 1, {90.0, 0.0, 4.0, 0.0, 1});
  const core::MotionMatcher matcher(db);
  const double exact = matcher.pairProbability(0, 1, {90.0, 4.0});
  const double off = matcher.pairProbability(0, 1, {140.0, 9.0});
  EXPECT_TRUE(std::isfinite(exact));
  EXPECT_GT(exact, 0.5);
  EXPECT_TRUE(std::isfinite(off));
}

TEST(FailureInjection, EmptyMotionDatabaseDegradesToFingerprinting) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  fingerprints.addLocation(1, radio::Fingerprint({-70.0, -40.0}));
  const core::MotionDatabase emptyMotion(2);

  core::MoLocEngine engine(fingerprints, emptyMotion);
  engine.localize(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  const auto fix =
      engine.localize(radio::Fingerprint({-69.0, -41.0}),
                      sensors::MotionMeasurement{90.0, 4.0});
  // All pair probabilities floor out equally; fingerprints decide.
  EXPECT_EQ(fix.location, 1);
}

TEST(FailureInjection, SingleLocationWorldIsTrivial) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0}));
  const core::MotionDatabase motion(1);
  core::MoLocEngine engine(fingerprints, motion);
  for (int step = 0; step < 3; ++step) {
    const auto fix =
        engine.localize(radio::Fingerprint({-45.0}),
                        step == 0 ? std::nullopt
                                  : std::optional<sensors::MotionMeasurement>(
                                        {{90.0, 4.0}}));
    EXPECT_EQ(fix.location, 0);
    EXPECT_NEAR(fix.probability, 1.0, 1e-12);
  }
}

TEST(FailureInjection, WorldWithMinimalTrainingStillServes) {
  // Almost no crowdsourcing: the motion DB is sparse, but localization
  // must still answer every query (degrading toward fingerprinting).
  eval::WorldConfig config;
  config.trainingTraces = 2;
  config.legsPerTrainingTrace = 3;
  eval::ExperimentWorld world(config);
  const auto outcomes = eval::runComparison(world, 5, 6);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.moloc.size(), 7u);
    for (const auto& record : outcome.moloc) {
      EXPECT_GE(record.estimated, 0);
      EXPECT_LT(record.estimated, 28);
    }
  }
}

}  // namespace
}  // namespace moloc
