#include "radio/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "env/floor_plan.hpp"

namespace moloc::radio {
namespace {

PropagationParams quietParams() {
  PropagationParams p;
  p.shadowingSigmaDb = 0.0;
  p.temporalSigmaDb = 0.0;
  p.bodyAttenuationDb = 0.0;
  p.driftSigmaDb = 0.0;
  return p;
}

class PropagationTest : public ::testing::Test {
 protected:
  env::FloorPlan plan_{40.0, 16.0};
  AccessPoint ap_{0, {1.0, 8.0}, -35.0};
};

TEST_F(PropagationTest, RssDecaysWithDistance) {
  const LogDistanceModel model(quietParams(), plan_);
  const double near = model.meanRssDbm(ap_, {3.0, 8.0}, 0.0);
  const double mid = model.meanRssDbm(ap_, {11.0, 8.0}, 0.0);
  const double far = model.meanRssDbm(ap_, {31.0, 8.0}, 0.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST_F(PropagationTest, FollowsLogDistanceLaw) {
  auto params = quietParams();
  params.pathLossExponent = 2.0;
  const LogDistanceModel model(params, plan_);
  // Doubling the distance at n=2 costs 10*2*log10(2) ~ 6.02 dB.
  const double at5 = model.meanRssDbm(ap_, {6.0, 8.0}, 0.0);
  const double at10 = model.meanRssDbm(ap_, {11.0, 8.0}, 0.0);
  EXPECT_NEAR(at5 - at10, 20.0 * std::log10(2.0), 1e-9);
}

TEST_F(PropagationTest, ReferencePowerAtOneMeter) {
  const LogDistanceModel model(quietParams(), plan_);
  EXPECT_NEAR(model.meanRssDbm(ap_, {2.0, 8.0}, 0.0), ap_.txPowerDbm,
              1e-9);
}

TEST_F(PropagationTest, NearFieldClampedAtHalfMeter) {
  const LogDistanceModel model(quietParams(), plan_);
  // Closer than 0.5 m evaluates at 0.5 m -- no singularity at d = 0.
  const double atAp = model.meanRssDbm(ap_, ap_.pos, 0.0);
  const double atHalf = model.meanRssDbm(ap_, {1.5, 8.0}, 0.0);
  const double atOne = model.meanRssDbm(ap_, {2.0, 8.0}, 0.0);
  EXPECT_DOUBLE_EQ(atAp, atHalf);  // Both clamp to the 0.5 m floor.
  EXPECT_GT(atHalf, atOne);
  EXPECT_TRUE(std::isfinite(atAp));
}

TEST_F(PropagationTest, EachWallCrossingAttenuates) {
  auto params = quietParams();
  params.wallAttenuationDb = 5.0;
  env::FloorPlan walled(40.0, 16.0);
  walled.addWall({{5.0, 0.0}, {5.0, 16.0}});
  const LogDistanceModel model(params, walled);

  env::FloorPlan open(40.0, 16.0);
  const LogDistanceModel openModel(params, open);

  const geometry::Vec2 probe{9.0, 8.0};
  EXPECT_NEAR(openModel.meanRssDbm(ap_, probe, 0.0) -
                  model.meanRssDbm(ap_, probe, 0.0),
              5.0, 1e-9);
}

TEST_F(PropagationTest, BodyBlockingWorstWhenApBehind) {
  auto params = quietParams();
  params.bodyAttenuationDb = 6.0;
  const LogDistanceModel model(params, plan_);
  const geometry::Vec2 probe{11.0, 8.0};  // AP due west of the probe.
  const double facingAp = model.meanRssDbm(ap_, probe, 270.0);
  const double facingAway = model.meanRssDbm(ap_, probe, 90.0);
  EXPECT_NEAR(facingAp - facingAway, 6.0, 1e-9);
}

TEST_F(PropagationTest, ShadowingIsDeterministicPerPosition) {
  auto params = quietParams();
  params.shadowingSigmaDb = 3.0;
  const LogDistanceModel model(params, plan_);
  const geometry::Vec2 probe{10.0, 5.0};
  EXPECT_EQ(model.shadowingDb(0, probe), model.shadowingDb(0, probe));
  EXPECT_EQ(model.meanRssDbm(ap_, probe, 0.0),
            model.meanRssDbm(ap_, probe, 0.0));
}

TEST_F(PropagationTest, ShadowingVariesAcrossSpaceAndAps) {
  auto params = quietParams();
  params.shadowingSigmaDb = 3.0;
  const LogDistanceModel model(params, plan_);
  EXPECT_NE(model.shadowingDb(0, {5.0, 5.0}),
            model.shadowingDb(0, {25.0, 11.0}));
  EXPECT_NE(model.shadowingDb(0, {5.0, 5.0}),
            model.shadowingDb(1, {5.0, 5.0}));
}

TEST_F(PropagationTest, ShadowingIsSpatiallySmooth) {
  auto params = quietParams();
  params.shadowingSigmaDb = 3.0;
  params.shadowingCellMeters = 3.0;
  const LogDistanceModel model(params, plan_);
  // Within a fraction of a cell the field barely moves.
  const double a = model.shadowingDb(0, {10.0, 5.0});
  const double b = model.shadowingDb(0, {10.1, 5.0});
  EXPECT_LT(std::abs(a - b), 1.0);
}

TEST_F(PropagationTest, ShadowingScalesWithSigma) {
  auto p1 = quietParams();
  p1.shadowingSigmaDb = 1.0;
  auto p2 = quietParams();
  p2.shadowingSigmaDb = 2.0;
  const LogDistanceModel m1(p1, plan_);
  const LogDistanceModel m2(p2, plan_);
  const geometry::Vec2 probe{13.0, 7.0};
  EXPECT_NEAR(m2.shadowingDb(0, probe), 2.0 * m1.shadowingDb(0, probe),
              1e-9);
}

TEST_F(PropagationTest, DifferentSeedsDifferentFields) {
  auto p1 = quietParams();
  p1.shadowingSigmaDb = 3.0;
  auto p2 = p1;
  p2.shadowingSeed = 0xabcdef;
  const LogDistanceModel m1(p1, plan_);
  const LogDistanceModel m2(p2, plan_);
  EXPECT_NE(m1.shadowingDb(0, {9.0, 9.0}), m2.shadowingDb(0, {9.0, 9.0}));
}

TEST_F(PropagationTest, DriftOnlyAffectsServingEpoch) {
  auto params = quietParams();
  params.driftSigmaDb = 3.0;
  const LogDistanceModel model(params, plan_);
  const geometry::Vec2 probe{17.0, 4.0};
  const double surveyRss =
      model.meanRssDbm(ap_, probe, 0.0, Epoch::kSurvey);
  const double servingRss =
      model.meanRssDbm(ap_, probe, 0.0, Epoch::kServing);
  EXPECT_NE(surveyRss, servingRss);
  EXPECT_NEAR(servingRss - surveyRss, model.driftDb(0, probe), 1e-9);
}

TEST_F(PropagationTest, ZeroDriftMakesEpochsIdentical) {
  const LogDistanceModel model(quietParams(), plan_);
  const geometry::Vec2 probe{17.0, 4.0};
  EXPECT_EQ(model.meanRssDbm(ap_, probe, 0.0, Epoch::kSurvey),
            model.meanRssDbm(ap_, probe, 0.0, Epoch::kServing));
}

TEST_F(PropagationTest, DetectionFloorClamps) {
  auto params = quietParams();
  params.detectionFloorDbm = -60.0;
  params.pathLossExponent = 5.0;
  const LogDistanceModel model(params, plan_);
  EXPECT_EQ(model.meanRssDbm(ap_, {39.0, 15.0}, 0.0), -60.0);
}

TEST_F(PropagationTest, TemporalNoiseAveragesToMean) {
  auto params = quietParams();
  params.temporalSigmaDb = 4.0;
  const LogDistanceModel model(params, plan_);
  util::Rng rng(5);
  const geometry::Vec2 probe{15.0, 8.0};
  const double mean = model.meanRssDbm(ap_, probe, 0.0);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    sum += model.sampleRssDbm(ap_, probe, 0.0, rng);
  EXPECT_NEAR(sum / n, mean, 0.25);
}

TEST_F(PropagationTest, SampleNeverBelowFloor) {
  auto params = quietParams();
  params.temporalSigmaDb = 30.0;
  params.detectionFloorDbm = -100.0;
  const LogDistanceModel model(params, plan_);
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i)
    EXPECT_GE(model.sampleRssDbm(ap_, {39.0, 15.0}, 0.0, rng), -100.0);
}

/// Shadowing field statistics: roughly zero-mean, roughly unit-sigma
/// (scaled), over many independent positions.
TEST_F(PropagationTest, ShadowingFieldStatistics) {
  auto params = quietParams();
  params.shadowingSigmaDb = 2.0;
  const LogDistanceModel model(params, plan_);
  double sum = 0.0;
  double sumSq = 0.0;
  int n = 0;
  for (double x = 1.0; x < 40.0; x += 1.7) {
    for (double y = 1.0; y < 16.0; y += 1.3) {
      const double s = model.shadowingDb(0, {x, y});
      sum += s;
      sumSq += s * s;
      ++n;
    }
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.5);
  // Bilinear interpolation shrinks pointwise variance below the lattice
  // sigma; accept a broad band.
  EXPECT_GT(std::sqrt(var), 0.8);
  EXPECT_LT(std::sqrt(var), 2.5);
}

}  // namespace
}  // namespace moloc::radio
