#include "core/online_motion_database.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "geometry/angles.hpp"
#include "obs/metrics.hpp"

namespace moloc::core {
namespace {

/// The 3-location corridor used by the batch-builder tests: map RLM
/// 0 -> 1 is (90 deg, 4 m).
class OnlineDbTest : public ::testing::Test {
 protected:
  OnlineDbTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
  }

  env::FloorPlan plan_{12.0, 4.0};
};

TEST_F(OnlineDbTest, RejectsUndersizedReservoir) {
  BuilderConfig config;
  config.minSamplesPerPair = 5;
  EXPECT_THROW(OnlineMotionDatabase(plan_, config, 4),
               std::invalid_argument);
}

TEST_F(OnlineDbTest, EntryAppearsAfterMinSamples) {
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config);
  EXPECT_TRUE(online.addObservation(0, 1, 90.0, 4.0));
  EXPECT_TRUE(online.addObservation(0, 1, 91.0, 4.1));
  EXPECT_FALSE(online.database().hasEntry(0, 1));  // Below minimum.
  EXPECT_TRUE(online.addObservation(0, 1, 89.0, 3.9));
  ASSERT_TRUE(online.database().hasEntry(0, 1));
  EXPECT_NEAR(online.database().entry(0, 1)->muDirectionDeg, 90.0, 1.0);
  // Mirror written through.
  ASSERT_TRUE(online.database().hasEntry(1, 0));
  EXPECT_NEAR(online.database().entry(1, 0)->muDirectionDeg, 270.0, 1.0);
}

TEST_F(OnlineDbTest, CoarseFilterRejectsAtIntake) {
  OnlineMotionDatabase online(plan_);
  EXPECT_FALSE(online.addObservation(0, 1, 180.0, 4.0));  // 90 deg off.
  EXPECT_FALSE(online.addObservation(0, 1, 90.0, 9.0));   // 5 m off.
  EXPECT_EQ(online.counters().rejectedCoarse, 2u);
  EXPECT_EQ(online.counters().accepted, 0u);
  EXPECT_EQ(online.trackedPairs(), 0u);
}

TEST_F(OnlineDbTest, SelfPairsDropped) {
  OnlineMotionDatabase online(plan_);
  EXPECT_FALSE(online.addObservation(1, 1, 0.0, 0.0));
  EXPECT_EQ(online.counters().droppedSelfPairs, 1u);
}

TEST_F(OnlineDbTest, ReassemblesOntoSmallerId) {
  OnlineMotionDatabase online(plan_);
  for (int i = 0; i < 4; ++i) online.addObservation(1, 0, 270.0, 4.0);
  ASSERT_TRUE(online.database().hasEntry(0, 1));
  EXPECT_NEAR(online.database().entry(0, 1)->muDirectionDeg, 90.0,
              1e-9);
}

TEST_F(OnlineDbTest, TracksDistributionShift) {
  // After many samples around one offset, feed a shifted distribution:
  // with reservoir sampling the entry migrates toward the new regime.
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 16);
  for (int i = 0; i < 16; ++i)
    online.addObservation(0, 1, 90.0, 3.4 + 0.01 * (i % 3));
  const double before =
      online.database().entry(0, 1)->muOffsetMeters;
  for (int i = 0; i < 600; ++i)
    online.addObservation(0, 1, 90.0, 4.6 + 0.01 * (i % 3));
  const double after = online.database().entry(0, 1)->muOffsetMeters;
  EXPECT_LT(before, 3.6);
  EXPECT_GT(after, 4.3);
}

TEST_F(OnlineDbTest, ReservoirBoundsMemory) {
  BuilderConfig config;
  OnlineMotionDatabase online(plan_, config, 8);
  for (int i = 0; i < 1000; ++i)
    online.addObservation(0, 1, 90.0, 4.0);
  // The entry's sample count reflects the reservoir, not the stream.
  EXPECT_LE(online.database().entry(0, 1)->sampleCount, 8);
  EXPECT_EQ(online.counters().accepted, 1000u);
}

TEST_F(OnlineDbTest, FineFilterStillApplies) {
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 64);
  for (int i = 0; i < 30; ++i)
    online.addObservation(0, 1, 90.0, 4.0 + 0.02 * (i % 5 - 2));
  online.addObservation(0, 1, 90.0, 5.5);  // Coarse-pass, fine-fail.
  const auto entry = online.database().entry(0, 1);
  ASSERT_TRUE(entry.has_value());
  // The outlier was excluded from the fit.
  EXPECT_NEAR(entry->muOffsetMeters, 4.0, 0.1);
}

TEST_F(OnlineDbTest, MatchesBatchBuilderOnCleanStream) {
  // On a stream smaller than the reservoir, online == batch.
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 64);
  MotionDatabaseBuilder batch(plan_, config);
  for (int i = 0; i < 20; ++i) {
    const double d = 90.0 + (i % 5 - 2);
    const double o = 4.0 + 0.05 * (i % 3 - 1);
    online.addObservation(0, 1, d, o);
    batch.addObservation(0, 1, d, o);
  }
  const auto onlineEntry = online.database().entry(0, 1);
  const auto batchEntry = batch.build().entry(0, 1);
  ASSERT_TRUE(onlineEntry && batchEntry);
  EXPECT_NEAR(onlineEntry->muDirectionDeg, batchEntry->muDirectionDeg,
              1e-9);
  EXPECT_NEAR(onlineEntry->muOffsetMeters, batchEntry->muOffsetMeters,
              1e-9);
  EXPECT_NEAR(onlineEntry->sigmaOffsetMeters,
              batchEntry->sigmaOffsetMeters, 1e-9);
}

TEST_F(OnlineDbTest, ThrowsOnUnknownLocations) {
  OnlineMotionDatabase online(plan_);
  EXPECT_THROW(online.addObservation(0, 9, 90.0, 4.0),
               std::out_of_range);
}

TEST_F(OnlineDbTest, MeasurementValidatedBeforeLocationLookup) {
  // Regression: a corrupt measurement must report invalid_argument
  // even when the location ids are bad too — the old code resolved
  // the ids first and masked the poisoned measurement as out_of_range.
  OnlineMotionDatabase online(plan_);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(online.addObservation(0, 9, nan, 4.0),
               std::invalid_argument);
  EXPECT_THROW(online.addObservation(7, 9, 90.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(
      online.addObservation(0, 9, 90.0,
                            std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  // Nothing was counted as offered intake.
  EXPECT_EQ(online.counters().observations, 0u);
}

TEST_F(OnlineDbTest, StaleEntryInvalidatedWhenFineFilterDropsPair) {
  // Regression for the stale-publication bug: once a pair is
  // published, a later refit whose fine filter leaves fewer than
  // minSamplesPerPair survivors must withdraw the entry (plus mirror)
  // instead of silently serving the outdated Gaussian.
  //
  // Construction: capacity 6 holds the whole stream (no eviction, so
  // the arithmetic below is exact).  Three samples at offset 4.0
  // publish the pair.  Three more at 6.9 (coarse-legal: |6.9-4| <= 3)
  // then make the reservoir perfectly bimodal: mean 5.45, sample
  // stddev 1.588, fine limit 0.9 * 1.588 = 1.43 < |4.0 - 5.45| — the
  // filter drops *every* sample and the pair loses support.
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  config.fineSigmaMultiplier = 0.9;
  OnlineMotionDatabase online(plan_, config, 6);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(online.addObservation(0, 1, 90.0, 4.0));
  ASSERT_TRUE(online.database().hasEntry(0, 1));
  ASSERT_TRUE(online.database().hasEntry(1, 0));

  online.addObservation(0, 1, 90.0, 6.9);
  online.addObservation(0, 1, 90.0, 6.9);
  EXPECT_TRUE(online.database().hasEntry(0, 1));  // Still supported.
  online.addObservation(0, 1, 90.0, 6.9);

  EXPECT_FALSE(online.database().hasEntry(0, 1));
  EXPECT_FALSE(online.database().hasEntry(1, 0));  // Mirror withdrawn.
  EXPECT_EQ(online.counters().staleInvalidations, 1u);
  EXPECT_GT(online.counters().rejectedFine, 0u);
  // The reservoir itself keeps its samples; a later consistent stream
  // can re-publish the pair.
  EXPECT_EQ(online.reservoirSamples(0, 1).size(), 6u);
}

TEST_F(OnlineDbTest, ReservoirSamplesAccessor) {
  BuilderConfig config;
  OnlineMotionDatabase online(plan_, config, 8);
  EXPECT_TRUE(online.reservoirSamples(0, 1).empty());  // Untracked.
  online.addObservation(0, 1, 90.0, 4.0);
  online.addObservation(1, 0, 270.0, 4.1);  // Reassembled onto (0, 1).
  const auto forward = online.reservoirSamples(0, 1);
  const auto backward = online.reservoirSamples(1, 0);
  ASSERT_EQ(forward.size(), 2u);
  ASSERT_EQ(backward.size(), 2u);  // Same canonical pair.
  EXPECT_DOUBLE_EQ(forward[0].directionDeg, 90.0);
  EXPECT_DOUBLE_EQ(forward[1].directionDeg, 90.0);  // Mirrored in.
  EXPECT_DOUBLE_EQ(forward[1].offsetMeters, 4.1);
  EXPECT_THROW(online.reservoirSamples(0, 9), std::out_of_range);
}

TEST_F(OnlineDbTest, ReservoirRetentionIsUniform) {
  // Statistical regression for the int-truncated slot draw: run many
  // independent streams of n items through a capacity-C reservoir and
  // count, per stream position, how often that item survives.  Under
  // correct Algorithm R every position survives with probability C/n,
  // so the 48 per-position counts follow a multinomial whose
  // chi-squared statistic (df = 47) stays below 110 except with
  // probability ~1e-6.  Fixed seeds make the test deterministic.
  constexpr int kStreamLength = 48;
  constexpr std::size_t kCapacity = 8;
  constexpr int kTrials = 600;
  BuilderConfig config;
  config.enableFineFilter = false;  // Keep every coarse-legal sample.
  std::vector<int> survivals(kStreamLength, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    OnlineMotionDatabase online(plan_, config, kCapacity,
                                static_cast<std::uint64_t>(trial) + 1);
    // Encode the stream position in the offset (all coarse-legal:
    // within 1 m of the 4 m map offset).
    for (int k = 0; k < kStreamLength; ++k)
      ASSERT_TRUE(online.addObservation(0, 1, 90.0, 3.0 + 0.02 * k));
    for (const auto& sample : online.reservoirSamples(0, 1)) {
      const int k =
          static_cast<int>(std::lround((sample.offsetMeters - 3.0) / 0.02));
      ASSERT_GE(k, 0);
      ASSERT_LT(k, kStreamLength);
      ++survivals[k];
    }
  }
  const double expected =
      static_cast<double>(kTrials) * kCapacity / kStreamLength;
  double chiSquared = 0.0;
  for (const int observed : survivals) {
    const double diff = observed - expected;
    chiSquared += diff * diff / expected;
  }
  EXPECT_LT(chiSquared, 110.0)
      << "reservoir retention deviates from uniform";
  // Sanity: late positions must survive at all (the truncation bug
  // family tends to bias or break the tail of long streams).
  EXPECT_GT(survivals[kStreamLength - 1], 0);
}

#if MOLOC_METRICS_ENABLED
TEST_F(OnlineDbTest, IntakeCountersMirroredToRegistry) {
  obs::MetricsRegistry registry;
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  config.fineSigmaMultiplier = 0.9;
  OnlineMotionDatabase online(plan_, config, 6, 0x0b5e55edULL,
                              &registry);
  online.addObservation(1, 1, 0.0, 0.0);       // Self-pair.
  online.addObservation(0, 1, 180.0, 4.0);     // Coarse reject.
  for (int i = 0; i < 3; ++i) online.addObservation(0, 1, 90.0, 4.0);
  for (int i = 0; i < 3; ++i) online.addObservation(0, 1, 90.0, 6.9);

  const obs::Labels online_{{"source", "online"}};
  const auto counterValue = [&](const char* name, obs::Labels labels) {
    obs::Counter* c = registry.findCounter(name, labels);
    return c ? c->value() : -1.0;
  };
  EXPECT_DOUBLE_EQ(
      counterValue("moloc_intake_observations_total", online_),
      static_cast<double>(online.counters().observations));
  EXPECT_DOUBLE_EQ(counterValue("moloc_intake_accepted_total", online_),
                   static_cast<double>(online.counters().accepted));
  EXPECT_DOUBLE_EQ(
      counterValue("moloc_intake_rejected_total",
                   {{"source", "online"}, {"filter", "coarse"}}),
      static_cast<double>(online.counters().rejectedCoarse));
  EXPECT_DOUBLE_EQ(
      counterValue("moloc_intake_rejected_total",
                   {{"source", "online"}, {"filter", "fine"}}),
      static_cast<double>(online.counters().rejectedFine));
  EXPECT_DOUBLE_EQ(
      counterValue("moloc_intake_self_pairs_total", online_),
      static_cast<double>(online.counters().droppedSelfPairs));
  EXPECT_DOUBLE_EQ(
      counterValue("moloc_intake_stale_invalidated_total", online_),
      1.0);
}
#endif

TEST_F(OnlineDbTest, ReservoirStatsAggregateOccupancy) {
  OnlineMotionDatabase online(plan_, {}, /*reservoirCapacity=*/3);
  const auto empty = online.reservoirStats();
  EXPECT_EQ(empty.trackedPairs, 0u);
  EXPECT_EQ(empty.totalSamples, 0u);
  EXPECT_EQ(empty.totalSeen, 0u);
  EXPECT_EQ(empty.capacity, 3u);

  // Pair (0,1): 5 accepted -> full reservoir, 5 seen.
  for (int k = 0; k < 5; ++k) online.addObservation(0, 1, 90.0, 4.0);
  // Pair (1,2): 2 accepted -> below capacity.
  online.addObservation(1, 2, 90.0, 4.0);
  online.addObservation(1, 2, 91.0, 4.1);
  // Rejections must not show up anywhere.
  online.addObservation(0, 1, 180.0, 4.0);

  const auto stats = online.reservoirStats();
  EXPECT_EQ(stats.trackedPairs, 2u);
  EXPECT_EQ(stats.pairsAtCapacity, 1u);
  EXPECT_EQ(stats.totalSamples, 5u);  // 3 retained + 2 retained.
  EXPECT_EQ(stats.totalSeen, 7u);     // Accepted ever, incl. evicted.
  EXPECT_EQ(stats.capacity, 3u);
}

/// Records every onAccepted call; optionally throws to exercise the
/// write-ahead abort path.
class RecordingSink : public ObservationSink {
 public:
  struct Call {
    env::LocationId start, end;
    double directionDeg, offsetMeters;
  };
  std::vector<Call> calls;
  bool throwNext = false;

  void onAccepted(env::LocationId estimatedStart,
                  env::LocationId estimatedEnd, double directionDeg,
                  double offsetMeters) override {
    if (throwNext) throw std::runtime_error("sink full");
    calls.push_back(
        {estimatedStart, estimatedEnd, directionDeg, offsetMeters});
  }
};

TEST_F(OnlineDbTest, SinkReceivesOriginalArgsOnAcceptOnly) {
  OnlineMotionDatabase online(plan_);
  RecordingSink sink;
  online.setSink(&sink);
  EXPECT_EQ(online.sink(), &sink);

  // Accepted, in reversed (1, 0) orientation: the sink must see the
  // ORIGINAL arguments, not the canonical reassembly.
  EXPECT_TRUE(online.addObservation(1, 0, 270.0, 4.0));
  // Coarse-rejected and self-pair: never logged.
  EXPECT_FALSE(online.addObservation(0, 1, 180.0, 4.0));
  EXPECT_FALSE(online.addObservation(1, 1, 90.0, 0.0));

  ASSERT_EQ(sink.calls.size(), 1u);
  EXPECT_EQ(sink.calls[0].start, 1);
  EXPECT_EQ(sink.calls[0].end, 0);
  EXPECT_EQ(sink.calls[0].directionDeg, 270.0);
  EXPECT_EQ(sink.calls[0].offsetMeters, 4.0);

  online.setSink(nullptr);
  EXPECT_TRUE(online.addObservation(0, 1, 90.0, 4.0));
  EXPECT_EQ(sink.calls.size(), 1u);  // Detached: no further calls.
}

TEST_F(OnlineDbTest, SinkFailureAbortsTheUpdate) {
  OnlineMotionDatabase online(plan_);
  RecordingSink sink;
  online.setSink(&sink);
  online.addObservation(0, 1, 90.0, 4.0);
  const auto before = online.snapshot();

  // Write-ahead discipline: an observation that could not be logged is
  // never applied — reservoirs, counters, and RNG all stay put.
  sink.throwNext = true;
  EXPECT_THROW(online.addObservation(0, 1, 91.0, 4.1),
               std::runtime_error);
  const auto after = online.snapshot();
  EXPECT_EQ(after.counters.accepted, before.counters.accepted);
  EXPECT_EQ(after.rngState, before.rngState);
  ASSERT_EQ(after.reservoirs.size(), 1u);
  EXPECT_EQ(after.reservoirs[0].seen, before.reservoirs[0].seen);
  EXPECT_EQ(after.reservoirs[0].samples.size(),
            before.reservoirs[0].samples.size());

  // The failed call is still counted as presented.
  EXPECT_EQ(after.counters.observations,
            before.counters.observations + 1);

  sink.throwNext = false;
  EXPECT_TRUE(online.addObservation(0, 1, 91.0, 4.1));
  EXPECT_EQ(online.counters().accepted, 2u);
}

}  // namespace
}  // namespace moloc::core
