#include "core/online_motion_database.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geometry/angles.hpp"

namespace moloc::core {
namespace {

/// The 3-location corridor used by the batch-builder tests: map RLM
/// 0 -> 1 is (90 deg, 4 m).
class OnlineDbTest : public ::testing::Test {
 protected:
  OnlineDbTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
  }

  env::FloorPlan plan_{12.0, 4.0};
};

TEST_F(OnlineDbTest, RejectsUndersizedReservoir) {
  BuilderConfig config;
  config.minSamplesPerPair = 5;
  EXPECT_THROW(OnlineMotionDatabase(plan_, config, 4),
               std::invalid_argument);
}

TEST_F(OnlineDbTest, EntryAppearsAfterMinSamples) {
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config);
  EXPECT_TRUE(online.addObservation(0, 1, 90.0, 4.0));
  EXPECT_TRUE(online.addObservation(0, 1, 91.0, 4.1));
  EXPECT_FALSE(online.database().hasEntry(0, 1));  // Below minimum.
  EXPECT_TRUE(online.addObservation(0, 1, 89.0, 3.9));
  ASSERT_TRUE(online.database().hasEntry(0, 1));
  EXPECT_NEAR(online.database().entry(0, 1)->muDirectionDeg, 90.0, 1.0);
  // Mirror written through.
  ASSERT_TRUE(online.database().hasEntry(1, 0));
  EXPECT_NEAR(online.database().entry(1, 0)->muDirectionDeg, 270.0, 1.0);
}

TEST_F(OnlineDbTest, CoarseFilterRejectsAtIntake) {
  OnlineMotionDatabase online(plan_);
  EXPECT_FALSE(online.addObservation(0, 1, 180.0, 4.0));  // 90 deg off.
  EXPECT_FALSE(online.addObservation(0, 1, 90.0, 9.0));   // 5 m off.
  EXPECT_EQ(online.counters().rejectedCoarse, 2u);
  EXPECT_EQ(online.counters().accepted, 0u);
  EXPECT_EQ(online.trackedPairs(), 0u);
}

TEST_F(OnlineDbTest, SelfPairsDropped) {
  OnlineMotionDatabase online(plan_);
  EXPECT_FALSE(online.addObservation(1, 1, 0.0, 0.0));
  EXPECT_EQ(online.counters().droppedSelfPairs, 1u);
}

TEST_F(OnlineDbTest, ReassemblesOntoSmallerId) {
  OnlineMotionDatabase online(plan_);
  for (int i = 0; i < 4; ++i) online.addObservation(1, 0, 270.0, 4.0);
  ASSERT_TRUE(online.database().hasEntry(0, 1));
  EXPECT_NEAR(online.database().entry(0, 1)->muDirectionDeg, 90.0,
              1e-9);
}

TEST_F(OnlineDbTest, TracksDistributionShift) {
  // After many samples around one offset, feed a shifted distribution:
  // with reservoir sampling the entry migrates toward the new regime.
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 16);
  for (int i = 0; i < 16; ++i)
    online.addObservation(0, 1, 90.0, 3.4 + 0.01 * (i % 3));
  const double before =
      online.database().entry(0, 1)->muOffsetMeters;
  for (int i = 0; i < 600; ++i)
    online.addObservation(0, 1, 90.0, 4.6 + 0.01 * (i % 3));
  const double after = online.database().entry(0, 1)->muOffsetMeters;
  EXPECT_LT(before, 3.6);
  EXPECT_GT(after, 4.3);
}

TEST_F(OnlineDbTest, ReservoirBoundsMemory) {
  BuilderConfig config;
  OnlineMotionDatabase online(plan_, config, 8);
  for (int i = 0; i < 1000; ++i)
    online.addObservation(0, 1, 90.0, 4.0);
  // The entry's sample count reflects the reservoir, not the stream.
  EXPECT_LE(online.database().entry(0, 1)->sampleCount, 8);
  EXPECT_EQ(online.counters().accepted, 1000u);
}

TEST_F(OnlineDbTest, FineFilterStillApplies) {
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 64);
  for (int i = 0; i < 30; ++i)
    online.addObservation(0, 1, 90.0, 4.0 + 0.02 * (i % 5 - 2));
  online.addObservation(0, 1, 90.0, 5.5);  // Coarse-pass, fine-fail.
  const auto entry = online.database().entry(0, 1);
  ASSERT_TRUE(entry.has_value());
  // The outlier was excluded from the fit.
  EXPECT_NEAR(entry->muOffsetMeters, 4.0, 0.1);
}

TEST_F(OnlineDbTest, MatchesBatchBuilderOnCleanStream) {
  // On a stream smaller than the reservoir, online == batch.
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  OnlineMotionDatabase online(plan_, config, 64);
  MotionDatabaseBuilder batch(plan_, config);
  for (int i = 0; i < 20; ++i) {
    const double d = 90.0 + (i % 5 - 2);
    const double o = 4.0 + 0.05 * (i % 3 - 1);
    online.addObservation(0, 1, d, o);
    batch.addObservation(0, 1, d, o);
  }
  const auto onlineEntry = online.database().entry(0, 1);
  const auto batchEntry = batch.build().entry(0, 1);
  ASSERT_TRUE(onlineEntry && batchEntry);
  EXPECT_NEAR(onlineEntry->muDirectionDeg, batchEntry->muDirectionDeg,
              1e-9);
  EXPECT_NEAR(onlineEntry->muOffsetMeters, batchEntry->muOffsetMeters,
              1e-9);
  EXPECT_NEAR(onlineEntry->sigmaOffsetMeters,
              batchEntry->sigmaOffsetMeters, 1e-9);
}

TEST_F(OnlineDbTest, ThrowsOnUnknownLocations) {
  OnlineMotionDatabase online(plan_);
  EXPECT_THROW(online.addObservation(0, 9, 90.0, 4.0),
               std::out_of_range);
}

}  // namespace
}  // namespace moloc::core
