#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace moloc::util {
namespace {

ArgParser makeParser() {
  ArgParser parser("test program");
  parser.addOption("count", "5", "a count");
  parser.addOption("rate", "2.5", "a rate");
  parser.addOption("name", "alice", "a name");
  parser.addSwitch("verbose", "talk more");
  return parser;
}

bool parse(ArgParser& parser, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_EQ(parser.getInt("count"), 5);
  EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 2.5);
  EXPECT_EQ(parser.getString("name"), "alice");
  EXPECT_FALSE(parser.getSwitch("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {"--count", "9", "--name", "bob"}));
  EXPECT_EQ(parser.getInt("count"), 9);
  EXPECT_EQ(parser.getString("name"), "bob");
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {"--rate=7.25", "--name=carol"}));
  EXPECT_DOUBLE_EQ(parser.getDouble("rate"), 7.25);
  EXPECT_EQ(parser.getString("name"), "carol");
}

TEST(ArgParser, SwitchPresence) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {"--verbose"}));
  EXPECT_TRUE(parser.getSwitch("verbose"));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto parser = makeParser();
  EXPECT_FALSE(parse(parser, {"--help"}));
}

TEST(ArgParser, UnknownOptionThrows) {
  auto parser = makeParser();
  EXPECT_THROW(parse(parser, {"--bogus", "1"}), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  auto parser = makeParser();
  EXPECT_THROW(parse(parser, {"--count"}), std::invalid_argument);
}

TEST(ArgParser, NonNumericValueThrows) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {"--count", "abc"}));
  EXPECT_THROW(parser.getInt("count"), std::invalid_argument);
  ASSERT_TRUE(parse(parser, {"--rate", "1.5x"}));
  EXPECT_THROW(parser.getDouble("rate"), std::invalid_argument);
}

TEST(ArgParser, SwitchWithValueThrows) {
  auto parser = makeParser();
  EXPECT_THROW(parse(parser, {"--verbose=true"}), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentThrows) {
  auto parser = makeParser();
  EXPECT_THROW(parse(parser, {"stray"}), std::invalid_argument);
}

TEST(ArgParser, UndeclaredAccessThrows) {
  auto parser = makeParser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_THROW(parser.getString("missing"), std::invalid_argument);
  EXPECT_THROW(parser.getSwitch("count"), std::invalid_argument);
}

TEST(ArgParser, UsageMentionsEveryOption) {
  const auto parser = makeParser();
  const auto usage = parser.usage();
  for (const char* needle :
       {"--count", "--rate", "--name", "--verbose", "--help"})
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace moloc::util
