// Unit tests for moloc_check's pure support layer (tools/analyze/
// support/): suppression parsing, the rule registry and its scope
// policy, and finding formatting.  These run in every configuration —
// no libclang required — so the contract shared with tools/lint.sh
// (`// lint:allow(<rule>): <why>`) stays pinned even on machines that
// never build the analyzer itself.
#include <gtest/gtest.h>

#include <string>

#include "support/findings.hpp"
#include "support/rules.hpp"
#include "support/suppressions.hpp"

namespace ma = moloc::analyze;

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

TEST(AnalyzeSuppressions, WellFormedAllowIsHonoredOnItsLineOnly) {
  const auto set = ma::scanSuppressions(
      "int a;\n"
      "x.reserve(n);  // lint:allow(untrusted-alloc): bounded by caller\n"
      "int b;\n");
  EXPECT_TRUE(set.allows(2, "untrusted-alloc"));
  EXPECT_FALSE(set.allows(1, "untrusted-alloc"));
  EXPECT_FALSE(set.allows(3, "untrusted-alloc"));
  EXPECT_FALSE(set.allows(2, "typed-errors"));
  EXPECT_TRUE(set.malformed().empty());
}

TEST(AnalyzeSuppressions, MissingReasonIsMalformedNotHonored) {
  const auto set = ma::scanSuppressions(
      "foo();  // lint:allow(rand)\n"
      "bar();  // lint:allow(rand):\n"
      "baz();  // lint:allow(rand):   \n");
  EXPECT_FALSE(set.allows(1, "rand"));
  EXPECT_FALSE(set.allows(2, "rand"));
  EXPECT_FALSE(set.allows(3, "rand"));
  ASSERT_EQ(set.malformed().size(), 3u);
  EXPECT_EQ(set.malformed()[0].line, 1u);
  EXPECT_EQ(set.malformed()[1].line, 2u);
  EXPECT_EQ(set.malformed()[2].line, 3u);
}

TEST(AnalyzeSuppressions, MalformedRuleNameIsReported) {
  const auto set = ma::scanSuppressions("x();  // lint:allow(): oops\n");
  EXPECT_TRUE(set.entries().empty());
  ASSERT_EQ(set.malformed().size(), 1u);
  EXPECT_EQ(set.malformed()[0].line, 1u);
}

TEST(AnalyzeSuppressions, UnknownRuleNameIsMalformedNotHonored) {
  // A typo'd rule id must not silently suppress nothing.
  const auto set =
      ma::scanSuppressions("x();  // lint:allow(untrused-alloc): typo\n");
  EXPECT_FALSE(set.allows(1, "untrusted-alloc"));
  EXPECT_FALSE(set.allows(1, "untrused-alloc"));
  ASSERT_EQ(set.malformed().size(), 1u);
  EXPECT_NE(set.malformed()[0].detail.find("unknown rule"), std::string::npos);
}

TEST(AnalyzeSuppressions, MarkerInsideStringLiteralIsIgnored) {
  // Only text after the first `//` counts; a suppression spelled in a
  // string literal (e.g. lint.sh's own documentation strings) is prose.
  const auto set = ma::scanSuppressions(
      "const char* doc = \"use lint:allow(rand): like this\";\n"
      "const char* s = \"// lint:allow(cout): in a string\";  // real "
      "comment\n");
  EXPECT_FALSE(set.allows(1, "rand"));
  // Line 2: the first `//` occurs inside the literal, so the scanner
  // sees the marker after it — same tradeoff lint.sh makes.  The
  // marker names a rule and reason, so it parses; it simply never
  // matches a finding on that line in practice.
  EXPECT_TRUE(set.malformed().empty());
}

TEST(AnalyzeSuppressions, TwoRulesOnOneLine) {
  const auto set = ma::scanSuppressions(
      "f();  // lint:allow(rand): seeded demo  lint:allow(cout): CLI tool\n");
  EXPECT_TRUE(set.allows(1, "rand"));
  EXPECT_TRUE(set.allows(1, "cout"));
}

TEST(AnalyzeSuppressions, LineNumbersAreOneBasedLikeLibclang) {
  const auto set =
      ma::scanSuppressions("// lint:allow(cout): first line\n");
  EXPECT_TRUE(set.allows(1, "cout"));
}

// ---------------------------------------------------------------------
// Rule registry and scope policy
// ---------------------------------------------------------------------

TEST(AnalyzeRules, RegistryHasTheDocumentedRuleSet) {
  EXPECT_TRUE(ma::isKnownRule("untrusted-alloc"));
  EXPECT_TRUE(ma::isKnownRule("typed-errors"));
  EXPECT_TRUE(ma::isKnownRule("raw-eintr"));
  EXPECT_TRUE(ma::isKnownRule("narrowing-length"));
  EXPECT_TRUE(ma::isKnownRule("fp-determinism"));
  EXPECT_TRUE(ma::isKnownRule("raw-sync"));
  EXPECT_TRUE(ma::isKnownRule("naked-new"));
  EXPECT_TRUE(ma::isKnownRule("rand"));
  EXPECT_TRUE(ma::isKnownRule("cout"));
  EXPECT_TRUE(ma::isKnownRule("bad-suppression"));
  EXPECT_FALSE(ma::isKnownRule("made-up-rule"));
  for (const ma::RuleInfo& rule : ma::allRules()) {
    EXPECT_NE(std::string(rule.summary), "") << rule.id;
    EXPECT_NE(std::string(rule.guards), "") << rule.id;
  }
}

TEST(AnalyzeRules, NothingOutsideSrcIsInScope) {
  EXPECT_FALSE(ma::inScope("naked-new", "tests/test_wal.cpp"));
  EXPECT_FALSE(ma::inScope("cout", "tools/lint.sh"));
  EXPECT_FALSE(ma::inScope("typed-errors", "bench/bench_kernel.cpp"));
}

TEST(AnalyzeRules, UtilIsExemptFromRulesWhoseAlternativeLivesThere) {
  // The typed error hierarchy and the annotated mutex wrappers are
  // defined in src/util/ — the rules cannot apply to their own
  // implementation.
  EXPECT_FALSE(ma::inScope("typed-errors", "src/util/error.hpp"));
  EXPECT_FALSE(ma::inScope("raw-sync", "src/util/mutex.hpp"));
  EXPECT_TRUE(ma::inScope("typed-errors", "src/net/wire.cpp"));
  EXPECT_TRUE(ma::inScope("raw-sync", "src/service/thread_pool.cpp"));
  // ...but util is not exempt from everything.
  EXPECT_TRUE(ma::inScope("naked-new", "src/util/csv.cpp"));
  EXPECT_TRUE(ma::inScope("untrusted-alloc", "src/util/csv.cpp"));
}

TEST(AnalyzeRules, DirectoryScopedRules) {
  EXPECT_TRUE(ma::inScope("raw-eintr", "src/store/wal.cpp"));
  EXPECT_TRUE(ma::inScope("raw-eintr", "src/net/server.cpp"));
  EXPECT_TRUE(ma::inScope("raw-eintr", "src/image/image_loader.cpp"));
  EXPECT_FALSE(ma::inScope("raw-eintr", "src/core/motion_matcher.cpp"));

  EXPECT_TRUE(ma::inScope("narrowing-length", "src/net/wire.cpp"));
  EXPECT_TRUE(ma::inScope("narrowing-length", "src/image/image_writer.cpp"));
  EXPECT_TRUE(ma::inScope("narrowing-length", "src/store/checkpoint.cpp"));
  EXPECT_FALSE(ma::inScope("narrowing-length", "src/eval/ascii_map.cpp"));

  EXPECT_TRUE(ma::inScope("fp-determinism", "src/kernel/fingerprint_kernel.cpp"));
  EXPECT_TRUE(ma::inScope("fp-determinism", "src/index/tiered_index.cpp"));
  EXPECT_TRUE(ma::inScope("fp-determinism", "src/radio/fingerprint.cpp"));
  EXPECT_FALSE(ma::inScope("fp-determinism", "src/net/wire.cpp"));
}

TEST(AnalyzeRules, RepoRelativeNormalizesDotSegments) {
  EXPECT_EQ(ma::repoRelative("/repo/src/a.cpp", "/repo"), "src/a.cpp");
  EXPECT_EQ(ma::repoRelative("/repo/./src/../src/a.cpp", "/repo"),
            "src/a.cpp");
  EXPECT_EQ(ma::repoRelative("/repo/build/../src/net/wire.cpp", "/repo/"),
            "src/net/wire.cpp");
  EXPECT_EQ(ma::repoRelative("/elsewhere/src/a.cpp", "/repo"), "");
  EXPECT_EQ(ma::repoRelative("/repo", "/repo"), "");
  // A path that ..-escapes the root is outside it.
  EXPECT_EQ(ma::repoRelative("/repo/../other/x.cpp", "/repo"), "");
}

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

TEST(AnalyzeFindings, FormatMatchesCompilerDiagnosticShape) {
  const ma::Finding f{"src/net/wire.cpp", 54, 9, "untrusted-alloc",
                      "string sized by 'n'"};
  EXPECT_EQ(ma::formatFinding(f),
            "src/net/wire.cpp:54:9: [untrusted-alloc] string sized by 'n'");
}

TEST(AnalyzeFindings, SortAndDedupeCollapsesCrossTuHeaderDuplicates) {
  // The same header finding surfaces once per including TU; dedupe is
  // by (file, line, rule) so one copy survives regardless of column
  // or message differences.
  std::vector<ma::Finding> findings = {
      {"src/b.hpp", 10, 5, "naked-new", "from tu1"},
      {"src/a.cpp", 3, 1, "rand", "x"},
      {"src/b.hpp", 10, 5, "naked-new", "from tu2"},
      {"src/b.hpp", 10, 5, "rand", "different rule survives"},
  };
  ma::sortAndDedupe(findings);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/a.cpp");
  EXPECT_EQ(findings[1].rule, "naked-new");
  EXPECT_EQ(findings[2].rule, "rand");
}
