#include "core/moloc_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace moloc::core {
namespace {

/// A hand-built world that reproduces the paper's Fig. 1 twin scenario
/// as a unit test.
///
/// Layout (4 m grid, compass convention: +y north):
///   0 (2,10) -- 1 (6,10)     <- north corridor
///   2 (2, 2) -- 3 (6, 2)     <- south corridor (mirror twins of 0, 1)
///
/// Locations 0/2 are fingerprint twins, and so are 1/3.  Location 4
/// (14, 6) is unambiguous.  The motion database knows the horizontal
/// legs 0-1 and 2-3 (east, 4 m) and the legs 1-4 / 3-4.
class TwinWorld {
 public:
  TwinWorld() : motion_(5) {
    // Twins share a fingerprint; the unique location is far away in
    // signal space.
    fingerprints_.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
    fingerprints_.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
    fingerprints_.addLocation(2, radio::Fingerprint({-50.1, -60.1}));
    fingerprints_.addLocation(3, radio::Fingerprint({-55.1, -57.1}));
    fingerprints_.addLocation(4, radio::Fingerprint({-70.0, -40.0}));

    motion_.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
    motion_.setEntryWithMirror(2, 3, {90.0, 4.0, 4.0, 0.3, 20});
    // 1 -> 4: south-east; 3 -> 4: north-east.
    motion_.setEntryWithMirror(1, 4, {117.0, 4.0, 8.9, 0.4, 20});
    motion_.setEntryWithMirror(3, 4, {63.0, 4.0, 8.9, 0.4, 20});
  }

  radio::FingerprintDatabase fingerprints_;
  MotionDatabase motion_;
};

class EngineTest : public ::testing::Test {
 protected:
  TwinWorld world_;
  MoLocConfig config_{5, {}};
};

TEST_F(EngineTest, InitialFixIsFingerprintOnly) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  EXPECT_FALSE(engine.hasHistory());
  const auto fix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  EXPECT_EQ(fix.location, 0);  // Exact match wins.
  EXPECT_TRUE(engine.hasHistory());
  EXPECT_EQ(fix.candidates.size(), 5u);
}

TEST_F(EngineTest, CandidateProbabilitiesAreNormalized) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  const auto fix =
      engine.localize(radio::Fingerprint({-52.0, -58.0}), std::nullopt);
  double total = 0.0;
  for (const auto& c : fix.candidates) {
    EXPECT_GE(c.probability, 0.0);
    total += c.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(fix.location, fix.candidates.front().location);
  EXPECT_EQ(fix.probability, fix.candidates.front().probability);
}

TEST_F(EngineTest, MotionDisambiguatesTwins) {
  // The Fig. 1(b) story: the user starts at the unique location 4 and
  // walks to 1 (west-north-west).  A twin-ambiguous scan that is a
  // hair closer to 3 would fool plain fingerprinting, but the motion
  // from 4 matches the 4->1 leg, not the 4->3 leg.
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);

  // Scan slightly *closer to the twin* 3 than to the truth 1.
  const radio::Fingerprint ambiguous({-55.08, -57.08});
  EXPECT_EQ(world_.fingerprints_.nearest(ambiguous), 3);

  // Motion: the reverse of 1 -> 4 is heading 297, offset 8.9.
  const auto fix =
      engine.localize(ambiguous, sensors::MotionMeasurement{297.0, 8.9});
  EXPECT_EQ(fix.location, 1);
}

TEST_F(EngineTest, RecoversFromWrongInitialViaCandidateSet) {
  // Fig. 1(c): the initial scan is twin-ambiguous and the top pick is
  // wrong, but the true location remains in the candidate set; the
  // next motion-constrained fix recovers.
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);

  // Slightly closer to twin 2 than to the true start 0.
  const auto initial =
      engine.localize(radio::Fingerprint({-50.08, -60.08}), std::nullopt);
  EXPECT_EQ(initial.location, 2);  // Wrong.

  // The user actually walks 0 -> 1 (east 4 m), then 1 -> 4.  The first
  // eastward leg cannot split the twins (2 -> 3 is also east 4 m), but
  // the second leg can: from 1 the walk to 4 heads 117, from 3 it
  // would head 63.
  engine.localize(radio::Fingerprint({-55.05, -57.05}),
                  sensors::MotionMeasurement{90.0, 4.0});
  const auto fix =
      engine.localize(radio::Fingerprint({-70.0, -40.0}),
                      sensors::MotionMeasurement{117.0, 8.9});
  EXPECT_EQ(fix.location, 4);
  // And the candidate history now strongly favours the north corridor:
  // walking backwards to 1 confirms.
  const auto back =
      engine.localize(radio::Fingerprint({-55.08, -57.08}),
                      sensors::MotionMeasurement{297.0, 8.9});
  EXPECT_EQ(back.location, 1);
}

TEST_F(EngineTest, NoMotionFallsBackToFingerprint) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  const auto fix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  EXPECT_EQ(fix.location, 0);
  EXPECT_TRUE(engine.hasHistory());
}

TEST_F(EngineTest, ResetForgetsHistory) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  EXPECT_TRUE(engine.hasHistory());
  engine.reset();
  EXPECT_FALSE(engine.hasHistory());
  EXPECT_TRUE(engine.retainedCandidates().empty());
}

TEST_F(EngineTest, RetainedCandidatesMatchLastFix) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  const auto fix =
      engine.localize(radio::Fingerprint({-52.0, -59.0}), std::nullopt);
  const auto retained = engine.retainedCandidates();
  ASSERT_EQ(retained.size(), fix.candidates.size());
  for (std::size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].location, fix.candidates[i].location);
    EXPECT_EQ(retained[i].probability, fix.candidates[i].probability);
  }
}

TEST_F(EngineTest, ZeroFloorDegradesGracefully) {
  // With a zero unreachable floor and a teleport-style motion that
  // matches no pair, every posterior weight collapses; the engine must
  // fall back to fingerprint ranking instead of crashing or returning
  // NaN.
  MoLocConfig config = config_;
  config.matcher.unreachableFloor = 0.0;
  config.matcher.allowStationary = false;
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  const auto fix = engine.localize(
      radio::Fingerprint({-50.0, -60.0}),
      sensors::MotionMeasurement{200.0, 55.0});  // Impossible walk.
  EXPECT_EQ(fix.location, 0);
  EXPECT_TRUE(std::isfinite(fix.probability));
  EXPECT_GT(fix.probability, 0.0);
}

TEST_F(EngineTest, KClampsToDatabaseSize) {
  MoLocConfig config;
  config.candidateCount = 100;
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config);
  const auto fix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  EXPECT_EQ(fix.candidates.size(), 5u);
}

TEST_F(EngineTest, StationaryUserStaysPut) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  // A twin-ambiguous scan with a near-zero offset: the stationary
  // model should keep the estimate at the strongest prior candidate
  // rather than teleporting to a twin... but location 4 is unambiguous
  // here, so simply verify the fix stays 4.
  const auto fix =
      engine.localize(radio::Fingerprint({-69.5, -40.5}),
                      sensors::MotionMeasurement{10.0, 0.05});
  EXPECT_EQ(fix.location, 4);
}

TEST_F(EngineTest, EntropyReflectsAmbiguity) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  // An exact match on the unique location: near-certain posterior.
  const auto certain =
      engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  engine.reset();
  // A twin-ambiguous scan: the posterior splits between twins.
  const auto ambiguous =
      engine.localize(radio::Fingerprint({-50.05, -60.05}), std::nullopt);
  EXPECT_LT(certain.normalizedEntropy(), ambiguous.normalizedEntropy());
  EXPECT_GE(certain.normalizedEntropy(), 0.0);
  EXPECT_LE(ambiguous.normalizedEntropy(), 1.0);
}

TEST_F(EngineTest, EntropyDropsOnceMotionDisambiguates) {
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config_);
  const auto initial =
      engine.localize(radio::Fingerprint({-55.05, -57.05}), std::nullopt);
  const auto afterMotion =
      engine.localize(radio::Fingerprint({-70.0, -40.0}),
                      sensors::MotionMeasurement{117.0, 8.9});
  EXPECT_LT(afterMotion.normalizedEntropy(),
            initial.normalizedEntropy());
}

TEST_F(EngineTest, SingleCandidateHasZeroEntropy) {
  MoLocConfig config;
  config.candidateCount = 1;
  MoLocEngine engine(world_.fingerprints_, world_.motion_, config);
  const auto fix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  EXPECT_EQ(fix.normalizedEntropy(), 0.0);
}

/// k sweep: the engine works for any candidate count >= 1.
class EngineKSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineKSweepTest, TwinResolutionRobustToK) {
  TwinWorld world;
  MoLocConfig config;
  config.candidateCount = GetParam();
  MoLocEngine engine(world.fingerprints_, world.motion_, config);
  engine.localize(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  const auto fix =
      engine.localize(radio::Fingerprint({-55.08, -57.08}),
                      sensors::MotionMeasurement{297.0, 8.9});
  if (GetParam() >= 2) {
    // With at least two candidates the truth is in the set and motion
    // picks it.
    EXPECT_EQ(fix.location, 1);
  } else {
    // k = 1 degenerates to fingerprint-only: the twin wins.
    EXPECT_EQ(fix.location, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineKSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EngineDegenerateCandidates, EmptyCandidateSourceYieldsNoFix) {
  // Regression: finalize() dereferenced scored.front() without an
  // empty-set guard.  A candidate source that yields nothing must
  // produce the well-defined "no fix" estimate, not UB.
  TwinWorld world;
  int calls = 0;
  CandidateEstimator empty(
      [&world, &calls](const radio::Fingerprint& fp, std::size_t k,
                       std::vector<Candidate>& out) {
        ++calls;
        if (calls == 1)
          world.fingerprints_.queryInto(fp, k, out);
        else
          out.clear();
      },
      5);
  MoLocEngine engine(std::move(empty), world.motion_, MoLocConfig{5, {}});

  const auto first =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  EXPECT_TRUE(first.hasFix());
  const auto retainedBefore = engine.retainedCandidates().size();

  const auto noFix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}),
                      sensors::MotionMeasurement{90.0, 4.0});
  EXPECT_FALSE(noFix.hasFix());
  EXPECT_EQ(noFix.location, 0);
  EXPECT_EQ(noFix.probability, 0.0);
  EXPECT_TRUE(noFix.candidates.empty());
  EXPECT_EQ(noFix.normalizedEntropy(), 0.0);
  // A transient outage must not erase the retained candidate set.
  EXPECT_EQ(engine.retainedCandidates().size(), retainedBefore);
  EXPECT_TRUE(engine.hasHistory());
}

TEST(EngineDegenerateCandidates, AllZeroProbabilitiesYieldUniformNotNaN) {
  // Regression: with a zero total after the fingerprint-only fallback,
  // the Eq. 7 normalization divided by zero and produced NaN
  // posteriors.
  TwinWorld world;
  CandidateEstimator zeros(
      [](const radio::Fingerprint&, std::size_t,
         std::vector<Candidate>& out) {
        out.clear();
        out.push_back({0, 1.0, 0.0});
        out.push_back({1, 2.0, 0.0});
        out.push_back({2, 3.0, 0.0});
      },
      3);
  MoLocEngine engine(std::move(zeros), world.motion_, MoLocConfig{3, {}});
  const auto fix =
      engine.localize(radio::Fingerprint({-50.0, -60.0}), std::nullopt);
  ASSERT_TRUE(fix.hasFix());
  ASSERT_EQ(fix.candidates.size(), 3u);
  double total = 0.0;
  for (const auto& c : fix.candidates) {
    EXPECT_FALSE(std::isnan(c.probability));
    EXPECT_DOUBLE_EQ(c.probability, 1.0 / 3.0);
    total += c.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(fix.probability));
}

}  // namespace
}  // namespace moloc::core
