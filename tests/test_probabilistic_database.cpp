#include "radio/probabilistic_database.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace moloc::radio {
namespace {

std::vector<Fingerprint> samplesAround(double a, double b, double spread,
                                       int count = 8) {
  std::vector<Fingerprint> samples;
  for (int i = 0; i < count; ++i) {
    const double jitter = spread * (i % 3 - 1);
    samples.emplace_back(std::vector<double>{a + jitter, b - jitter});
  }
  return samples;
}

ProbabilisticFingerprintDatabase threeLocationDb() {
  ProbabilisticFingerprintDatabase db;
  db.addLocation(0, samplesAround(-40.0, -70.0, 2.0));
  db.addLocation(1, samplesAround(-55.0, -55.0, 2.0));
  db.addLocation(2, samplesAround(-70.0, -40.0, 2.0));
  return db;
}

TEST(ProbabilisticDb, BasicProperties) {
  const auto db = threeLocationDb();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.apCount(), 2u);
  EXPECT_TRUE(db.contains(1));
  EXPECT_FALSE(db.contains(9));
  EXPECT_EQ(db.locationIds().size(), 3u);
}

TEST(ProbabilisticDb, RejectsBadInput) {
  ProbabilisticFingerprintDatabase db;
  EXPECT_THROW(db.addLocation(0, {}), std::invalid_argument);
  db.addLocation(0, samplesAround(-40.0, -70.0, 1.0));
  EXPECT_THROW(db.addLocation(0, samplesAround(-41.0, -71.0, 1.0)),
               std::invalid_argument);
  std::vector<Fingerprint> wrongDim{Fingerprint({-40.0})};
  EXPECT_THROW(db.addLocation(1, wrongDim), std::invalid_argument);
}

TEST(ProbabilisticDb, MostLikelyPicksNearestModel) {
  const auto db = threeLocationDb();
  EXPECT_EQ(db.mostLikely(Fingerprint({-41.0, -69.0})), 0);
  EXPECT_EQ(db.mostLikely(Fingerprint({-55.5, -54.0})), 1);
  EXPECT_EQ(db.mostLikely(Fingerprint({-69.0, -41.0})), 2);
}

TEST(ProbabilisticDb, LogLikelihoodPeaksAtMean) {
  const auto db = threeLocationDb();
  const double atMean = db.logLikelihood(Fingerprint({-40.0, -70.0}), 0);
  const double offMean = db.logLikelihood(Fingerprint({-45.0, -65.0}), 0);
  EXPECT_GT(atMean, offMean);
}

TEST(ProbabilisticDb, SigmaFloorPreventsOverconfidence) {
  ProbabilisticFingerprintDatabase db;
  // Identical samples: fitted sigma would be 0 without the floor.
  std::vector<Fingerprint> identical(6, Fingerprint({-50.0, -60.0}));
  db.addLocation(0, identical);
  const double logL = db.logLikelihood(Fingerprint({-51.0, -61.0}), 0);
  EXPECT_TRUE(std::isfinite(logL));
}

TEST(ProbabilisticDb, WiderSpreadIsMoreForgiving) {
  ProbabilisticFingerprintDatabase narrow;
  narrow.addLocation(0, samplesAround(-50.0, -60.0, 1.5));
  ProbabilisticFingerprintDatabase wide;
  wide.addLocation(0, samplesAround(-50.0, -60.0, 6.0));
  const Fingerprint offset({-58.0, -52.0});
  EXPECT_GT(wide.logLikelihood(offset, 0),
            narrow.logLikelihood(offset, 0));
}

TEST(ProbabilisticDb, QueryProbabilitiesNormalized) {
  const auto db = threeLocationDb();
  const auto matches = db.query(Fingerprint({-50.0, -60.0}), 3);
  ASSERT_EQ(matches.size(), 3u);
  double total = 0.0;
  for (const auto& m : matches) {
    EXPECT_GT(m.probability, 0.0);
    total += m.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Best first.
  EXPECT_GE(matches[0].probability, matches[1].probability);
  EXPECT_GE(matches[1].probability, matches[2].probability);
}

TEST(ProbabilisticDb, QueryTop1AgreesWithMostLikely) {
  const auto db = threeLocationDb();
  for (double x : {-42.0, -52.0, -66.0}) {
    const Fingerprint probe({x, -55.0});
    EXPECT_EQ(db.query(probe, 1).front().location, db.mostLikely(probe));
  }
}

TEST(ProbabilisticDb, QueryExtremeScanStaysFinite) {
  const auto db = threeLocationDb();
  const auto matches = db.query(Fingerprint({-200.0, -200.0}), 3);
  double total = 0.0;
  for (const auto& m : matches) {
    EXPECT_TRUE(std::isfinite(m.probability));
    total += m.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProbabilisticDb, QueryErrors) {
  const auto db = threeLocationDb();
  EXPECT_THROW(db.query(Fingerprint({-40.0, -70.0}), 0),
               std::invalid_argument);
  const ProbabilisticFingerprintDatabase empty;
  EXPECT_THROW(empty.query(Fingerprint({-40.0}), 1), std::logic_error);
  EXPECT_THROW(empty.mostLikely(Fingerprint({-40.0})), std::logic_error);
  EXPECT_THROW(db.logLikelihood(Fingerprint({-40.0}), 0),
               std::invalid_argument);
  EXPECT_THROW(db.logLikelihood(Fingerprint({-40.0, -70.0}), 9),
               std::out_of_range);
}

TEST(ProbabilisticDb, FromSurveyCoversAllLocations) {
  env::FloorPlan plan(20.0, 10.0);
  plan.addReferenceLocation({2.0, 5.0});
  plan.addReferenceLocation({18.0, 5.0});
  const RadioEnvironment radio(
      plan, {{0, {1.0, 5.0}}, {1, {19.0, 5.0}}}, PropagationParams{});
  util::Rng rng(5);
  const auto survey = conductSurvey(radio, SurveyConfig{}, rng);
  const auto db = ProbabilisticFingerprintDatabase::fromSurvey(survey);
  EXPECT_EQ(db.size(), 2u);
  // A fresh scan at location 0 is most likely location 0.
  util::Rng queryRng(6);
  EXPECT_EQ(db.mostLikely(radio.scan({2.0, 5.0}, 0.0, queryRng)), 0);
}

}  // namespace
}  // namespace moloc::radio
