#include "core/construction_methods.hpp"

#include <gtest/gtest.h>

#include "env/office_hall.hpp"
#include "geometry/angles.hpp"

namespace moloc::core {
namespace {

class ConstructionTest : public ::testing::Test {
 protected:
  env::OfficeHall hall_ = env::makeOfficeHall();
};

TEST_F(ConstructionTest, ManualCoversExactlyTheWalkableLegs) {
  const auto db = buildMotionDatabaseManually(hall_.graph);
  EXPECT_EQ(db.entryCount(), hall_.graph.edgeCount() * 2);
  EXPECT_EQ(countUnwalkableEntries(db, hall_.graph), 0u);
}

TEST_F(ConstructionTest, ManualEntriesMatchMapExactly) {
  const auto db = buildMotionDatabaseManually(hall_.graph);
  for (env::LocationId i = 0;
       i < static_cast<env::LocationId>(hall_.graph.nodeCount()); ++i) {
    for (const auto& edge : hall_.graph.neighbors(i)) {
      const auto entry = db.entry(i, edge.to);
      ASSERT_TRUE(entry.has_value());
      EXPECT_LT(geometry::angularDistDeg(entry->muDirectionDeg,
                                         edge.headingDeg),
                1e-9);
      EXPECT_NEAR(entry->muOffsetMeters, edge.length, 1e-9);
    }
  }
}

TEST_F(ConstructionTest, ManualRespectsSeveredLegs) {
  const auto db = buildMotionDatabaseManually(hall_.graph);
  // The partition-severed pairs must have no entry.
  EXPECT_FALSE(db.hasEntry(2, 9));
  EXPECT_FALSE(db.hasEntry(3, 10));
  EXPECT_FALSE(db.hasEntry(19, 26));
}

TEST_F(ConstructionTest, MapMethodCannotSeeWalls) {
  const auto db =
      buildMotionDatabaseFromMap(hall_.plan, env::kHallAdjacency);
  // The map method includes the severed pairs: a consistency violation
  // per partition-blocked leg.
  EXPECT_TRUE(db.hasEntry(2, 9));
  EXPECT_TRUE(db.hasEntry(3, 10));
  EXPECT_TRUE(db.hasEntry(19, 26));
  EXPECT_EQ(countUnwalkableEntries(db, hall_.graph), 3u);
}

TEST_F(ConstructionTest, MapMethodUsesStraightLineRlms) {
  const auto db =
      buildMotionDatabaseFromMap(hall_.plan, env::kHallAdjacency);
  const auto entry = db.entry(2, 9);  // Severed: straight line = 4 m.
  ASSERT_TRUE(entry.has_value());
  EXPECT_NEAR(entry->muOffsetMeters, 4.0, 1e-9);
  // But the true walkable path detours around the partition.
  EXPECT_GT(hall_.graph.walkableDistance(2, 9),
            entry->muOffsetMeters + 1.0);
}

TEST_F(ConstructionTest, MapMethodRespectsDistanceCutoff) {
  const auto db = buildMotionDatabaseFromMap(hall_.plan, 4.5);
  // Only the 4 m vertical legs qualify at a 4.5 m cutoff.
  EXPECT_TRUE(db.hasEntry(0, 7));
  EXPECT_FALSE(db.hasEntry(0, 1));  // 5.7 m horizontal.
}

TEST_F(ConstructionTest, MirrorsPresentInBothMethods) {
  const auto manual = buildMotionDatabaseManually(hall_.graph);
  const auto map =
      buildMotionDatabaseFromMap(hall_.plan, env::kHallAdjacency);
  for (const auto* db : {&manual, &map}) {
    ASSERT_TRUE(db->hasEntry(0, 1));
    ASSERT_TRUE(db->hasEntry(1, 0));
    EXPECT_NEAR(geometry::angularDistDeg(
                    db->entry(0, 1)->muDirectionDeg,
                    geometry::reverseHeadingDeg(
                        db->entry(1, 0)->muDirectionDeg)),
                0.0, 1e-9);
  }
}

TEST_F(ConstructionTest, SpreadParametersApplied) {
  ComputedRlmSpread spread;
  spread.sigmaDirectionDeg = 9.0;
  spread.sigmaOffsetMeters = 0.7;
  const auto db = buildMotionDatabaseManually(hall_.graph, spread);
  EXPECT_DOUBLE_EQ(db.entry(0, 1)->sigmaDirectionDeg, 9.0);
  EXPECT_DOUBLE_EQ(db.entry(0, 1)->sigmaOffsetMeters, 0.7);
}

TEST_F(ConstructionTest, CountUnwalkableOnEmptyDb) {
  const MotionDatabase empty(hall_.graph.nodeCount());
  EXPECT_EQ(countUnwalkableEntries(empty, hall_.graph), 0u);
}

}  // namespace
}  // namespace moloc::core
