#include "service/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace moloc::service {
namespace {

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ReportsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i)
    (void)pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TaskExceptionLandsInFuture) {
  ThreadPool pool(1);
  auto future =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      (void)pool.submit([&counter] { ++counter; });
  }  // Destructor must run all 20 before joining.
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TasksObserveEachOthersWrites) {
  // Publish via the pool, read after wait(): the mutex hand-off must
  // order the writes (exercised for real under MOLOC_SANITIZE=thread).
  ThreadPool pool(4);
  std::vector<int> slots(200, 0);
  for (int i = 0; i < 200; ++i)
    (void)pool.submit([&slots, i] { slots[static_cast<std::size_t>(i)] = i; });
  pool.wait();
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i);
}

#if MOLOC_METRICS_ENABLED
TEST(ThreadPool, MetricsCountTasksAndDrainQueueDepth) {
  obs::MetricsRegistry registry;
  {
    ThreadPool pool(2, &registry);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 40; ++i)
      futures.push_back(pool.submit([] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }));
    for (auto& f : futures) f.get();
    pool.wait();
    EXPECT_DOUBLE_EQ(
        registry.findCounter("moloc_pool_tasks_total")->value(), 40.0);
    EXPECT_DOUBLE_EQ(
        registry.findGauge("moloc_pool_queue_depth")->value(), 0.0);
    EXPECT_GT(
        registry.findCounter("moloc_pool_busy_seconds_total")->value(),
        0.0);
  }
}

TEST(ThreadPool, NullRegistryRunsUninstrumented) {
  ThreadPool pool(2, nullptr);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    (void)pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 10);
}
#endif

}  // namespace
}  // namespace moloc::service
