#include "baseline/dead_reckoning.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::baseline {
namespace {

class DeadReckoningTest : public ::testing::Test {
 protected:
  DeadReckoningTest() {
    plan_.addReferenceLocation({2.0, 2.0});   // 0
    plan_.addReferenceLocation({6.0, 2.0});   // 1
    plan_.addReferenceLocation({10.0, 2.0});  // 2
    db_.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
    db_.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
    db_.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  }

  env::FloorPlan plan_{12.0, 4.0};
  radio::FingerprintDatabase db_;
};

TEST_F(DeadReckoningTest, ThrowsBeforeInitialize) {
  DeadReckoning dr(plan_, db_);
  EXPECT_FALSE(dr.initialized());
  EXPECT_THROW(dr.update({90.0, 1.0}), std::logic_error);
  EXPECT_THROW(dr.position(), std::logic_error);
}

TEST_F(DeadReckoningTest, InitializesAtNearestFingerprint) {
  DeadReckoning dr(plan_, db_);
  dr.initialize(radio::Fingerprint({-41.0, -69.0}));
  EXPECT_TRUE(dr.initialized());
  EXPECT_EQ(dr.position(), (geometry::Vec2{2.0, 2.0}));
}

TEST_F(DeadReckoningTest, IntegratesMotion) {
  DeadReckoning dr(plan_, db_);
  dr.initialize(radio::Fingerprint({-41.0, -69.0}));
  // Walk east 4 m: lands on location 1.
  EXPECT_EQ(dr.update({90.0, 4.0}), 1);
  EXPECT_NEAR(dr.position().x, 6.0, 1e-9);
  EXPECT_NEAR(dr.position().y, 2.0, 1e-9);
  // Another 4 m east: location 2.
  EXPECT_EQ(dr.update({90.0, 4.0}), 2);
}

TEST_F(DeadReckoningTest, SnapsToNearestReference) {
  DeadReckoning dr(plan_, db_);
  dr.initialize(radio::Fingerprint({-41.0, -69.0}));
  // A short walk leaves it nearest to the start.
  EXPECT_EQ(dr.update({90.0, 1.0}), 0);
}

TEST_F(DeadReckoningTest, HeadingErrorAccumulates) {
  // The ablation's point: a persistent 10-degree bias drifts the track
  // off the corridor with no mechanism to recover.
  DeadReckoning biased(plan_, db_);
  biased.initialize(radio::Fingerprint({-41.0, -69.0}));
  DeadReckoning clean(plan_, db_);
  clean.initialize(radio::Fingerprint({-41.0, -69.0}));
  for (int i = 0; i < 5; ++i) {
    biased.update({100.0, 4.0});
    clean.update({90.0, 4.0});
  }
  const double drift =
      geometry::distance(biased.position(), clean.position());
  EXPECT_GT(drift, 2.0);  // 20 m * sin(10 deg) ~ 3.5 m.
}

TEST_F(DeadReckoningTest, NorthboundMotion) {
  DeadReckoning dr(plan_, db_);
  dr.initialize(radio::Fingerprint({-41.0, -69.0}));
  dr.update({0.0, 3.0});
  EXPECT_NEAR(dr.position().x, 2.0, 1e-9);
  EXPECT_NEAR(dr.position().y, 5.0, 1e-9);
}

}  // namespace
}  // namespace moloc::baseline
