#include "core/motion_database_builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geometry/angles.hpp"

namespace moloc::core {
namespace {

/// A 3-location corridor along the x axis: 0 at (2,2), 1 at (6,2),
/// 2 at (10,2).  The map RLM 0->1 is (90 deg east, 4 m).
class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
  }

  env::FloorPlan plan_{12.0, 4.0};
};

TEST_F(BuilderTest, LearnsCleanObservations) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 10; ++i)
    builder.addObservation(0, 1, 90.0 + (i % 3 - 1) * 2.0,
                           4.0 + (i % 3 - 1) * 0.1);
  BuilderReport report;
  const auto db = builder.build(report);

  EXPECT_EQ(report.pairsStored, 1u);
  ASSERT_TRUE(db.hasEntry(0, 1));
  const auto stats = db.entry(0, 1);
  EXPECT_NEAR(stats->muDirectionDeg, 90.0, 0.5);
  EXPECT_NEAR(stats->muOffsetMeters, 4.0, 0.05);
  // The mirror entry exists with the reversed direction.
  ASSERT_TRUE(db.hasEntry(1, 0));
  EXPECT_NEAR(db.entry(1, 0)->muDirectionDeg, 270.0, 0.5);
}

TEST_F(BuilderTest, ReassemblesOntoSmallerId) {
  MotionDatabaseBuilder builder(plan_);
  // Observations reported from the larger-ID side (walking west).
  for (int i = 0; i < 5; ++i) builder.addObservation(1, 0, 270.0, 4.0);
  const auto db = builder.build();
  ASSERT_TRUE(db.hasEntry(0, 1));
  // Stored under the smaller ID as the eastward leg.
  EXPECT_NEAR(db.entry(0, 1)->muDirectionDeg, 90.0, 1e-9);
  EXPECT_NEAR(db.entry(1, 0)->muDirectionDeg, 270.0, 1e-9);
}

TEST_F(BuilderTest, ForwardAndBackwardObservationsPool) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 3; ++i) builder.addObservation(0, 1, 88.0, 3.9);
  for (int i = 0; i < 3; ++i) builder.addObservation(1, 0, 272.0, 4.1);
  const auto db = builder.build();
  ASSERT_TRUE(db.hasEntry(0, 1));
  EXPECT_EQ(db.entry(0, 1)->sampleCount, 6);
  EXPECT_NEAR(db.entry(0, 1)->muDirectionDeg, 90.0, 1.0);
  EXPECT_NEAR(db.entry(0, 1)->muOffsetMeters, 4.0, 0.05);
}

TEST_F(BuilderTest, SelfPairsDropped) {
  MotionDatabaseBuilder builder(plan_);
  builder.addObservation(1, 1, 90.0, 4.0);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.droppedSelfPairs, 1u);
  EXPECT_EQ(db.entryCount(), 0u);
}

TEST_F(BuilderTest, CoarseFilterRejectsDirectionOutliers) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  // 45 degrees off the map heading: beyond the 20-degree threshold.
  builder.addObservation(0, 1, 135.0, 4.0);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 1u);
  EXPECT_EQ(db.entry(0, 1)->sampleCount, 5);
}

TEST_F(BuilderTest, CoarseFilterRejectsOffsetOutliers) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(0, 1, 90.0, 8.5);  // 4.5 m off: beyond 3 m.
  BuilderReport report;
  builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 1u);
}

TEST_F(BuilderTest, CoarseFilterComparesAgainstMapNotSamples) {
  // Consistently wrong observations (e.g. from misestimated locations)
  // are all rejected even though they agree with each other.
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 10; ++i) builder.addObservation(0, 1, 180.0, 4.0);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 10u);
  EXPECT_FALSE(db.hasEntry(0, 1));
}

TEST_F(BuilderTest, FineFilterRejectsInliersBeyondTwoSigma) {
  BuilderConfig config;
  config.coarseDirectionThresholdDeg = 20.0;
  config.minSamplesPerPair = 3;
  MotionDatabaseBuilder builder(plan_, config);
  // A tight cluster plus one sample inside the coarse gate but far from
  // the cluster (in offset).
  for (int i = 0; i < 20; ++i)
    builder.addObservation(0, 1, 90.0, 4.0 + 0.02 * (i % 5 - 2));
  builder.addObservation(0, 1, 90.0, 5.5);  // Within 3 m of map's 4 m.
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 0u);
  EXPECT_EQ(report.rejectedFine, 1u);
  EXPECT_EQ(db.entry(0, 1)->sampleCount, 20);
}

TEST_F(BuilderTest, FineFilterCanBeDisabled) {
  BuilderConfig config;
  config.enableFineFilter = false;
  MotionDatabaseBuilder builder(plan_, config);
  for (int i = 0; i < 20; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(0, 1, 90.0, 5.5);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedFine, 0u);
  EXPECT_EQ(db.entry(0, 1)->sampleCount, 21);
}

TEST_F(BuilderTest, CoarseFilterCanBeDisabled) {
  BuilderConfig config;
  config.enableCoarseFilter = false;
  config.enableFineFilter = false;
  MotionDatabaseBuilder builder(plan_, config);
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 180.0, 9.0);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.rejectedCoarse, 0u);
  ASSERT_TRUE(db.hasEntry(0, 1));
  EXPECT_NEAR(db.entry(0, 1)->muDirectionDeg, 180.0, 1e-9);
}

TEST_F(BuilderTest, MinSamplesGate) {
  BuilderConfig config;
  config.minSamplesPerPair = 3;
  MotionDatabaseBuilder builder(plan_, config);
  builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(0, 1, 90.0, 4.0);
  BuilderReport report;
  const auto db = builder.build(report);
  EXPECT_EQ(report.underMinSamples, 1u);
  EXPECT_FALSE(db.hasEntry(0, 1));
}

TEST_F(BuilderTest, SigmaFloorsApplied) {
  BuilderConfig config;
  config.minDirectionSigmaDeg = 2.0;
  config.minOffsetSigmaMeters = 0.05;
  MotionDatabaseBuilder builder(plan_, config);
  // Identical samples would otherwise fit sigma = 0.
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  const auto db = builder.build();
  EXPECT_GE(db.entry(0, 1)->sigmaDirectionDeg, 2.0);
  EXPECT_GE(db.entry(0, 1)->sigmaOffsetMeters, 0.05);
}

TEST_F(BuilderTest, DirectionFitHandlesNorthWrap) {
  // A pair whose map heading is north: samples straddle 0/360.
  env::FloorPlan vertical(6.0, 12.0);
  vertical.addReferenceLocation({2.0, 2.0});
  vertical.addReferenceLocation({2.0, 6.0});  // Due north of 0.
  MotionDatabaseBuilder builder(vertical);
  for (double d : {355.0, 357.0, 0.0, 3.0, 5.0})
    builder.addObservation(0, 1, d, 4.0);
  const auto db = builder.build();
  ASSERT_TRUE(db.hasEntry(0, 1));
  EXPECT_LT(geometry::angularDistDeg(db.entry(0, 1)->muDirectionDeg, 0.0),
            1.0);
  EXPECT_LT(db.entry(0, 1)->sigmaDirectionDeg, 10.0);
}

TEST_F(BuilderTest, BuildIsRepeatable) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  const auto first = builder.build();
  const auto second = builder.build();
  EXPECT_EQ(first.entryCount(), second.entryCount());
  EXPECT_DOUBLE_EQ(first.entry(0, 1)->muOffsetMeters,
                   second.entry(0, 1)->muOffsetMeters);
}

TEST_F(BuilderTest, PendingObservationsTracksIntake) {
  MotionDatabaseBuilder builder(plan_);
  EXPECT_EQ(builder.pendingObservations(), 0u);
  builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(1, 2, 90.0, 4.0);
  builder.addObservation(2, 2, 0.0, 0.0);  // Self: dropped.
  EXPECT_EQ(builder.pendingObservations(), 2u);
}

TEST_F(BuilderTest, ThrowsOnUnknownLocations) {
  MotionDatabaseBuilder builder(plan_);
  EXPECT_THROW(builder.addObservation(0, 7, 90.0, 4.0),
               std::out_of_range);
  EXPECT_THROW(builder.addObservation(-1, 1, 90.0, 4.0),
               std::out_of_range);
}

TEST_F(BuilderTest, ReportCountsObservations) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 7; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(1, 1, 0.0, 0.0);
  BuilderReport report;
  builder.build(report);
  EXPECT_EQ(report.observations, 8u);
  EXPECT_EQ(report.droppedSelfPairs, 1u);
}

TEST_F(BuilderTest, SetConfigChangesSubsequentBuilds) {
  MotionDatabaseBuilder builder(plan_);
  for (int i = 0; i < 5; ++i) builder.addObservation(0, 1, 90.0, 4.0);
  builder.addObservation(0, 1, 135.0, 4.0);  // Coarse outlier.
  BuilderReport strict;
  builder.build(strict);
  EXPECT_EQ(strict.rejectedCoarse, 1u);

  BuilderConfig loose;
  loose.enableCoarseFilter = false;
  loose.enableFineFilter = false;
  builder.setConfig(loose);
  BuilderReport lax;
  builder.build(lax);
  EXPECT_EQ(lax.rejectedCoarse, 0u);
}

}  // namespace
}  // namespace moloc::core
