#include "io/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/experiment_world.hpp"
#include "util/error.hpp"

namespace moloc::io {
namespace {

/// A real simulated trace from a reduced world.
traj::Trace sampleTrace(int legs = 4) {
  eval::WorldConfig config;
  config.trainingTraces = 2;
  config.legsPerTrainingTrace = 3;
  static eval::ExperimentWorld world(config);
  return world.makeTrace(world.users().front(), legs, world.evalRng());
}

void expectTracesEqual(const traj::Trace& a, const traj::Trace& b) {
  EXPECT_EQ(a.user.name, b.user.name);
  EXPECT_EQ(a.user.heightMeters, b.user.heightMeters);
  EXPECT_EQ(a.user.trueStepLengthMeters, b.user.trueStepLengthMeters);
  EXPECT_EQ(a.compassBiasDeg, b.compassBiasDeg);
  EXPECT_EQ(a.startTruth, b.startTruth);
  ASSERT_EQ(a.initialScan.size(), b.initialScan.size());
  for (std::size_t i = 0; i < a.initialScan.size(); ++i)
    EXPECT_EQ(a.initialScan[i], b.initialScan[i]);
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    const auto& ia = a.intervals[i];
    const auto& ib = b.intervals[i];
    EXPECT_EQ(ia.fromTruth, ib.fromTruth);
    EXPECT_EQ(ia.toTruth, ib.toTruth);
    EXPECT_EQ(ia.trueDirectionDeg, ib.trueDirectionDeg);
    EXPECT_EQ(ia.trueOffsetMeters, ib.trueOffsetMeters);
    ASSERT_EQ(ia.imu.size(), ib.imu.size());
    EXPECT_EQ(ia.imu.sampleRateHz(), ib.imu.sampleRateHz());
    for (std::size_t s = 0; s < ia.imu.size(); ++s) {
      EXPECT_EQ(ia.imu[s].t, ib.imu[s].t);
      EXPECT_EQ(ia.imu[s].accelMagnitude, ib.imu[s].accelMagnitude);
      EXPECT_EQ(ia.imu[s].compassDeg, ib.imu[s].compassDeg);
      EXPECT_EQ(ia.imu[s].gyroRateDegPerSec, ib.imu[s].gyroRateDegPerSec);
    }
  }
}

TEST(TraceIo, RoundTripsSingleTrace) {
  const auto trace = sampleTrace();
  std::stringstream stream;
  saveTrace(trace, stream);
  const auto restored = loadTrace(stream);
  expectTracesEqual(trace, restored);
}

TEST(TraceIo, RoundTripsZeroLegTrace) {
  const auto trace = sampleTrace(0);
  std::stringstream stream;
  saveTrace(trace, stream);
  const auto restored = loadTrace(stream);
  EXPECT_TRUE(restored.intervals.empty());
  EXPECT_EQ(restored.startTruth, trace.startTruth);
}

TEST(TraceIo, RoundTripsTraceCollection) {
  std::vector<traj::Trace> traces{sampleTrace(3), sampleTrace(5),
                                  sampleTrace(0)};
  const std::string path = ::testing::TempDir() + "moloc_traces.txt";
  saveTraces(traces, path);
  const auto restored = loadTraces(path);
  ASSERT_EQ(restored.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i)
    expectTracesEqual(traces[i], restored[i]);
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayProducesIdenticalLocalization) {
  // The point of trace persistence: re-running a loaded trace through
  // the engine gives bit-identical fixes.
  eval::WorldConfig config;
  config.trainingTraces = 20;
  config.legsPerTrainingTrace = 10;
  eval::ExperimentWorld world(config);
  const auto& user = world.users().front();
  const auto trace = world.makeTrace(user, 6, world.evalRng());

  std::stringstream stream;
  saveTrace(trace, stream);
  const auto replayed = loadTrace(stream);

  auto engineLive = world.makeEngine();
  auto engineReplay = world.makeEngine();
  EXPECT_EQ(engineLive.localize(trace.initialScan, std::nullopt).location,
            engineReplay.localize(replayed.initialScan, std::nullopt)
                .location);
  for (std::size_t i = 0; i < trace.intervals.size(); ++i) {
    const auto live = engineLive.localize(
        trace.intervals[i].scanAtArrival,
        world.processInterval(trace.intervals[i], user));
    const auto replay = engineReplay.localize(
        replayed.intervals[i].scanAtArrival,
        world.processInterval(replayed.intervals[i], replayed.user));
    EXPECT_EQ(live.location, replay.location);
    EXPECT_EQ(live.probability, replay.probability);
  }
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream stream("not-a-trace\n");
  EXPECT_THROW(loadTrace(stream), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedFile) {
  std::stringstream stream("moloc-trace v1\nuser bob 1.8 80 0.7 1.8\n");
  EXPECT_THROW(loadTrace(stream), std::runtime_error);
}

TEST(TraceIo, RejectsScanDimensionMismatch) {
  std::stringstream stream(
      "moloc-trace v1\n"
      "user bob 1.8 80 0.7 1.8\n"
      "compass_bias 0\n"
      "start 0\n"
      "initial_scan -40 -50\n"
      "interval 0 1 90 4\n"
      "scan -40\n"  // One RSS value instead of two.
      "imu 50 0\n");
  EXPECT_THROW(loadTrace(stream), std::runtime_error);
}

TEST(TraceIo, RejectsBadImuHeader) {
  std::stringstream stream(
      "moloc-trace v1\n"
      "user bob 1.8 80 0.7 1.8\n"
      "compass_bias 0\n"
      "start 0\n"
      "initial_scan -40 -50\n"
      "interval 0 1 90 4\n"
      "scan -40 -50\n"
      "imu 0 0\n");  // Zero sample rate.
  EXPECT_THROW(loadTrace(stream), std::runtime_error);
}

TEST(TraceIo, RejectsAllocationBombTraceCount) {
  // The collection header's count is untrusted input: a claimed 1e18
  // traces must be rejected *before* the vector reservation sizes
  // itself from the raw count, not fail on OOM later.  (Same class as
  // the motion-db `locations` header bomb; see kMaxTraceCount.)
  const std::string path = ::testing::TempDir() + "moloc_trace_bomb.txt";
  {
    std::ofstream out(path);
    out << "1000000000000000000 traces\n";
  }
  EXPECT_THROW(loadTraces(path), util::ParseError);
  std::remove(path.c_str());
}

TEST(TraceIo, AcceptsCountAtTheCapGrammar) {
  // A count inside the cap with too few trace bodies still fails, but
  // as a truncation parse error — proving the cap check sits on the
  // header value, not the body.
  const std::string path = ::testing::TempDir() + "moloc_trace_short.txt";
  {
    std::ofstream out(path);
    out << "2 traces\n";
  }
  EXPECT_THROW(loadTraces(path), util::ParseError);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(loadTraces("/nonexistent/traces.txt"),
               std::runtime_error);
  EXPECT_THROW(saveTraces({}, "/nonexistent/traces.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace moloc::io
