#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace moloc::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(renderPrometheus(registry), "");
}

TEST(Prometheus, CounterAndGaugeLines) {
  MetricsRegistry registry;
  registry.counter("moloc_events_total", "Events seen").inc(42.0);
  registry.gauge("moloc_depth", "Queue depth").set(-3.0);

  const std::string text = renderPrometheus(registry);
  EXPECT_TRUE(contains(text, "# HELP moloc_depth Queue depth\n"));
  EXPECT_TRUE(contains(text, "# TYPE moloc_depth gauge\n"));
  EXPECT_TRUE(contains(text, "moloc_depth -3\n"));
  EXPECT_TRUE(contains(text,
                       "# HELP moloc_events_total Events seen\n"));
  EXPECT_TRUE(contains(text, "# TYPE moloc_events_total counter\n"));
  EXPECT_TRUE(contains(text, "moloc_events_total 42\n"));
  // Families render sorted by name.
  EXPECT_LT(text.find("moloc_depth"), text.find("moloc_events_total"));
}

TEST(Prometheus, LabeledSeriesShareOneHeader) {
  MetricsRegistry registry;
  registry.counter("moloc_stage_total", "Per-stage", {{"stage", "a"}})
      .inc();
  registry.counter("moloc_stage_total", "Per-stage", {{"stage", "b"}})
      .inc(2.0);

  const std::string text = renderPrometheus(registry);
  // One HELP/TYPE pair for the family, one sample line per series.
  std::size_t helpCount = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# HELP", pos)) != std::string::npos) {
    ++helpCount;
    ++pos;
  }
  EXPECT_EQ(helpCount, 1u);
  EXPECT_TRUE(contains(text, "moloc_stage_total{stage=\"a\"} 1\n"));
  EXPECT_TRUE(contains(text, "moloc_stage_total{stage=\"b\"} 2\n"));
}

TEST(Prometheus, EscapesLabelValues) {
  MetricsRegistry registry;
  registry
      .counter("moloc_weird_total", "Escaping",
               {{"path", "a\\b\"c\nd"}})
      .inc();
  const std::string text = renderPrometheus(registry);
  EXPECT_TRUE(contains(
      text, "moloc_weird_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"));
}

TEST(Prometheus, HistogramCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("moloc_lat_seconds", "Latency",
                                    {0.5, 1.0, 2.0});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(0.75);
  h.observe(5.0);  // Overflow.

  const std::string text = renderPrometheus(registry);
  EXPECT_TRUE(contains(text, "# TYPE moloc_lat_seconds histogram\n"));
  // Buckets are cumulative.
  EXPECT_TRUE(contains(text, "moloc_lat_seconds_bucket{le=\"0.5\"} 1\n"));
  EXPECT_TRUE(contains(text, "moloc_lat_seconds_bucket{le=\"1\"} 3\n"));
  EXPECT_TRUE(contains(text, "moloc_lat_seconds_bucket{le=\"2\"} 3\n"));
  EXPECT_TRUE(
      contains(text, "moloc_lat_seconds_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(contains(text, "moloc_lat_seconds_sum 6.75\n"));
  EXPECT_TRUE(contains(text, "moloc_lat_seconds_count 4\n"));
}

TEST(Prometheus, LabeledHistogramPutsLeLast) {
  MetricsRegistry registry;
  registry
      .histogram("moloc_stage_seconds", "Stage", {1.0},
                 {{"stage", "fusion"}})
      .observe(0.5);
  const std::string text = renderPrometheus(registry);
  EXPECT_TRUE(contains(
      text, "moloc_stage_seconds_bucket{stage=\"fusion\",le=\"1\"} 1\n"));
  EXPECT_TRUE(contains(text,
                       "moloc_stage_seconds_sum{stage=\"fusion\"} 0.5\n"));
  EXPECT_TRUE(contains(text,
                       "moloc_stage_seconds_count{stage=\"fusion\"} 1\n"));
}

TEST(Prometheus, ValueFormattingRoundTripsDoubles) {
  MetricsRegistry registry;
  registry.gauge("moloc_pi", "").set(3.141592653589793);
  const std::string text = renderPrometheus(registry);
  // %.17g must preserve the double exactly; no HELP line when help is
  // empty.
  EXPECT_TRUE(contains(text, "moloc_pi 3.1415926535897931\n"));
  EXPECT_FALSE(contains(text, "# HELP moloc_pi"));
}

TEST(Prometheus, WritesFile) {
  MetricsRegistry registry;
  registry.counter("moloc_file_total", "File test").inc(7.0);
  const std::string path =
      ::testing::TempDir() + "moloc_prometheus_test.prom";
  writePrometheusFile(registry, path);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), renderPrometheus(registry));
  std::remove(path.c_str());
}

TEST(Prometheus, WriteToBadPathThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(
      writePrometheusFile(registry, "/nonexistent-dir/metrics.prom"),
      std::runtime_error);
}

}  // namespace
}  // namespace moloc::obs
