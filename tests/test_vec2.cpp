#include "geometry/vec2.hpp"

#include <gtest/gtest.h>

namespace moloc::geometry {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW of a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);  // a is CW of b
  EXPECT_DOUBLE_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndSquaredNorm) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.squaredNorm(), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroStaysZero) {
  const Vec2 z{};
  EXPECT_EQ(z.normalized(), (Vec2{0.0, 0.0}));
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace moloc::geometry
