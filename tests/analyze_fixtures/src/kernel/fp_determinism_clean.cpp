// fp-determinism negatives: ordered comparisons, sentinel tests
// against literals, integer equality, and plain mul+add (which the
// build keeps uncontracted via -ffp-contract=off, not via this rule).
#include <cstdint>

namespace {

double mulAdd(double a, double b, double c) { return a * b + c; }

bool better(double lhs, double rhs) { return lhs < rhs; }

// Comparing against a literal is a sentinel test, not a computed
// identity check.
bool isUnset(double score) { return score == 0.0; }

bool sameBucket(std::uint32_t a, std::uint32_t b) { return a == b; }

}  // namespace

double fixtureFpDeterminismClean(double a, double b, double c) {
  return mulAdd(a, b, c) + (better(a, b) ? 1.0 : 0.0) +
         (isUnset(c) ? 1.0 : 0.0) + (sameBucket(1, 2) ? 1.0 : 0.0);
}
