// fp-determinism: FMA contraction and exact float equality between
// computed values fork the scalar and AVX2 kernels' bitwise results
// (docs/performance.md).
#include <cmath>

namespace {

double contracted(double a, double b, double c) {
  return std::fma(a, b, c);  // expect: fp-determinism
}

double builtinContracted(double a, double b, double c) {
  return __builtin_fma(a, b, c);  // expect: fp-determinism
}

bool sameScore(double lhsScore, double rhsScore) {
  return lhsScore == rhsScore;  // expect: fp-determinism
}

bool divergedScore(float lhsScore, float rhsScore) {
  return lhsScore != rhsScore;  // expect: fp-determinism
}

}  // namespace

double fixtureFpDeterminism(double a, double b, double c) {
  return contracted(a, b, c) + builtinContracted(a, b, c) +
         (sameScore(a, b) ? 1.0 : 0.0) +
         (divergedScore(static_cast<float>(a), static_cast<float>(b)) ? 1.0
                                                                      : 0.0);
}
