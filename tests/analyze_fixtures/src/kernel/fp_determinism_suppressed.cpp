// fp-determinism violation with a reasoned suppression.
namespace {

bool bitwiseIdentityCheck(double reference, double simd) {
  return reference == simd;  // lint:allow(fp-determinism): this IS the bitwise-identity assertion the kernels are tested by
}

}  // namespace

bool fixtureFpDeterminismSuppressed(double a, double b) {
  return bitwiseIdentityCheck(a, b);
}
