// typed-errors negatives: project-style typed errors (derived from
// the std bases) and rethrows are exactly what the rule steers
// toward, so neither may fire.
#include <stdexcept>
#include <string>

namespace util {

/// Stands in for src/util/error.hpp's hierarchy: the *derived* type
/// is fine — the rule bans only the bare std bases.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what)
      : std::invalid_argument(what) {}
};

}  // namespace util

namespace {

void rejectTyped(int v) {
  if (v < 0) throw util::ConfigError("negative");
  if (v > 100) throw util::ParseError("too large");
}

void passThrough(int v) {
  try {
    rejectTyped(v);
  } catch (const util::ParseError&) {
    throw;  // bare rethrow has no type to retype
  }
}

// out_of_range derives from logic_error but is not the bare base.
void checkIndex(std::size_t i, std::size_t n) {
  if (i >= n) throw std::out_of_range("index");
}

}  // namespace

int fixtureTypedErrorsClean() {
  passThrough(1);
  checkIndex(0, 1);
  return 0;
}
