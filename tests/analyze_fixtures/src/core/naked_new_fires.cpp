// naked-new: every `new` expression — ownership in this tree is
// unique_ptr/vector, and a bare allocation leaks on the first
// exception path.
namespace {

struct Node {
  int value = 0;
  Node* next = nullptr;
};

Node* makeNode(int v) {
  Node* n = new Node;  // expect: naked-new
  n->value = v;
  return n;
}

int* makeBuffer() {
  return new int[8];  // expect: naked-new
}

}  // namespace

int fixtureNakedNew() {
  Node* n = makeNode(1);
  int* buf = makeBuffer();
  const int out = n->value + buf[0];
  delete n;
  delete[] buf;
  return out;
}
