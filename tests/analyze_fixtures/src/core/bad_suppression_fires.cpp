// bad-suppression: malformed or typo'd lint:allow markers are
// findings themselves — a suppression that silently does nothing is
// worse than none.  Note bad-suppression cannot itself be suppressed.

void emptyRuleName();  // lint:allow(): no rule between the parens -- expect: bad-suppression

void missingReason();  // lint:allow(rand) expect: bad-suppression

// expect-next-line: bad-suppression
void emptyReason();  // lint:allow(rand):

void unknownRule();  // lint:allow(untrused-alloc): typo'd rule id suppresses nothing -- expect: bad-suppression

// The finding below survives even though the same line carries a
// well-formed lint:allow(bad-suppression) — the rule is exempt from
// the suppression mechanism it polices.
void unsuppressable();  // lint:allow(rand) lint:allow(bad-suppression): nice try -- expect: bad-suppression

void fixtureBadSuppression() {}
