// naked-new negatives: smart pointers and containers allocate without
// a `new` expression in user code.
#include <memory>
#include <vector>

namespace {

struct Node {
  int value = 0;
};

std::unique_ptr<Node> makeNode(int v) {
  auto n = std::make_unique<Node>();
  n->value = v;
  return n;
}

std::vector<int> makeBuffer() { return std::vector<int>(8, 0); }

}  // namespace

int fixtureNakedNewClean() {
  return makeNode(1)->value + static_cast<int>(makeBuffer().size());
}
