// bad-suppression negatives: well-formed markers with known rules and
// real reasons parse cleanly, even when no finding exists on the line
// for them to suppress.
namespace {

int idle() { return 0; }  // lint:allow(rand): documents a historical exemption; nothing fires here

}  // namespace

int fixtureBadSuppressionClean() { return idle(); }
