// typed-errors violation with a reasoned suppression: no findings.
#include <stdexcept>

namespace {

void reject(int v) {
  if (v < 0)
    throw std::invalid_argument("negative");  // lint:allow(typed-errors): exception type is pinned by a third-party API contract
}

}  // namespace

int fixtureTypedErrorsSuppressed() {
  reject(1);
  return 0;
}
