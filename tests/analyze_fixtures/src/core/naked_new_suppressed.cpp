// naked-new violation with a reasoned suppression.
namespace {

struct Arena {
  int slots[64] = {};
};

Arena* globalArena() {
  static Arena* arena = new Arena;  // lint:allow(naked-new): intentional leak — function-local singleton must outlive all users at shutdown
  return arena;
}

}  // namespace

int fixtureNakedNewSuppressed() { return globalArena()->slots[0]; }
