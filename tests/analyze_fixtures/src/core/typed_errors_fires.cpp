// typed-errors: bare std exception types thrown outside src/util/.
// PR 7's hostile-wire-value escape shipped exactly this way.
#include <stdexcept>
#include <string>

namespace {

void rejectConfig(int v) {
  if (v < 0)
    throw std::invalid_argument("negative");  // expect: typed-errors
}

void rejectData(const std::string& s) {
  if (s.empty()) throw std::runtime_error("empty");  // expect: typed-errors
}

void rejectState(bool open) {
  if (!open) throw std::logic_error("closed");  // expect: typed-errors
}

}  // namespace

int fixtureTypedErrors() {
  rejectConfig(1);
  rejectData("x");
  rejectState(true);
  return 0;
}
