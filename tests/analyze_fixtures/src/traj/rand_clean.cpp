// rand negatives: <random> engines are seedable and stream-local, and
// a project function that happens to be *named* rand is not libc rand.
#include <random>

namespace sim {

/// Project-local generator; same spelling, but the callee resolves to
/// this declaration (not a system header), so the rule stays quiet.
inline int rand(std::mt19937& gen) {
  std::uniform_int_distribution<int> dist(0, 99);
  return dist(gen);
}

}  // namespace sim

int fixtureRandClean(unsigned seed) {
  std::mt19937 gen(seed);
  return sim::rand(gen) + sim::rand(gen);
}
