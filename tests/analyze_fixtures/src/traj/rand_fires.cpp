// rand: libc rand()/srand() share hidden global state and break
// seed-deterministic simulation replays.
#include <cstdlib>

unsigned fixtureRand(unsigned seed) {
  srand(seed);  // expect: rand
  const int a = rand();  // expect: rand
  const int b = std::rand();  // expect: rand
  return static_cast<unsigned>(a + b);
}
