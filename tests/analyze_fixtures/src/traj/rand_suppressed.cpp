// rand violation with a reasoned suppression.
#include <cstdlib>

int fixtureRandSuppressed() {
  return std::rand();  // lint:allow(rand): comparing against the libc generator in a calibration experiment
}
