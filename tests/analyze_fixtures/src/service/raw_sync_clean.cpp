// raw-sync negatives: project-style annotated wrappers (mocked — only
// the type identity matters) and an atomic, which needs no lock.
#include <atomic>

namespace util {

/// Stands in for the TSA-annotated src/util/mutex.hpp wrapper.
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace util

namespace {

class Counter {
 public:
  void bump() {
    util::MutexLock hold(mu_);
    ++value_;
  }
  long read() const { return snapshot_.load(); }
  void publish() { snapshot_.store(value_); }

 private:
  util::Mutex mu_;
  long value_ = 0;
  std::atomic<long> snapshot_{0};
};

}  // namespace

long fixtureRawSyncClean() {
  Counter c;
  c.bump();
  c.publish();
  return c.read();
}
