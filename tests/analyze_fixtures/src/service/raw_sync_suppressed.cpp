// raw-sync violation with a reasoned suppression.
#include <mutex>

namespace {

class Bridge {
 public:
  void touch() {
    std::lock_guard<std::mutex> hold(mu_);  // lint:allow(raw-sync): interfacing with a third-party callback API that hands us its own std::mutex
    ++value_;
  }

 private:
  std::mutex mu_;  // lint:allow(raw-sync): interfacing with a third-party callback API that hands us its own std::mutex
  long value_ = 0;
};

}  // namespace

void fixtureRawSyncSuppressed() {
  Bridge b;
  b.touch();
}
