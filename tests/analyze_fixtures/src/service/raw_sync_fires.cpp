// raw-sync: std lock types outside src/util/ — locking the clang
// thread-safety analysis cannot see (both PR 5 races hid this way).
#include <mutex>

namespace {

class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> hold(mu_);  // expect: raw-sync
    ++value_;
  }
  long read() {
    std::unique_lock<std::mutex> hold(mu_);  // expect: raw-sync
    return value_;
  }

 private:
  std::mutex mu_;  // expect: raw-sync
  long value_ = 0;
};

}  // namespace

long fixtureRawSync() {
  Counter c;
  c.bump();
  return c.read();
}
