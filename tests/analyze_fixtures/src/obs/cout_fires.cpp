// cout: library code must not write to process-global streams; report
// through obs:: metrics or a typed error instead.
#include <iostream>

void fixtureCout(long value) {
  std::cout << "value=" << value << "\n";  // expect: cout
  if (value < 0) {
    std::cerr << "negative value\n";  // expect: cout
  }
}
