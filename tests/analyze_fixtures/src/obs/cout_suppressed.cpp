// cout violation with a reasoned suppression.
#include <iostream>

void fixtureCoutSuppressed() {
  std::cout << "moloc self-test ok\n";  // lint:allow(cout): this TU is compiled into the smoke-test binary, not the library
}
