// cout negatives: writing to a caller-supplied stream is fine, and an
// identifier merely *named* cout outside namespace std is not the
// global stream.
#include <ostream>

namespace {

struct Channels {
  long cout = 0;  // deliberately adversarial field name
};

}  // namespace

void fixtureCoutClean(std::ostream& out, long value) {
  out << "value=" << value << "\n";
  Channels ch;
  ch.cout = value;
  out << ch.cout;
}
