// untrusted-alloc: allocations sized by decoded values with no
// dominating cap check.  Mirrors the PR 5 checkpoint allocation bomb.
#include <cstdint>
#include <vector>

namespace {

struct Cursor {
  const unsigned char* data = nullptr;
  std::uint64_t at = 0;
  std::uint32_t readU32() { return static_cast<std::uint32_t>(at++); }
  std::uint64_t readU64() { return at++; }
};

// Taint via the variable's initializer: `count` comes straight from
// the wire and nothing bounds it before the reserve.
std::vector<int> decodeRecords(Cursor& in) {
  const std::uint32_t count = in.readU32();
  std::vector<int> out;
  out.reserve(count);  // expect: untrusted-alloc
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(1);
  return out;
}

// Taint via a decode-named call directly in the size expression.
std::vector<double> decodeSamples(Cursor& in) {
  std::vector<double> out;
  out.resize(in.readU64());  // expect: untrusted-alloc
  return out;
}

// Vector size-constructor in a parse-context function.
std::vector<unsigned char> parseBlob(Cursor& in) {
  const std::uint64_t size = in.readU64();
  std::vector<unsigned char> blob(size);  // expect: untrusted-alloc
  return blob;
}

// new[] sized by a decoded count: both the allocation-bomb rule and
// the ownership rule fire.
double* loadTable(Cursor& in) {
  const std::uint32_t n = in.readU32();
  return new double[n];  // expect: untrusted-alloc expect: naked-new
}

}  // namespace

int fixtureMain() {
  Cursor c;
  return static_cast<int>(decodeRecords(c).size() + decodeSamples(c).size() +
                          parseBlob(c).size()) +
         (loadTable(c) != nullptr ? 1 : 0);
}
