// untrusted-alloc violations carrying a reasoned lint:allow — the
// analyzer must honor the suppression and report nothing.
#include <cstdint>
#include <vector>

namespace {

struct Cursor {
  std::uint64_t at = 0;
  std::uint32_t readU32() { return static_cast<std::uint32_t>(at++); }
};

std::vector<int> decodeRecords(Cursor& in) {
  const std::uint32_t count = in.readU32();
  std::vector<int> out;
  // lint:allow lives on the finding's own line, same as lint.sh.
  out.reserve(count);  // lint:allow(untrusted-alloc): caller pre-validates count against the section header
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(1);
  return out;
}

}  // namespace

int fixtureMain2() {
  Cursor c;
  return static_cast<int>(decodeRecords(c).size());
}
