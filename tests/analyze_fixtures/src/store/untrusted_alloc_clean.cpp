// untrusted-alloc near-misses: every allocation here is dominated by
// a cap check (or is simply not attacker-sized) and must NOT fire.
// Each pattern is lifted from a real guard in the main tree.
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace {

constexpr std::uint64_t kMaxRecords = 1u << 20;

struct Cursor {
  std::uint64_t at = 0;
  std::uint64_t remainingBytes = 0;
  std::uint32_t readU32() { return static_cast<std::uint32_t>(at++); }
  std::uint64_t readU64() { return at++; }
  std::uint64_t remaining() const { return remainingBytes; }
};

void checkCount(const Cursor& in, std::uint64_t count,
                std::uint64_t entryBytes) {
  if (count > in.remaining() / entryBytes)
    throw std::out_of_range("count exceeds remaining data");
}

std::uint64_t checkedCount(Cursor& in, std::uint64_t entryBytes) {
  const std::uint64_t count = in.readU64();
  checkCount(in, count, entryBytes);
  return count;
}

// Dominated by an IfStmt on the decoded variable (trace_io.cpp shape).
std::vector<int> decodeWithIfGuard(Cursor& in) {
  const std::uint64_t count = in.readU64();
  if (count > kMaxRecords) throw std::out_of_range("count out of range");
  std::vector<int> out;
  out.reserve(count);
  return out;
}

// Dominated by a guard-named call taking the variable (wire.cpp shape).
std::vector<int> decodeWithCheckCall(Cursor& in) {
  const std::uint32_t count = in.readU32();
  checkCount(in, count, 8);
  std::vector<int> out;
  out.reserve(count);
  return out;
}

// Dominated inside the initializer itself (checkpoint.cpp shape).
std::vector<int> decodeWithCheckedInit(Cursor& in) {
  const std::uint64_t count = checkedCount(in, 16);
  std::vector<int> out;
  out.reserve(count);
  return out;
}

// A constant-size allocation cannot be attacker-controlled.
std::vector<int> decodeFixed(Cursor& in) {
  std::vector<int> out;
  out.reserve(64);
  out.push_back(static_cast<int>(in.readU32()));
  return out;
}

// Sizing one container from another's .size() is not a decoded
// length, even inside a parse-context function.
std::vector<int> parseMirror(const std::vector<int>& existing) {
  std::vector<int> out;
  out.reserve(existing.size());
  return out;
}

// Outside a parse context with no tainted source, a plain computed
// size is the caller's business.
std::vector<double> makeGrid(std::size_t rows, std::size_t cols) {
  std::vector<double> out;
  out.reserve(rows * cols);
  return out;
}

}  // namespace

int fixtureMain3() {
  Cursor c;
  c.remainingBytes = 1024;
  return static_cast<int>(decodeWithIfGuard(c).size() +
                          decodeWithCheckCall(c).size() +
                          decodeWithCheckedInit(c).size() +
                          decodeFixed(c).size() + parseMirror({}).size() +
                          makeGrid(2, 2).size());
}
