// narrowing-length negatives: the sanctioned checked-cast helper,
// explicit casts, compile-time constants, and widening conversions.
#include <cstdint>
#include <stdexcept>
#include <string>

namespace util {

/// Stands in for src/util/checked_cast.hpp.
inline std::uint32_t checkedU32(std::uint64_t value, const char* field) {
  if (value > 0xffffffffull) throw std::out_of_range(field);
  return static_cast<std::uint32_t>(value);
}

}  // namespace util

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
}

struct Header {
  std::uint32_t sectionCount;
};

// The sanctioned route: checked, throwing narrowing.
void encodeChecked(std::string& out, const std::string& payload) {
  putU32(out, util::checkedU32(payload.size(), "payload length"));
}

// An explicit cast is a reviewed decision, not an accident.
void encodeCast(std::string& out, const std::string& payload) {
  putU32(out, static_cast<std::uint32_t>(payload.size()));
}

// Compile-time constants cannot truncate at runtime.
void encodeConstant(std::string& out) {
  putU32(out, sizeof(Header));
  putU32(out, 12);
}

// Widening is always fine.
std::uint64_t total(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t sum = a;
  return sum + b;
}

}  // namespace

std::uint64_t fixtureNarrowingClean(const std::string& payload) {
  std::string out;
  encodeChecked(out, payload);
  encodeCast(out, payload);
  encodeConstant(out);
  return total(1, 2) + out.size();
}
