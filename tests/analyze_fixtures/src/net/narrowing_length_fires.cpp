// narrowing-length: implicit 64-bit -> 32-bit integer conversions in
// framing code.  A u32 length field computed from size_t silently
// truncates past 4 GiB and reframes as a different, CRC-valid
// message.
#include <cstdint>
#include <string>

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
}

// Implicit conversion at a call argument.
void encodeLength(std::string& out, const std::string& payload) {
  putU32(out, payload.size());  // expect: narrowing-length
}

// Implicit conversion initializing a 32-bit variable.
std::uint32_t frameLength(const std::string& payload) {
  const std::uint32_t length = payload.size();  // expect: narrowing-length
  return length;
}

// Implicit conversion at a return.
std::uint32_t sectionCount(std::uint64_t raw) {
  return raw / 16;  // expect: narrowing-length
}

// Implicit conversion through an assignment.
void storeLength(std::uint32_t& slot, std::uint64_t total) {
  slot = total + 1;  // expect: narrowing-length
}

}  // namespace

std::uint32_t fixtureNarrowing(const std::string& payload) {
  std::string out;
  encodeLength(out, payload);
  std::uint32_t slot = 0;
  storeLength(slot, payload.size());
  return frameLength(payload) + sectionCount(slot) +
         static_cast<std::uint32_t>(out.size());
}
