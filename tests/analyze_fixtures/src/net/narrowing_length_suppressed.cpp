// narrowing-length violation with a reasoned suppression.
#include <cstdint>
#include <string>

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
}

void encodeLength(std::string& out, const std::string& payload) {
  putU32(out, payload.size());  // lint:allow(narrowing-length): payload is capped at kMaxPayloadBytes (16 MiB) three frames up
}

}  // namespace

void fixtureNarrowingSuppressed(std::string& out, const std::string& p) {
  encodeLength(out, p);
}
