// raw-eintr negatives.  The three-line wrapped idiom is the second
// committed regression against tools/lint.sh: its two-line window
// cannot see `retryEintr` from the `return ::read(...)` line and
// flags correct code; the AST check sees the call inside the
// wrapper's argument and stays silent.
#include <fcntl.h>
#include <poll.h>
#include <sstream>
#include <unistd.h>

namespace util {

template <typename Fn>
auto retryEintr(Fn fn) -> decltype(fn()) {
  return fn();
}

}  // namespace util

namespace {

// Single-line wrapped call.
int openWrapped(const char* path) {
  return util::retryEintr([&] { return ::open(path, O_RDONLY); });
}

// The three-line idiom lint.sh false-positives on.
long readWrappedMultiline(int fd, char* buf, unsigned long n) {
  return util::retryEintr(
      [&] {
        return ::read(fd, buf, n);
      });
}

// ::close must not be retried (the fd is gone either way; a retry can
// close a recycled descriptor) and the poll loop treats EINTR as an
// ordinary wakeup — both are exempt by design.
int closeAndPoll(int fd) {
  struct pollfd p{fd, POLLIN, 0};
  const int ready = ::poll(&p, 1, 0);
  ::close(fd);
  return ready;
}

// A *member* named like a syscall is not the syscall.
long streamOpen() {
  std::stringstream stream;
  stream.write("x", 1);
  return static_cast<long>(stream.tellp());
}

}  // namespace

long fixtureRawEintrClean(int fd, char* buf) {
  return openWrapped("/dev/null") + readWrappedMultiline(fd, buf, 1) +
         closeAndPoll(fd) + streamOpen();
}
