// raw-eintr: interruptible syscalls outside util::retryEintr.
//
// The second case is the committed regression against tools/lint.sh:
// its two-line window sees `retryEintr` on the previous line and
// stays silent, but the ::read is NOT inside the wrapper — a SIGTERM
// during the read still surfaces as a spurious failure.  The AST
// check tracks the wrapper's argument subtree, not text proximity.
#include <fcntl.h>
#include <unistd.h>

namespace util {

template <typename Fn>
auto retryEintr(Fn fn) -> decltype(fn()) {
  return fn();
}

}  // namespace util

namespace {

long bareRead(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);  // expect: raw-eintr
}

long windowMissRegression(const char* path, char* buf, unsigned long n) {
  const int fd = util::retryEintr([&] { return ::open(path, O_RDONLY); });
  const long got = ::read(fd, buf, n);  // expect: raw-eintr
  ::close(fd);
  return got;
}

}  // namespace

long fixtureRawEintr(int fd, char* buf) {
  return bareRead(fd, buf, 1) + windowMissRegression("/dev/null", buf, 1);
}
