// raw-eintr violation with a reasoned suppression: no findings.
#include <unistd.h>

namespace {

long drainOnce(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);  // lint:allow(raw-eintr): EINTR here is a deliberate wakeup path, handled by the caller's loop
}

}  // namespace

long fixtureRawEintrSuppressed(int fd, char* buf) {
  return drainOnce(fd, buf, 1);
}
