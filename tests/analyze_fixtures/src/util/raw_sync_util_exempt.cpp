// Scope negative: src/util/ is where the annotated wrappers are
// *implemented*, so raw-sync and typed-errors do not apply here —
// this std::mutex and bare throw must produce no findings.
#include <mutex>
#include <stdexcept>

namespace util {

class WrapperImpl {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

void rejectUtil(int v) {
  if (v < 0) throw std::invalid_argument("negative");
}

}  // namespace util

void fixtureUtilExempt() {
  util::WrapperImpl w;
  w.lock();
  w.unlock();
  util::rejectUtil(1);
}
