#include "sensors/gyroscope_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace moloc::sensors {
namespace {

TEST(GyroscopeModel, StraightWalkRatesAverageToBias) {
  GyroscopeModel gyro;
  util::Rng rng(1);
  const auto rates = gyro.straightWalkRates(5000, 0.25, rng);
  EXPECT_NEAR(util::mean(rates), 0.25, 0.1);
}

TEST(GyroscopeModel, NoiseMagnitudeMatchesSigma) {
  GyroParams params;
  params.noiseSigmaDegPerSec = 2.0;
  GyroscopeModel gyro(params);
  util::Rng rng(2);
  const auto rates = gyro.straightWalkRates(5000, 0.0, rng);
  EXPECT_NEAR(util::stddev(rates), 2.0, 0.15);
}

TEST(GyroscopeModel, BiasSpreadMatchesSigma) {
  GyroParams params;
  params.biasSigmaDegPerSec = 0.5;
  GyroscopeModel gyro(params);
  util::Rng rng(3);
  std::vector<double> biases;
  for (int i = 0; i < 4000; ++i) biases.push_back(gyro.drawBias(rng));
  EXPECT_NEAR(util::mean(biases), 0.0, 0.05);
  EXPECT_NEAR(util::stddev(biases), 0.5, 0.05);
}

TEST(GyroscopeModel, RatesTrackHeadingDerivative) {
  GyroParams params;
  params.noiseSigmaDegPerSec = 0.0;
  GyroscopeModel gyro(params);
  util::Rng rng(4);
  // A 90-degree turn over 10 samples at 10 Hz: 9 deg per sample
  // = 90 deg/s while turning.
  std::vector<double> headings;
  for (int i = 0; i <= 10; ++i) headings.push_back(9.0 * i);
  const auto rates = gyro.rates(headings, 10.0, 0.0, rng);
  ASSERT_EQ(rates.size(), headings.size());
  EXPECT_DOUBLE_EQ(rates[0], 0.0);  // No rate into the first sample.
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_NEAR(rates[i], 90.0, 1e-9);
}

TEST(GyroscopeModel, RatesHandleNorthWrap) {
  GyroParams params;
  params.noiseSigmaDegPerSec = 0.0;
  GyroscopeModel gyro(params);
  util::Rng rng(5);
  const std::vector<double> headings{358.0, 0.0, 2.0};
  const auto rates = gyro.rates(headings, 10.0, 0.0, rng);
  // 2 degrees per 0.1 s = +20 deg/s, not -3580.
  EXPECT_NEAR(rates[1], 20.0, 1e-9);
  EXPECT_NEAR(rates[2], 20.0, 1e-9);
}

TEST(GyroscopeModel, RequestedCountProduced) {
  GyroscopeModel gyro;
  util::Rng rng(6);
  EXPECT_EQ(gyro.straightWalkRates(0, 0.0, rng).size(), 0u);
  EXPECT_EQ(gyro.straightWalkRates(33, 0.0, rng).size(), 33u);
}

}  // namespace
}  // namespace moloc::sensors
