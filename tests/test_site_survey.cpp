#include "radio/site_survey.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::radio {
namespace {

class SiteSurveyTest : public ::testing::Test {
 protected:
  SiteSurveyTest() {
    plan_.addReferenceLocation({2.0, 5.0});
    plan_.addReferenceLocation({10.0, 5.0});
    plan_.addReferenceLocation({18.0, 5.0});
    radio_ = std::make_unique<RadioEnvironment>(
        plan_, std::vector<AccessPoint>{{0, {1.0, 5.0}}, {1, {19.0, 5.0}}},
        PropagationParams{});
  }

  env::FloorPlan plan_{20.0, 10.0};
  std::unique_ptr<RadioEnvironment> radio_;
};

TEST_F(SiteSurveyTest, DefaultConfigMatchesPaperProtocol) {
  const SurveyConfig config;
  EXPECT_EQ(config.samplesPerLocation, 60);
  EXPECT_EQ(config.trainPerLocation, 40);
  EXPECT_EQ(config.motionPerLocation, 10);
  EXPECT_EQ(config.testPerLocation, 10);
}

TEST_F(SiteSurveyTest, PartitionSizesRespected) {
  util::Rng rng(1);
  const auto data = conductSurvey(*radio_, SurveyConfig{}, rng);
  ASSERT_EQ(data.samples.size(), 3u);
  for (const auto& loc : data.samples) {
    EXPECT_EQ(loc.train.size(), 40u);
    EXPECT_EQ(loc.motionEstimate.size(), 10u);
    EXPECT_EQ(loc.test.size(), 10u);
  }
}

TEST_F(SiteSurveyTest, RejectsInconsistentSplit) {
  SurveyConfig config;
  config.samplesPerLocation = 50;  // 40 + 10 + 10 != 50.
  util::Rng rng(1);
  EXPECT_THROW(conductSurvey(*radio_, config, rng),
               std::invalid_argument);
}

TEST_F(SiteSurveyTest, RejectsZeroTrainPartition) {
  SurveyConfig config;
  config.samplesPerLocation = 20;
  config.trainPerLocation = 0;
  config.motionPerLocation = 10;
  config.testPerLocation = 10;
  util::Rng rng(1);
  EXPECT_THROW(conductSurvey(*radio_, config, rng),
               std::invalid_argument);
}

TEST_F(SiteSurveyTest, DatabaseHoldsEveryLocation) {
  util::Rng rng(2);
  const auto data = conductSurvey(*radio_, SurveyConfig{}, rng);
  const auto db = data.buildDatabase();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.apCount(), 2u);
  for (int id = 0; id < 3; ++id) EXPECT_TRUE(db.contains(id));
}

TEST_F(SiteSurveyTest, RadioMapSeparatesDistantLocations) {
  util::Rng rng(3);
  const auto data = conductSurvey(*radio_, SurveyConfig{}, rng);
  const auto db = data.buildDatabase();
  // The location near AP 0 must be closer (in fingerprint space) to a
  // fresh scan at itself than to the far location's entry.
  util::Rng queryRng(4);
  const auto probe = radio_->scan({2.0, 5.0}, 0.0, queryRng);
  EXPECT_EQ(db.nearest(probe), 0);
}

TEST_F(SiteSurveyTest, DeterministicGivenSeed) {
  util::Rng rngA(9);
  util::Rng rngB(9);
  const auto dataA = conductSurvey(*radio_, SurveyConfig{}, rngA);
  const auto dataB = conductSurvey(*radio_, SurveyConfig{}, rngB);
  EXPECT_EQ(dataA.samples[1].train[0][0], dataB.samples[1].train[0][0]);
  EXPECT_EQ(dataA.samples[2].test[5][1], dataB.samples[2].test[5][1]);
}

TEST_F(SiteSurveyTest, SmallCustomSplit) {
  SurveyConfig config;
  config.samplesPerLocation = 8;
  config.trainPerLocation = 4;
  config.motionPerLocation = 2;
  config.testPerLocation = 2;
  util::Rng rng(5);
  const auto data = conductSurvey(*radio_, config, rng);
  for (const auto& loc : data.samples) {
    EXPECT_EQ(loc.train.size(), 4u);
    EXPECT_EQ(loc.motionEstimate.size(), 2u);
    EXPECT_EQ(loc.test.size(), 2u);
  }
}

}  // namespace
}  // namespace moloc::radio
