#include "eval/convergence.hpp"

#include <gtest/gtest.h>

namespace moloc::eval {
namespace {

LocalizationRecord good(double unused = 0.0) {
  (void)unused;
  return {1, 1, 0.0};
}

LocalizationRecord bad(double error = 5.0) { return {2, 1, error}; }

TEST(Convergence, EmptyInput) {
  const auto stats = analyzeConvergence({});
  EXPECT_EQ(stats.tracesAnalyzed, 0u);
  EXPECT_EQ(stats.meanErroneousBeforeFirstAccurate, 0.0);
}

TEST(Convergence, SkipsAccurateInitialWhenFiltering) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {good(), bad(), bad()},
  };
  const auto stats = analyzeConvergence(walks, true);
  EXPECT_EQ(stats.tracesAnalyzed, 0u);
}

TEST(Convergence, CountsAccurateInitialWhenNotFiltering) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {good(), bad(), bad()},
  };
  const auto stats = analyzeConvergence(walks, false);
  EXPECT_EQ(stats.tracesAnalyzed, 1u);
  EXPECT_DOUBLE_EQ(stats.meanErroneousBeforeFirstAccurate, 0.0);
}

TEST(Convergence, ElCountsErroneousBeforeFirstAccurate) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {bad(), bad(), good(), bad()},  // EL = 2.
      {bad(), good(), good()},        // EL = 1.
  };
  const auto stats = analyzeConvergence(walks, true);
  EXPECT_EQ(stats.tracesAnalyzed, 2u);
  EXPECT_DOUBLE_EQ(stats.meanErroneousBeforeFirstAccurate, 1.5);
}

TEST(Convergence, SubsequentStatsAfterFirstAccurate) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {bad(), good(), good(), bad(4.0), good()},
  };
  const auto stats = analyzeConvergence(walks, true);
  // Records after the first accurate: good, bad(4), good.
  EXPECT_NEAR(stats.subsequentAccuracy, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.subsequentMeanError, 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.subsequentMaxError, 4.0);
}

TEST(Convergence, NeverAccurateContributesFullLength) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {bad(), bad(), bad()},
      {bad(), good()},
  };
  const auto stats = analyzeConvergence(walks, true);
  EXPECT_EQ(stats.tracesAnalyzed, 2u);
  EXPECT_EQ(stats.tracesNeverAccurate, 1u);
  // (3 + 1) / 2.
  EXPECT_DOUBLE_EQ(stats.meanErroneousBeforeFirstAccurate, 2.0);
}

TEST(Convergence, EmptyWalksIgnored) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {},
      {bad(), good()},
  };
  const auto stats = analyzeConvergence(walks, true);
  EXPECT_EQ(stats.tracesAnalyzed, 1u);
}

TEST(Convergence, FirstAccurateAtEndLeavesNoSubsequent) {
  const std::vector<std::vector<LocalizationRecord>> walks{
      {bad(), bad(), good()},
  };
  const auto stats = analyzeConvergence(walks, true);
  EXPECT_DOUBLE_EQ(stats.meanErroneousBeforeFirstAccurate, 2.0);
  EXPECT_EQ(stats.subsequentAccuracy, 0.0);  // No subsequent records.
}

}  // namespace
}  // namespace moloc::eval
