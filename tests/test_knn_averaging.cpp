#include "baseline/knn_averaging.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::baseline {
namespace {

class KnnTest : public ::testing::Test {
 protected:
  KnnTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
    db_.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
    db_.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
    db_.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  }

  env::FloorPlan plan_{12.0, 4.0};
  radio::FingerprintDatabase db_;
};

TEST_F(KnnTest, RejectsZeroK) {
  EXPECT_THROW(KnnAveraging(plan_, db_, 0), std::invalid_argument);
}

TEST_F(KnnTest, KOneDegeneratesToNearest) {
  const KnnAveraging knn(plan_, db_, 1);
  const radio::Fingerprint probe({-41.0, -69.0});
  EXPECT_EQ(knn.localize(probe), db_.nearest(probe));
  EXPECT_EQ(knn.position(probe), plan_.location(0).pos);
}

TEST_F(KnnTest, ExactMatchPinsThePosition) {
  const KnnAveraging knn(plan_, db_, 3);
  const auto pos = knn.position(radio::Fingerprint({-55.0, -55.0}));
  // The exact match's Eq. 4 probability dominates.
  EXPECT_NEAR(pos.x, 6.0, 0.01);
  EXPECT_NEAR(pos.y, 2.0, 0.01);
}

TEST_F(KnnTest, MidwayScanAveragesBetweenNeighbours) {
  const KnnAveraging knn(plan_, db_, 2);
  // Equidistant between entries 0 and 1 in signal space.
  const auto pos = knn.position(radio::Fingerprint({-47.5, -62.5}));
  EXPECT_GT(pos.x, 2.5);
  EXPECT_LT(pos.x, 5.5);
}

TEST_F(KnnTest, TwinAveragingLandsInNoMansLand) {
  // The geometric failure Fig. 1 illustrates: averaging the positions
  // of two far-apart twins puts the estimate between them, near
  // neither.
  env::FloorPlan plan(30.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({28.0, 2.0});
  plan.addReferenceLocation({15.0, 2.0});
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-50.2, -60.2}));  // Twin of 0.
  db.addLocation(2, radio::Fingerprint({-90.0, -20.0}));

  const KnnAveraging knn(plan, db, 2);
  const auto pos = knn.position(radio::Fingerprint({-50.1, -60.1}));
  // Between the twins, ~13 m from either truth candidate.
  EXPECT_GT(pos.x, 8.0);
  EXPECT_LT(pos.x, 22.0);
  EXPECT_EQ(knn.localize(radio::Fingerprint({-50.1, -60.1})), 2);
}

TEST_F(KnnTest, LocalizeSnapsToNearestReference) {
  const KnnAveraging knn(plan_, db_, 3);
  const auto fix = knn.localize(radio::Fingerprint({-42.0, -68.0}));
  EXPECT_EQ(fix, 0);
}

}  // namespace
}  // namespace moloc::baseline
