#include "baseline/wifi_fingerprinting.hpp"

#include <gtest/gtest.h>

namespace moloc::baseline {
namespace {

radio::FingerprintDatabase smallDb() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
  db.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  return db;
}

TEST(WifiFingerprinting, ReturnsNearestLocation) {
  const auto db = smallDb();
  const WifiFingerprinting wifi(db);
  EXPECT_EQ(wifi.localize(radio::Fingerprint({-41.0, -69.0})), 0);
  EXPECT_EQ(wifi.localize(radio::Fingerprint({-56.0, -56.0})), 1);
  EXPECT_EQ(wifi.localize(radio::Fingerprint({-68.0, -42.0})), 2);
}

TEST(WifiFingerprinting, IsStateless) {
  const auto db = smallDb();
  const WifiFingerprinting wifi(db);
  const radio::Fingerprint probe({-41.0, -69.0});
  const auto first = wifi.localize(probe);
  wifi.localize(radio::Fingerprint({-70.0, -40.0}));
  EXPECT_EQ(wifi.localize(probe), first);
}

TEST(WifiFingerprinting, MatchesDatabaseNearest) {
  const auto db = smallDb();
  const WifiFingerprinting wifi(db);
  for (double x : {-40.0, -50.0, -60.0, -72.0}) {
    const radio::Fingerprint probe({x, -55.0});
    EXPECT_EQ(wifi.localize(probe), db.nearest(probe));
  }
}

TEST(WifiFingerprinting, TwinsConfuseIt) {
  // The paper's core observation: with near-identical fingerprints the
  // baseline flips between twins on sample noise.
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-50.1, -60.1}));
  const WifiFingerprinting wifi(db);
  EXPECT_EQ(wifi.localize(radio::Fingerprint({-49.9, -59.9})), 0);
  EXPECT_EQ(wifi.localize(radio::Fingerprint({-50.2, -60.2})), 1);
}

}  // namespace
}  // namespace moloc::baseline
