#include "core/localization_session.hpp"

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"

namespace moloc::core {
namespace {

TEST(LocalizationSession, RejectsBadStepLength) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0}));
  const MotionDatabase motion(1);
  EXPECT_THROW(LocalizationSession(fingerprints, motion, 0.0),
               std::invalid_argument);
  EXPECT_THROW(LocalizationSession(fingerprints, motion, -0.7),
               std::invalid_argument);
}

TEST(LocalizationSession, EmptyImuIsFingerprintOnly) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  fingerprints.addLocation(1, radio::Fingerprint({-70.0, -40.0}));
  const MotionDatabase motion(2);
  LocalizationSession session(fingerprints, motion, 0.72);

  const auto fix = session.onScan(radio::Fingerprint({-41.0, -69.0}),
                                  sensors::ImuTrace(50.0));
  EXPECT_EQ(fix.location, 0);
  EXPECT_FALSE(session.lastMotion().has_value());
  EXPECT_TRUE(session.hasHistory());
}

TEST(LocalizationSession, EndToEndMatchesManualPipeline) {
  // Feeding the session raw trace data must reproduce exactly what the
  // manual MotionProcessor + MoLocEngine pipeline computes.
  eval::WorldConfig config;
  config.trainingTraces = 40;
  config.legsPerTrainingTrace = 15;
  eval::ExperimentWorld world(config);
  const auto& user = world.users().front();
  const auto trace = world.makeTrace(user, 6, world.evalRng());

  LocalizationSession session(world.fingerprintDb(), world.motionDb(),
                              user.estimatedStepLengthMeters(),
                              config.moloc, config.motionProc);
  auto engine = world.makeEngine();

  const auto sessionInitial =
      session.onScan(trace.initialScan, sensors::ImuTrace(50.0));
  const auto manualInitial = engine.localize(trace.initialScan,
                                             std::nullopt);
  EXPECT_EQ(sessionInitial.location, manualInitial.location);

  for (const auto& interval : trace.intervals) {
    const auto sessionFix =
        session.onScan(interval.scanAtArrival, interval.imu);
    const auto manualFix = engine.localize(
        interval.scanAtArrival, world.processInterval(interval, user));
    EXPECT_EQ(sessionFix.location, manualFix.location);
    EXPECT_EQ(sessionFix.probability, manualFix.probability);
  }
}

TEST(LocalizationSession, WalkingIntervalsReportMotion) {
  eval::WorldConfig config;
  config.trainingTraces = 40;
  config.legsPerTrainingTrace = 15;
  eval::ExperimentWorld world(config);
  const auto& user = world.users().front();
  const auto trace = world.makeTrace(user, 3, world.evalRng());

  LocalizationSession session(world.fingerprintDb(), world.motionDb(),
                              user.estimatedStepLengthMeters());
  session.onScan(trace.initialScan, sensors::ImuTrace(50.0));
  session.onScan(trace.intervals[0].scanAtArrival,
                 trace.intervals[0].imu);
  ASSERT_TRUE(session.lastMotion().has_value());
  EXPECT_GT(session.lastMotion()->offsetMeters, 1.0);
}

TEST(LocalizationSession, ResetForgetsHistory) {
  radio::FingerprintDatabase fingerprints;
  fingerprints.addLocation(0, radio::Fingerprint({-40.0}));
  const MotionDatabase motion(1);
  LocalizationSession session(fingerprints, motion, 0.72);
  session.onScan(radio::Fingerprint({-42.0}), sensors::ImuTrace(50.0));
  EXPECT_TRUE(session.hasHistory());
  session.reset();
  EXPECT_FALSE(session.hasHistory());
}

TEST(LocalizationSession, ProbabilisticBackendWorks) {
  radio::ProbabilisticFingerprintDatabase fingerprints;
  std::vector<radio::Fingerprint> near{radio::Fingerprint({-40.0, -70.0}),
                                       radio::Fingerprint({-42.0, -68.0}),
                                       radio::Fingerprint({-41.0, -71.0})};
  std::vector<radio::Fingerprint> far{radio::Fingerprint({-70.0, -40.0}),
                                      radio::Fingerprint({-68.0, -42.0}),
                                      radio::Fingerprint({-71.0, -41.0})};
  fingerprints.addLocation(0, near);
  fingerprints.addLocation(1, far);
  const MotionDatabase motion(2);
  LocalizationSession session(fingerprints, motion, 0.72);
  const auto fix = session.onScan(radio::Fingerprint({-41.0, -69.0}),
                                  sensors::ImuTrace(50.0));
  EXPECT_EQ(fix.location, 0);
  EXPECT_THROW(LocalizationSession(fingerprints, motion, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace moloc::core
