#include "service/localization_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/localization_session.hpp"
#include "core/online_motion_database.hpp"
#include "obs/metrics.hpp"
#include "store/state_store.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "util/rng.hpp"

namespace moloc::service {
namespace {

/// The Fig. 1 twin world of test_moloc_engine, reused as the service's
/// shared immutable state.
radio::FingerprintDatabase twinFingerprints() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
  db.addLocation(2, radio::Fingerprint({-50.1, -60.1}));
  db.addLocation(3, radio::Fingerprint({-55.1, -57.1}));
  db.addLocation(4, radio::Fingerprint({-70.0, -40.0}));
  return db;
}

core::MotionDatabase twinMotion() {
  core::MotionDatabase db(5);
  db.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
  db.setEntryWithMirror(2, 3, {90.0, 4.0, 4.0, 0.3, 20});
  db.setEntryWithMirror(1, 4, {117.0, 4.0, 8.9, 0.4, 20});
  db.setEntryWithMirror(3, 4, {63.0, 4.0, 8.9, 0.4, 20});
  return db;
}

/// A deterministic walking IMU trace (3 s at 50 Hz, heading east).
sensors::ImuTrace walkingTrace(std::uint64_t seed) {
  util::Rng rng(seed);
  sensors::AccelerometerModel accel;
  sensors::CompassModel compass;
  const auto accelSeries = accel.walkingSamples(150, 1.8, rng);
  const auto compassSeries = compass.readings(90.0, 0.0, 150, rng);
  sensors::ImuTrace trace(50.0);
  for (std::size_t i = 0; i < 150; ++i)
    trace.append({i / 50.0, accelSeries[i], compassSeries[i]});
  return trace;
}

/// One session's scan sequence: a first fix at the twin, then a walk
/// east (which disambiguates the twin pair), with a per-seed RSS
/// perturbation so sessions differ.
struct Walk {
  std::vector<radio::Fingerprint> scans;
  std::vector<sensors::ImuTrace> imu;
};

Walk makeWalk(std::uint64_t seed) {
  util::Rng rng(seed);
  Walk walk;
  const double jitter = rng.uniform(-0.4, 0.4);
  walk.scans.push_back(radio::Fingerprint({-50.0 + jitter, -60.0}));
  walk.imu.push_back(sensors::ImuTrace(50.0));  // First fix: no IMU.
  walk.scans.push_back(radio::Fingerprint({-55.0 + jitter, -57.0}));
  walk.imu.push_back(walkingTrace(seed * 7 + 1));
  walk.scans.push_back(radio::Fingerprint({-70.0 + jitter, -40.0}));
  walk.imu.push_back(walkingTrace(seed * 7 + 2));
  return walk;
}

bool estimatesBitwiseEqual(const core::LocationEstimate& a,
                           const core::LocationEstimate& b) {
  if (a.location != b.location || a.probability != b.probability ||
      a.candidates.size() != b.candidates.size())
    return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i)
    if (a.candidates[i].location != b.candidates[i].location ||
        a.candidates[i].probability != b.candidates[i].probability)
      return false;
  return true;
}

ServiceConfig testConfig(std::size_t threads) {
  ServiceConfig config;
  config.threadCount = threads;
  config.shardCount = 4;
  config.engine = core::MoLocConfig{5, {}};
  return config;
}

TEST(LocalizationService, SubmitScanMatchesStandaloneSession) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(2));
  core::LocalizationSession serial(svc.fingerprints(), svc.motion(),
                                   svc.config().defaultStepLengthMeters,
                                   svc.config().engine,
                                   svc.config().motion);
  const auto walk = makeWalk(3);
  for (std::size_t r = 0; r < walk.scans.size(); ++r) {
    const auto fromService =
        svc.submitScan(7, walk.scans[r], walk.imu[r]);
    const auto fromSerial = serial.onScan(walk.scans[r], walk.imu[r]);
    EXPECT_TRUE(estimatesBitwiseEqual(fromService, fromSerial))
        << "round " << r;
  }
  EXPECT_TRUE(svc.hasSession(7));
  EXPECT_EQ(svc.sessionCount(), 1u);
}

TEST(LocalizationService, BatchIsBitwiseIdenticalToSerialExecution) {
  constexpr std::size_t kSessions = 8;
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(4));

  // Serial reference: one standalone session per user, scans in order.
  std::vector<Walk> walks;
  std::vector<std::vector<core::LocationEstimate>> serial(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    walks.push_back(makeWalk(100 + s));
    core::LocalizationSession session(
        svc.fingerprints(), svc.motion(),
        svc.config().defaultStepLengthMeters, svc.config().engine,
        svc.config().motion);
    for (std::size_t r = 0; r < walks[s].scans.size(); ++r)
      serial[s].push_back(
          session.onScan(walks[s].scans[r], walks[s].imu[r]));
  }

  // Concurrent: one batch per round across all sessions.
  for (std::size_t r = 0; r < walks.front().scans.size(); ++r) {
    std::vector<ScanRequest> batch;
    for (std::size_t s = 0; s < kSessions; ++s)
      batch.push_back({static_cast<SessionId>(s), walks[s].scans[r],
                       walks[s].imu[r]});
    const auto estimates = svc.localizeBatch(batch);
    ASSERT_EQ(estimates.size(), kSessions);
    for (std::size_t s = 0; s < kSessions; ++s)
      EXPECT_TRUE(estimatesBitwiseEqual(estimates[s], serial[s][r]))
          << "session " << s << " round " << r;
  }
  EXPECT_EQ(svc.sessionCount(), kSessions);
}

TEST(LocalizationService, SameSessionRequestsInOneBatchApplyInOrder) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(4));
  const auto walk = makeWalk(11);
  std::vector<ScanRequest> batch;
  for (std::size_t r = 0; r < walk.scans.size(); ++r)
    batch.push_back({42, walk.scans[r], walk.imu[r]});
  const auto fromBatch = svc.localizeBatch(batch);

  LocalizationService reference(twinFingerprints(), twinMotion(),
                                testConfig(1));
  for (std::size_t r = 0; r < walk.scans.size(); ++r)
    EXPECT_TRUE(estimatesBitwiseEqual(
        fromBatch[r],
        reference.submitScan(42, walk.scans[r], walk.imu[r])))
        << "round " << r;
}

TEST(LocalizationService, ThreadCountDoesNotChangeResults) {
  const auto walk = makeWalk(23);
  std::vector<ScanRequest> batch;
  for (std::size_t s = 0; s < 6; ++s)
    batch.push_back({static_cast<SessionId>(s), walk.scans[0],
                     walk.imu[0]});
  LocalizationService one(twinFingerprints(), twinMotion(),
                          testConfig(1));
  LocalizationService four(twinFingerprints(), twinMotion(),
                           testConfig(4));
  const auto a = one.localizeBatch(batch);
  const auto b = four.localizeBatch(batch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(estimatesBitwiseEqual(a[i], b[i])) << "request " << i;
}

TEST(LocalizationService, ConcurrentSubmitScansAreSafe) {
  // The ThreadSanitizer smoke test: external threads hammer submitScan
  // on overlapping sessions while a batch runs on the pool.
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(4));
  const auto walk = makeWalk(5);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&svc, &walk, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        // Sessions 0 and 1 are contended; 10+t is private to the thread.
        const SessionId id =
            (i % 3 == 0) ? static_cast<SessionId>(i % 2)
                         : static_cast<SessionId>(10 + t);
        const auto estimate =
            svc.submitScan(id, walk.scans[0], walk.imu[0]);
        if (!estimate.hasFix()) ++failures;
      }
    });
  }
  std::vector<ScanRequest> batch;
  for (std::size_t s = 20; s < 28; ++s)
    batch.push_back({static_cast<SessionId>(s), walk.scans[0],
                     walk.imu[0]});
  for (int i = 0; i < 10; ++i) (void)svc.localizeBatch(batch);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.sessionCount(), 2u + 4u + 8u);
}

TEST(LocalizationService, OpenSessionRejectsDuplicatesAndBadStepLength) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(1));
  svc.openSession(1, 0.8);
  EXPECT_THROW(svc.openSession(1, 0.7), std::invalid_argument);
  EXPECT_THROW(svc.openSession(2, 0.0), std::invalid_argument);
  EXPECT_FALSE(svc.hasSession(2));
}

TEST(LocalizationService, EndSessionDiscardsState) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(1));
  const auto walk = makeWalk(9);
  (void)svc.submitScan(5, walk.scans[0], walk.imu[0]);
  EXPECT_TRUE(svc.endSession(5));
  EXPECT_FALSE(svc.hasSession(5));
  EXPECT_FALSE(svc.endSession(5));
  EXPECT_EQ(svc.sessionCount(), 0u);
}

TEST(LocalizationService, ResetSessionForgetsWalkHistory) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(1));
  const auto walk = makeWalk(13);
  const auto first = svc.submitScan(3, walk.scans[0], walk.imu[0]);
  (void)svc.submitScan(3, walk.scans[1], walk.imu[1]);
  svc.resetSession(3);
  // After reset the same first scan must reproduce the first fix.
  const auto again = svc.submitScan(3, walk.scans[0], walk.imu[0]);
  EXPECT_TRUE(estimatesBitwiseEqual(first, again));
  svc.resetSession(999);  // Unknown session: no-op, no throw.
}

TEST(LocalizationService, BatchPropagatesRequestErrors) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(2));
  const auto walk = makeWalk(17);
  std::vector<ScanRequest> batch;
  batch.push_back({1, walk.scans[0], walk.imu[0]});
  batch.push_back(
      {2, radio::Fingerprint({std::nan(""), -60.0}), walk.imu[0]});
  EXPECT_THROW(svc.localizeBatch(batch), std::invalid_argument);
}

TEST(LocalizationService, BatchSkipsFailedSessionsRemainingRequests) {
  // Regression for the batch failure semantics: a failing request
  // must (a) keep that session's *earlier* requests in the batch
  // applied, (b) skip that session's *later* requests — a stateful
  // filter must not apply scans across a gap — and (c) leave other
  // sessions untouched.  Verified by replaying the surviving prefix
  // on a reference service and comparing the next estimate bitwise.
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(4));
  const auto walk = makeWalk(31);
  const radio::Fingerprint poisoned({std::nan(""), -60.0});

  std::vector<ScanRequest> batch;
  batch.push_back({1, walk.scans[0], walk.imu[0]});  // A: applied.
  batch.push_back({1, poisoned, walk.imu[1]});       // A: fails.
  batch.push_back({1, walk.scans[1], walk.imu[1]});  // A: skipped.
  batch.push_back({2, walk.scans[0], walk.imu[0]});  // B: applied.
  EXPECT_THROW(svc.localizeBatch(batch), std::invalid_argument);

  // Reference sessions that applied exactly the surviving prefix.
  LocalizationService reference(twinFingerprints(), twinMotion(),
                                testConfig(1));
  (void)reference.submitScan(1, walk.scans[0], walk.imu[0]);
  (void)reference.submitScan(2, walk.scans[0], walk.imu[0]);

  // If session 1 had also applied walk.scans[1] (the request after
  // its failure), this follow-up scan would fuse different motion
  // history and diverge from the reference.
  EXPECT_TRUE(estimatesBitwiseEqual(
      svc.submitScan(1, walk.scans[1], walk.imu[1]),
      reference.submitScan(1, walk.scans[1], walk.imu[1])));
  EXPECT_TRUE(estimatesBitwiseEqual(
      svc.submitScan(2, walk.scans[1], walk.imu[1]),
      reference.submitScan(2, walk.scans[1], walk.imu[1])));
}

TEST(LocalizationService, BatchRethrowsEarliestFailureInBatchOrder) {
  // Two sessions fail with distinguishable errors; the service must
  // deterministically surface the one at the smaller batch index, not
  // whichever future settles first.
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(4));
  const auto walk = makeWalk(37);
  std::vector<ScanRequest> batch;
  batch.push_back({100, radio::Fingerprint({-50.0}), walk.imu[0]});
  batch.push_back(
      {200, radio::Fingerprint({std::nan(""), -60.0}), walk.imu[0]});
  try {
    (void)svc.localizeBatch(batch);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dimensions differ"),
              std::string::npos)
        << "rethrew the later failure: " << e.what();
  }
}

#if MOLOC_METRICS_ENABLED
TEST(LocalizationService, ServiceMetricsTrackScansSessionsAndBatches) {
  obs::MetricsRegistry registry;
  ServiceConfig config = testConfig(2);
  config.metrics = &registry;
  LocalizationService svc(twinFingerprints(), twinMotion(), config);
  const auto walk = makeWalk(41);

  (void)svc.submitScan(1, walk.scans[0], walk.imu[0]);
  (void)svc.submitScan(1, walk.scans[1], walk.imu[1]);
  std::vector<ScanRequest> batch;
  batch.push_back({2, walk.scans[0], walk.imu[0]});
  batch.push_back({3, walk.scans[0], walk.imu[0]});
  (void)svc.localizeBatch(batch);

  EXPECT_DOUBLE_EQ(
      registry.findCounter("moloc_service_scans_total")->value(), 4.0);
  obs::Histogram* latency =
      registry.findHistogram("moloc_service_scan_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 4u);
  obs::Histogram* batchSize =
      registry.findHistogram("moloc_service_batch_size");
  ASSERT_NE(batchSize, nullptr);
  EXPECT_EQ(batchSize->count(), 1u);
  EXPECT_DOUBLE_EQ(batchSize->sum(), 2.0);

  obs::Gauge* active =
      registry.findGauge("moloc_service_sessions_active");
  ASSERT_NE(active, nullptr);
  EXPECT_DOUBLE_EQ(active->value(), 3.0);
  EXPECT_TRUE(svc.endSession(2));
  EXPECT_DOUBLE_EQ(active->value(), 2.0);

  // The pool and engine instruments land in the same registry.
  EXPECT_NE(registry.findGauge("moloc_pool_queue_depth"), nullptr);
  EXPECT_GE(
      registry.findCounter("moloc_pool_tasks_total")->value(), 2.0);
  // The batch rounds run fingerprint matching through the service's
  // up-front kernel invocation, not the per-round engine stage: the
  // engine's fingerprint stage counts only the two submitScan rounds,
  // and the batch's matching time lands in the service-level
  // batch-match histogram (one observation per batch).
  obs::Histogram* fingerprintStage = registry.findHistogram(
      "moloc_engine_stage_seconds", {{"stage", "fingerprint"}});
  ASSERT_NE(fingerprintStage, nullptr);
  EXPECT_EQ(fingerprintStage->count(), 2u);
  obs::Histogram* batchMatch =
      registry.findHistogram("moloc_service_batch_match_seconds");
  ASSERT_NE(batchMatch, nullptr);
  EXPECT_EQ(batchMatch->count(), 1u);
  obs::Histogram* motionStage = registry.findHistogram(
      "moloc_engine_stage_seconds", {{"stage", "motion"}});
  ASSERT_NE(motionStage, nullptr);
  EXPECT_EQ(motionStage->count(), 4u);
}

TEST(LocalizationService, FailedBatchRequestsCounted) {
  obs::MetricsRegistry registry;
  ServiceConfig config = testConfig(2);
  config.metrics = &registry;
  LocalizationService svc(twinFingerprints(), twinMotion(), config);
  const auto walk = makeWalk(43);
  std::vector<ScanRequest> batch;
  batch.push_back({1, walk.scans[0], walk.imu[0]});
  batch.push_back(
      {1, radio::Fingerprint({std::nan(""), -60.0}), walk.imu[1]});
  batch.push_back({1, walk.scans[1], walk.imu[1]});  // Skipped.
  EXPECT_THROW(svc.localizeBatch(batch), std::invalid_argument);
  // The failing request plus the skipped tail: 2 of 3.
  EXPECT_DOUBLE_EQ(
      registry
          .findCounter("moloc_service_batch_requests_failed_total")
          ->value(),
      2.0);
}

TEST(LocalizationService, NullRegistryDisablesMetricsAtRuntime) {
  ServiceConfig config = testConfig(1);
  config.metrics = nullptr;
  LocalizationService svc(twinFingerprints(), twinMotion(), config);
  const auto walk = makeWalk(47);
  const auto estimate = svc.submitScan(1, walk.scans[0], walk.imu[0]);
  EXPECT_TRUE(estimate.hasFix());  // Works, just unobserved.
}
#endif

TEST(LocalizationService, RejectsZeroShards) {
  ServiceConfig config = testConfig(1);
  config.shardCount = 0;
  EXPECT_THROW(LocalizationService(twinFingerprints(), twinMotion(),
                                   config),
               std::invalid_argument);
}

/// The corridor plan the intake tests feed observations against.
env::FloorPlan intakePlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

std::string freshStoreDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "moloc_svc_store_" +
                          tag + "_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(LocalizationService, ReportObservationRequiresAttachedIntake) {
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(1));
  EXPECT_THROW(svc.reportObservation(0, 1, 90.0, 4.0),
               std::logic_error);
  EXPECT_THROW(svc.attachIntake(nullptr), std::invalid_argument);

  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan);
  // A checkpoint trigger without a store to checkpoint into.
  EXPECT_THROW(svc.attachIntake(&db, nullptr, 10),
               std::invalid_argument);
}

TEST(LocalizationService, ReportObservationFeedsTheAttachedDatabase) {
  // The database must outlive the service: the service's intake writer
  // thread keeps applying admitted observations until detach/shutdown.
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan);
  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(2));
  svc.attachIntake(&db);

  EXPECT_TRUE(svc.reportObservation(0, 1, 90.0, 4.0));
  EXPECT_FALSE(svc.reportObservation(0, 1, 180.0, 4.0));  // Coarse.
  // reportObservation == admission; flushIntake is the apply barrier.
  svc.flushIntake();
  EXPECT_EQ(db.counters().observations, 2u);
  EXPECT_EQ(db.counters().accepted, 1u);
  EXPECT_EQ(svc.intakeStats().applied, 1u);
}

TEST(LocalizationService, BackgroundCheckpointTriggersByRecordCount) {
  const std::string dir = freshStoreDir("bg");
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/4);
  store::StoreConfig storeConfig;
  storeConfig.wal.fsync = store::FsyncPolicy::kNone;
  store::StateStore store(dir, storeConfig);

  LocalizationService svc(twinFingerprints(), twinMotion(),
                          testConfig(2));
  svc.attachIntake(&db, &store, /*checkpointEveryRecords=*/10);
  EXPECT_EQ(db.sink(), &store);  // attachIntake wires the WAL hook.

  for (int k = 0; k < 30; ++k)
    svc.reportObservation(k % 2, 1 + k % 2, 88.0 + 0.2 * (k % 9),
                          3.7 + 0.02 * (k % 11));
  svc.flushIntake();  // All admitted observations applied + logged.
  svc.waitForCheckpoint();
  EXPECT_GE(store.lastCheckpointSeq(), 10u);
  EXPECT_EQ(store.lastSeq(), db.counters().accepted);

  // The durable state reconstructs the live database bit-identically.
  db.setSink(nullptr);
  core::OnlineMotionDatabase recovered(plan, {}, 4);
  const auto result = store::recover(dir, recovered);
  EXPECT_TRUE(result.checkpointLoaded);
  const auto a = db.snapshot();
  const auto b = recovered.snapshot();
  EXPECT_EQ(a.rngState, b.rngState);
  EXPECT_EQ(a.counters.accepted, b.counters.accepted);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t e = 0; e < a.entries.size(); ++e) {
    EXPECT_EQ(a.entries[e].stats.muDirectionDeg,
              b.entries[e].stats.muDirectionDeg);
    EXPECT_EQ(a.entries[e].stats.sigmaOffsetMeters,
              b.entries[e].stats.sigmaOffsetMeters);
  }
}

TEST(LocalizationService, DestructionWakesCheckpointWaiters) {
  // Regression: waitForCheckpoint used to block on a bare condition
  // that nothing signalled once the service started dying, so a waiter
  // racing ~LocalizationService hung forever.  Now the destructor
  // raises ShutdownError in every waiter and drains them before any
  // member is torn down.  The checkpointTestHook holds a checkpoint
  // deterministically in flight while we stage the race.
  const std::string dir = freshStoreDir("shutdown");
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/4);
  store::StoreConfig storeConfig;
  storeConfig.wal.fsync = store::FsyncPolicy::kNone;
  store::StateStore store(dir, storeConfig);

  std::atomic<bool> hookEntered{false};
  std::atomic<bool> hookRelease{false};
  ServiceConfig config = testConfig(2);
  config.checkpointTestHook = [&] {
    hookEntered.store(true);
    while (!hookRelease.load()) std::this_thread::yield();
  };

  auto svc = std::make_unique<LocalizationService>(
      twinFingerprints(), twinMotion(), config);
  svc->attachIntake(&db, &store, /*checkpointEveryRecords=*/1);
  ASSERT_TRUE(svc->reportObservation(0, 1, 90.0, 4.0));
  svc->flushIntake();
  while (!hookEntered.load()) std::this_thread::yield();
  // A checkpoint is now provably in flight and pinned there.

  // The waiter must not touch the unique_ptr itself (reset() below
  // writes its pointer word); the service object is what survives
  // until the destructor has drained every waiter.
  LocalizationService* const service = svc.get();
  std::atomic<bool> waiterStarted{false};
  std::atomic<bool> sawShutdownError{false};
  std::thread waiter([&] {
    waiterStarted.store(true);
    try {
      service->waitForCheckpoint();
    } catch (const ShutdownError&) {
      sawShutdownError.store(true);
    }
  });
  while (!waiterStarted.load()) std::this_thread::yield();

  // Release the pinned checkpoint only after the destructor has
  // drained the waiter — proving the wake-up does not depend on the
  // checkpoint ever completing.
  std::thread releaser([&] {
    while (!sawShutdownError.load()) std::this_thread::yield();
    hookRelease.store(true);
  });

  svc.reset();  // Must not hang.
  waiter.join();
  releaser.join();
  EXPECT_TRUE(sawShutdownError.load());
}

/// Write-ahead sink that parks the intake writer inside an apply until
/// released — the deterministic way to hold "admitted but not yet
/// applied" work in flight while a shutdown races a flush.
class BlockingSink : public core::ObservationSink {
 public:
  BlockingSink(std::atomic<bool>& entered, std::atomic<bool>& release)
      : entered_(entered), release_(release) {}
  void onAccepted(env::LocationId, env::LocationId, double,
                  double) override {
    entered_.store(true);
    while (!release_.load()) std::this_thread::yield();
  }

 private:
  std::atomic<bool>& entered_;
  std::atomic<bool>& release_;
};

TEST(LocalizationService, FlushRacingShutdownThrowsPromptly) {
  // Regression: a flushIntake() waiter whose work could never finish
  // kept sleeping on the drain condition when the pipeline stopped
  // underneath it — stop() only signalled after joining the writer,
  // and the wait loop did not treat stopping_ as terminal.  Now the
  // waiter gets ShutdownError promptly, *before* the writer has
  // drained (proven here by releasing the pinned apply only after the
  // flusher has already seen the error).
  const auto plan = intakePlan();
  core::OnlineMotionDatabase db(plan);

  std::atomic<bool> sinkEntered{false};
  std::atomic<bool> sinkRelease{false};
  BlockingSink sink(sinkEntered, sinkRelease);

  auto svc = std::make_unique<LocalizationService>(
      twinFingerprints(), twinMotion(), testConfig(2));
  svc->attachIntake(&db);
  db.setSink(&sink);  // After attachIntake: it owns the sink slot.

  ASSERT_TRUE(svc->reportObservation(0, 1, 90.0, 4.0));
  while (!sinkEntered.load()) std::this_thread::yield();
  // The writer is now provably mid-apply and pinned there, with the
  // admitted observation not yet counted as applied.

  LocalizationService* const service = svc.get();
  std::atomic<bool> flusherStarted{false};
  std::atomic<bool> sawShutdownError{false};
  std::thread flusher([&] {
    flusherStarted.store(true);
    try {
      service->flushIntake();
      ADD_FAILURE() << "flushIntake returned despite pending work "
                       "across a shutdown";
    } catch (const ShutdownError&) {
      sawShutdownError.store(true);
    }
  });
  while (!flusherStarted.load()) std::this_thread::yield();

  // Release the pinned apply only after the flusher has been thrown
  // out — the prompt wake-up must not depend on the writer finishing.
  std::thread releaser([&] {
    while (!sawShutdownError.load()) std::this_thread::yield();
    sinkRelease.store(true);
  });

  svc.reset();  // Must not hang.
  flusher.join();
  releaser.join();
  EXPECT_TRUE(sawShutdownError.load());
  db.setSink(nullptr);
}

}  // namespace
}  // namespace moloc::service
