// Property-style sweeps over randomized inputs: invariants that must
// hold for *any* world, not just the paper's office hall.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/moloc_engine.hpp"
#include "core/motion_database_builder.hpp"
#include "env/walk_graph.hpp"
#include "geometry/angles.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace moloc {
namespace {

/// A random floor plan: locations on a jittered grid, some random
/// walls; deterministic per seed.
env::FloorPlan randomPlan(util::Rng& rng, int locations = 12) {
  env::FloorPlan plan(30.0, 20.0);
  for (int i = 0; i < locations; ++i)
    plan.addReferenceLocation(
        {rng.uniform(1.0, 29.0), rng.uniform(1.0, 19.0)});
  const int walls = rng.uniformInt(0, 4);
  for (int w = 0; w < walls; ++w) {
    const geometry::Vec2 a{rng.uniform(0.0, 30.0), rng.uniform(0.0, 20.0)};
    const geometry::Vec2 b{rng.uniform(0.0, 30.0), rng.uniform(0.0, 20.0)};
    plan.addWall({a, b});
  }
  return plan;
}

class SeededPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededPropertyTest, WalkGraphIsSymmetricAndMetric) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto plan = randomPlan(rng);
  const auto graph = env::WalkGraph::build(plan, 8.0);
  const auto n = static_cast<env::LocationId>(graph.nodeCount());

  for (env::LocationId i = 0; i < n; ++i) {
    for (env::LocationId j = 0; j < n; ++j) {
      // Symmetry.
      EXPECT_EQ(graph.adjacent(i, j), graph.adjacent(j, i));
      const double dij = graph.walkableDistance(i, j);
      const double dji = graph.walkableDistance(j, i);
      if (std::isfinite(dij))
        EXPECT_NEAR(dij, dji, 1e-9);
      else
        EXPECT_FALSE(std::isfinite(dji));
      // Walkable distance dominates straight-line distance.
      if (std::isfinite(dij) && i != j)
        EXPECT_GE(dij + 1e-9,
                  geometry::distance(plan.location(i).pos,
                                     plan.location(j).pos));
      // Identity.
      if (i == j) EXPECT_DOUBLE_EQ(dij, 0.0);
    }
  }
}

TEST_P(SeededPropertyTest, WalkGraphTriangleInequality) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto plan = randomPlan(rng);
  const auto graph = env::WalkGraph::build(plan, 8.0);
  const auto n = static_cast<env::LocationId>(graph.nodeCount());
  for (env::LocationId i = 0; i < n; ++i)
    for (env::LocationId j = 0; j < n; ++j)
      for (env::LocationId k = 0; k < n; ++k) {
        const double viaK = graph.walkableDistance(i, k) +
                            graph.walkableDistance(k, j);
        if (std::isfinite(viaK))
          EXPECT_LE(graph.walkableDistance(i, j), viaK + 1e-9);
      }
}

TEST_P(SeededPropertyTest, GroundTruthRlmsMirror) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const auto plan = randomPlan(rng);
  const auto graph = env::WalkGraph::build(plan, 8.0);
  const auto n = static_cast<env::LocationId>(graph.nodeCount());
  for (env::LocationId i = 0; i < n; ++i) {
    for (const auto& edge : graph.neighbors(i)) {
      const auto forward = graph.groundTruthRlm(i, edge.to);
      const auto backward = graph.groundTruthRlm(edge.to, i);
      ASSERT_TRUE(forward && backward);
      EXPECT_NEAR(forward->offsetMeters, backward->offsetMeters, 1e-9);
      EXPECT_NEAR(geometry::angularDistDeg(
                      forward->directionDeg,
                      geometry::reverseHeadingDeg(backward->directionDeg)),
                  0.0, 1e-9);
    }
  }
}

TEST_P(SeededPropertyTest, BuilderOutputAlwaysMirrorConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const auto plan = randomPlan(rng);
  core::MotionDatabaseBuilder builder(plan);

  // Random (noisy, sometimes junk) observations.
  const auto n = static_cast<env::LocationId>(plan.locationCount());
  for (int obs = 0; obs < 300; ++obs) {
    const auto i = static_cast<env::LocationId>(
        rng.uniformInt(0, n - 1));
    const auto j = static_cast<env::LocationId>(
        rng.uniformInt(0, n - 1));
    if (i == j) continue;
    const double mapDir = geometry::headingBetweenDeg(
        plan.location(i).pos, plan.location(j).pos);
    const double mapOff = geometry::distance(plan.location(i).pos,
                                             plan.location(j).pos);
    builder.addObservation(i, j, mapDir + rng.normal(0.0, 8.0),
                           std::max(0.0, mapOff + rng.normal(0.0, 0.8)));
  }
  const auto db = builder.build();

  // Invariants: every entry has a mirror with reversed direction and
  // identical offset stats, and positive sigmas.
  for (env::LocationId i = 0; i < n; ++i) {
    for (env::LocationId j = 0; j < n; ++j) {
      const auto entry = db.entry(i, j);
      if (!entry) continue;
      EXPECT_GT(entry->sigmaDirectionDeg, 0.0);
      EXPECT_GT(entry->sigmaOffsetMeters, 0.0);
      EXPECT_GE(entry->muOffsetMeters, 0.0);
      const auto mirror = db.entry(j, i);
      ASSERT_TRUE(mirror.has_value());
      EXPECT_NEAR(mirror->muOffsetMeters, entry->muOffsetMeters, 1e-9);
      EXPECT_NEAR(
          geometry::angularDistDeg(
              mirror->muDirectionDeg,
              geometry::reverseHeadingDeg(entry->muDirectionDeg)),
          0.0, 1e-9);
    }
  }
}

TEST_P(SeededPropertyTest, EnginePosteriorIsAlwaysADistribution) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);

  // Random fingerprint database over 10 locations, random motion DB.
  radio::FingerprintDatabase fingerprints;
  for (int i = 0; i < 10; ++i)
    fingerprints.addLocation(
        i, radio::Fingerprint({rng.uniform(-90.0, -30.0),
                               rng.uniform(-90.0, -30.0),
                               rng.uniform(-90.0, -30.0)}));
  core::MotionDatabase motion(10);
  for (int e = 0; e < 12; ++e) {
    const auto i = static_cast<env::LocationId>(rng.uniformInt(0, 9));
    const auto j = static_cast<env::LocationId>(rng.uniformInt(0, 9));
    if (i == j) continue;
    motion.setEntryWithMirror(i, j,
                              {rng.uniform(0.0, 360.0),
                               rng.uniform(2.0, 12.0),
                               rng.uniform(2.0, 8.0),
                               rng.uniform(0.1, 0.6), 5});
  }

  core::MoLocConfig config;
  config.candidateCount = static_cast<std::size_t>(rng.uniformInt(1, 10));
  core::MoLocEngine engine(fingerprints, motion, config);

  for (int step = 0; step < 25; ++step) {
    const radio::Fingerprint scan({rng.uniform(-90.0, -30.0),
                                   rng.uniform(-90.0, -30.0),
                                   rng.uniform(-90.0, -30.0)});
    std::optional<sensors::MotionMeasurement> measured;
    if (step > 0 && rng.chance(0.8))
      measured = sensors::MotionMeasurement{rng.uniform(0.0, 360.0),
                                            rng.uniform(0.0, 10.0)};
    const auto fix = engine.localize(scan, measured);

    double total = 0.0;
    bool estimateInSet = false;
    for (const auto& c : fix.candidates) {
      EXPECT_GE(c.probability, 0.0);
      EXPECT_TRUE(std::isfinite(c.probability));
      total += c.probability;
      if (c.location == fix.location) estimateInSet = true;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_TRUE(estimateInSet);
    EXPECT_EQ(fix.candidates.size(), config.candidateCount);
    // The estimate is the argmax of the posterior.
    for (const auto& c : fix.candidates)
      EXPECT_LE(c.probability, fix.probability + 1e-12);
  }
}

TEST_P(SeededPropertyTest, EngineIsDeterministic) {
  util::Rng worldRng(static_cast<std::uint64_t>(GetParam()) + 5000);
  radio::FingerprintDatabase fingerprints;
  for (int i = 0; i < 6; ++i)
    fingerprints.addLocation(
        i, radio::Fingerprint({worldRng.uniform(-90.0, -30.0),
                               worldRng.uniform(-90.0, -30.0)}));
  core::MotionDatabase motion(6);
  motion.setEntryWithMirror(0, 1, {90.0, 5.0, 4.0, 0.3, 9});

  core::MoLocEngine a(fingerprints, motion);
  core::MoLocEngine b(fingerprints, motion);
  util::Rng scanRngA(99);
  util::Rng scanRngB(99);
  for (int step = 0; step < 10; ++step) {
    const radio::Fingerprint scanA({scanRngA.uniform(-90.0, -30.0),
                                    scanRngA.uniform(-90.0, -30.0)});
    const radio::Fingerprint scanB({scanRngB.uniform(-90.0, -30.0),
                                    scanRngB.uniform(-90.0, -30.0)});
    const sensors::MotionMeasurement motionMeas{90.0, 4.0};
    const auto fixA = a.localize(scanA, motionMeas);
    const auto fixB = b.localize(scanB, motionMeas);
    EXPECT_EQ(fixA.location, fixB.location);
    EXPECT_EQ(fixA.probability, fixB.probability);
  }
}

TEST_P(SeededPropertyTest, CdfIsMonotoneOnRandomData) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  std::vector<double> xs;
  const int count = rng.uniformInt(1, 200);
  for (int i = 0; i < count; ++i) xs.push_back(rng.normal(5.0, 10.0));
  const auto cdf = util::empiricalCdf(xs);
  ASSERT_EQ(cdf.size(), xs.size());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative, cdf[i].cumulative);
  }
  EXPECT_NEAR(cdf.back().cumulative, 1.0, 1e-12);
}

TEST_P(SeededPropertyTest, CircularMeanAndMedianAgreeOnTightClusters) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const double center = rng.uniform(0.0, 360.0);
  std::vector<double> degs;
  for (int i = 0; i < 50; ++i)
    degs.push_back(
        geometry::normalizeDeg(center + rng.normal(0.0, 4.0)));
  const double mean = geometry::circularMeanDeg(degs);
  const double median = geometry::circularMedianDeg(degs);
  EXPECT_LT(geometry::angularDistDeg(mean, median), 4.0);
  EXPECT_LT(geometry::angularDistDeg(mean, center), 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace moloc
