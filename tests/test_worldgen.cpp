#include "worldgen/generated_venue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "service/localization_service.hpp"
#include "util/rng.hpp"
#include "worldgen/venue_spec.hpp"

namespace moloc::worldgen {
namespace {

VenueSpec smallSpec() {
  VenueSpec spec;
  spec.buildings = 2;
  spec.floorsPerBuilding = 2;
  spec.gridCols = 8;
  spec.gridRows = 8;
  spec.apsPerFloor = 4;
  spec.seed = 7;
  return spec;  // 256 locations, 16 APs.
}

TEST(VenueSpecTest, ParsesPresetsAndKeyValueLists) {
  EXPECT_EQ(locationCount(parseVenueSpec("campus-1k")), 1024u);
  EXPECT_EQ(locationCount(parseVenueSpec("campus-4k")), 4096u);
  EXPECT_EQ(locationCount(parseVenueSpec("campus-16k")), 16384u);
  EXPECT_EQ(locationCount(parseVenueSpec("campus-64k")), 65536u);

  const VenueSpec spec = parseVenueSpec(
      "buildings=3,floors=2,cols=10,rows=12,aps-per-floor=5");
  EXPECT_EQ(spec.buildings, 3);
  EXPECT_EQ(spec.floorsPerBuilding, 2);
  EXPECT_EQ(locationCount(spec), 3u * 2u * 10u * 12u);
  EXPECT_EQ(apCount(spec), 3u * 2u * 5u);

  EXPECT_THROW(parseVenueSpec("campus-2k"), std::invalid_argument);
  EXPECT_THROW(parseVenueSpec("bogus=1"), std::invalid_argument);
  EXPECT_THROW(parseVenueSpec("cols=abc"), std::invalid_argument);
  EXPECT_THROW(parseVenueSpec("cols=0"), std::invalid_argument);

  EXPECT_EQ(locationCount(venueSpecForLocations(16384)), 16384u);
  EXPECT_THROW(venueSpecForLocations(12345), std::invalid_argument);
}

TEST(VenueSpecTest, ValidatesBounds) {
  VenueSpec spec = smallSpec();
  EXPECT_NO_THROW(validateVenueSpec(spec));
  spec.gridCols = 1;
  EXPECT_THROW(validateVenueSpec(spec), std::invalid_argument);
  spec = smallSpec();
  spec.spacingMeters = 0.0;
  EXPECT_THROW(validateVenueSpec(spec), std::invalid_argument);
  spec = smallSpec();
  spec.trainSamples = 0;
  EXPECT_THROW(validateVenueSpec(spec), std::invalid_argument);
  spec = smallSpec();
  spec.buildings = 64;
  spec.floorsPerBuilding = 8;
  spec.gridCols = 64;
  spec.gridRows = 64;  // 2M locations > kMaxVenueLocations.
  EXPECT_THROW(validateVenueSpec(spec), std::invalid_argument);
}

TEST(WorldgenTest, GeneratesExpectedStructure) {
  const GeneratedVenue venue(smallSpec());
  EXPECT_EQ(venue.locationCount(), 256u);
  EXPECT_EQ(venue.apCount(), 16u);
  ASSERT_EQ(venue.floors().size(), 4u);
  EXPECT_EQ(venue.accessPoints().size(), 16u);
  EXPECT_EQ(venue.fingerprints().size(), 256u);
  EXPECT_EQ(venue.fingerprints().apCount(), 16u);

  // Per-floor location ranges are contiguous and exhaustive — the
  // shard boundaries handed to the index.
  ASSERT_EQ(venue.shardStarts().size(), 4u);
  std::size_t next = 0;
  for (std::size_t f = 0; f < venue.floors().size(); ++f) {
    const FloorInfo& floor = venue.floors()[f];
    EXPECT_EQ(venue.shardStarts()[f], next);
    EXPECT_EQ(floor.firstLocation, next);
    EXPECT_EQ(floor.locationCount, 64u);
    EXPECT_EQ(floor.apCount, 4u);
    next += floor.locationCount;
  }
  EXPECT_EQ(next, venue.locationCount());

  // floorOf agrees with the ranges.
  for (std::size_t f = 0; f < venue.floors().size(); ++f) {
    const FloorInfo& floor = venue.floors()[f];
    EXPECT_EQ(&venue.floorOf(static_cast<env::LocationId>(
                  floor.firstLocation)),
              &floor);
    EXPECT_EQ(&venue.floorOf(static_cast<env::LocationId>(
                  floor.firstLocation + floor.locationCount - 1)),
              &floor);
  }
  EXPECT_THROW(
      venue.floorOf(static_cast<env::LocationId>(venue.locationCount())),
      std::out_of_range);

  // Stairs and bridges keep the whole campus walkable.
  EXPECT_EQ(venue.site().graph.nodeCount(), venue.locationCount());
  EXPECT_TRUE(venue.site().graph.isConnected());
  EXPECT_EQ(venue.site().apPositions.size(), venue.apCount());
}

TEST(WorldgenTest, VisibilityIsSparseAndFloorLocal) {
  const GeneratedVenue venue(smallSpec());
  const double floorDbm = venue.spec().propagation.detectionFloorDbm;
  std::size_t heardTotal = 0;
  for (std::size_t loc = 0; loc < venue.locationCount(); ++loc) {
    const FloorInfo& floor =
        venue.floorOf(static_cast<env::LocationId>(loc));
    const radio::Fingerprint& entry =
        venue.fingerprints().entry(static_cast<env::LocationId>(loc));
    std::size_t heard = 0;
    for (std::size_t ap = 0; ap < entry.size(); ++ap) {
      if (entry[ap] <= floorDbm) continue;
      ++heard;
      // Heard APs are always the location's own floor's.
      EXPECT_GE(ap, floor.firstAp);
      EXPECT_LT(ap, floor.firstAp + floor.apCount);
    }
    heardTotal += heard;
    EXPECT_GE(heard, 1u) << "location " << loc << " hears nothing";
  }
  // Sparse: the average location hears far fewer APs than exist.
  EXPECT_LT(heardTotal, venue.locationCount() * venue.apCount() / 2);
}

TEST(WorldgenTest, IsDeterministicInTheSpec) {
  const GeneratedVenue a(smallSpec());
  const GeneratedVenue b(smallSpec());
  ASSERT_EQ(a.locationCount(), b.locationCount());
  for (std::size_t loc = 0; loc < a.locationCount(); ++loc) {
    const auto va = a.fingerprints()
                        .entry(static_cast<env::LocationId>(loc))
                        .values();
    const auto vb = b.fingerprints()
                        .entry(static_cast<env::LocationId>(loc))
                        .values();
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(),
                          va.size() * sizeof(double)),
              0)
        << "location " << loc;
  }
  EXPECT_EQ(a.motion().entryCount(), b.motion().entryCount());

  // Serving scans replay bitwise for the same RNG stream.
  util::Rng rngA(123);
  util::Rng rngB(123);
  const radio::Fingerprint scanA = a.scanAt(17, 90.0, rngA);
  const radio::Fingerprint scanB = b.scanAt(17, 90.0, rngB);
  ASSERT_EQ(scanA.size(), scanB.size());
  for (std::size_t i = 0; i < scanA.size(); ++i)
    EXPECT_EQ(scanA[i], scanB[i]);

  // A different seed produces a different radio map.
  VenueSpec other = smallSpec();
  other.seed = 8;
  const GeneratedVenue c(other);
  bool anyDifferent = false;
  for (std::size_t loc = 0; loc < a.locationCount() && !anyDifferent;
       ++loc) {
    const auto va = a.fingerprints()
                        .entry(static_cast<env::LocationId>(loc))
                        .values();
    const auto vc = c.fingerprints()
                        .entry(static_cast<env::LocationId>(loc))
                        .values();
    anyDifferent = std::memcmp(va.data(), vc.data(),
                               va.size() * sizeof(double)) != 0;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(WorldgenTest, MotionDatabaseCoversWalkEdges) {
  const GeneratedVenue venue(smallSpec());
  EXPECT_EQ(venue.motion().locationCount(), venue.locationCount());
  // One stored RLM pair per undirected walk edge.
  EXPECT_EQ(venue.motion().entryCount(),
            venue.site().graph.edgeCount() * 2);
  for (env::LocationId loc = 0; loc < 64; ++loc)
    for (const auto& edge : venue.site().graph.neighbors(loc))
      EXPECT_TRUE(venue.motion().entry(loc, edge.to).has_value())
          << loc << " -> " << edge.to;

  util::Rng rng(1);
  EXPECT_THROW(venue.scanAt(
                   static_cast<env::LocationId>(venue.locationCount()),
                   0.0, rng),
               std::out_of_range);
}

// Named for the sanitizer CI filters (Worldgen.*): the venue pipeline
// through the service — snapshot-owned index build on publish — must
// behave identically with the tiered index on and off.
TEST(WorldgenTest, ServiceWithIndexMatchesExactServiceBitwise) {
  VenueSpec spec = smallSpec();
  const GeneratedVenue venue(spec);

  service::ServiceConfig indexed;
  indexed.threadCount = 2;
  indexed.indexMode = service::IndexMode::kOn;
  indexed.indexShardStarts = venue.shardStarts();
  indexed.index.exhaustiveCheck = true;  // Audit recall on every query.
  indexed.metrics = nullptr;
  service::LocalizationService withIndex(venue.fingerprints(),
                                         venue.motion(), indexed);
  ASSERT_TRUE(withIndex.tieredIndex() != nullptr);
  EXPECT_EQ(withIndex.currentWorld()->tieredIndex().get(),
            withIndex.tieredIndex().get());

  service::ServiceConfig plain;
  plain.threadCount = 2;
  plain.indexMode = service::IndexMode::kOff;
  plain.metrics = nullptr;
  service::LocalizationService exact(venue.fingerprints(),
                                     venue.motion(), plain);
  ASSERT_TRUE(exact.tieredIndex() == nullptr);

  util::Rng rng(99);
  std::vector<service::ScanRequest> batch;
  for (std::size_t u = 0; u < 16; ++u) {
    const auto loc = static_cast<env::LocationId>(
        rng.uniformIndex(venue.locationCount()));
    service::ScanRequest request;
    request.session = u + 1;
    request.scan = venue.scanAt(loc, 0.0, rng);
    batch.push_back(std::move(request));
  }
  const auto indexedResults = withIndex.localizeBatch(batch);
  const auto exactResults = exact.localizeBatch(batch);
  ASSERT_EQ(indexedResults.size(), exactResults.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(indexedResults[i].location, exactResults[i].location);
    EXPECT_EQ(std::memcmp(&indexedResults[i].probability,
                          &exactResults[i].probability, sizeof(double)),
              0);
    ASSERT_EQ(indexedResults[i].candidates.size(),
              exactResults[i].candidates.size());
    for (std::size_t c = 0; c < indexedResults[i].candidates.size(); ++c)
      EXPECT_EQ(indexedResults[i].candidates[c].location,
                exactResults[i].candidates[c].location);
  }

  // submitScan (the unbatched per-session path) routes through the
  // index-backed estimator; results must match the exact service too.
  const auto scan = venue.scanAt(5, 0.0, rng);
  const sensors::ImuTrace noImu;
  const auto viaIndex = withIndex.submitScan(1000, scan, noImu);
  const auto viaExact = exact.submitScan(1000, scan, noImu);
  EXPECT_EQ(viaIndex.location, viaExact.location);
  EXPECT_EQ(std::memcmp(&viaIndex.probability, &viaExact.probability,
                        sizeof(double)),
            0);
}

}  // namespace
}  // namespace moloc::worldgen
