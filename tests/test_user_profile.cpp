#include "traj/user_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sensors/step_length.hpp"

namespace moloc::traj {
namespace {

TEST(UserProfile, SpeedIsCadenceTimesStepLength) {
  UserProfile user;
  user.trueStepLengthMeters = 0.7;
  user.cadenceHz = 2.0;
  EXPECT_DOUBLE_EQ(user.speedMps(), 1.4);
}

TEST(UserProfile, EstimatedStepLengthUsesAnthropometry) {
  UserProfile user;
  user.heightMeters = 1.80;
  user.weightKg = 70.0;
  EXPECT_DOUBLE_EQ(user.estimatedStepLengthMeters(),
                   sensors::estimateStepLength(1.80, 70.0));
}

TEST(DefaultUsers, FourDiverseUsers) {
  const auto users = makeDefaultUsers();
  ASSERT_EQ(users.size(), 4u);  // The paper's cohort size.
  std::set<std::string> names;
  for (const auto& u : users) names.insert(u.name);
  EXPECT_EQ(names.size(), 4u);

  // Heights and speeds genuinely differ ("diverse height and walking
  // speed").
  double minHeight = 10.0, maxHeight = 0.0;
  double minSpeed = 10.0, maxSpeed = 0.0;
  for (const auto& u : users) {
    minHeight = std::min(minHeight, u.heightMeters);
    maxHeight = std::max(maxHeight, u.heightMeters);
    minSpeed = std::min(minSpeed, u.speedMps());
    maxSpeed = std::max(maxSpeed, u.speedMps());
  }
  EXPECT_GT(maxHeight - minHeight, 0.15);
  EXPECT_GT(maxSpeed - minSpeed, 0.05);
}

TEST(DefaultUsers, TrueStepLengthNearEstimate) {
  // The gap between the true gait and the height-derived estimate is
  // the offset error source; it must be small (a few percent).
  for (const auto& u : makeDefaultUsers()) {
    const double ratio =
        u.trueStepLengthMeters / u.estimatedStepLengthMeters();
    EXPECT_GT(ratio, 0.93) << u.name;
    EXPECT_LT(ratio, 1.07) << u.name;
  }
}

TEST(DefaultUsers, PlausibleWalkingSpeeds) {
  for (const auto& u : makeDefaultUsers()) {
    EXPECT_GT(u.speedMps(), 0.9) << u.name;
    EXPECT_LT(u.speedMps(), 1.6) << u.name;
  }
}

TEST(RandomUser, WithinDocumentedRanges) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto u = makeRandomUser(rng, "u" + std::to_string(i));
    EXPECT_GE(u.heightMeters, 1.50);
    EXPECT_LE(u.heightMeters, 1.95);
    EXPECT_GE(u.weightKg, 48.0);
    EXPECT_LE(u.weightKg, 100.0);
    EXPECT_GE(u.cadenceHz, 1.5);
    EXPECT_LE(u.cadenceHz, 2.1);
    const double ratio =
        u.trueStepLengthMeters / u.estimatedStepLengthMeters();
    EXPECT_GE(ratio, 0.96);
    EXPECT_LE(ratio, 1.04);
  }
}

TEST(RandomUser, Deterministic) {
  util::Rng rngA(9);
  util::Rng rngB(9);
  const auto a = makeRandomUser(rngA, "x");
  const auto b = makeRandomUser(rngB, "x");
  EXPECT_EQ(a.heightMeters, b.heightMeters);
  EXPECT_EQ(a.trueStepLengthMeters, b.trueStepLengthMeters);
}

}  // namespace
}  // namespace moloc::traj
