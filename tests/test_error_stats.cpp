#include "eval/error_stats.hpp"

#include <gtest/gtest.h>

namespace moloc::eval {
namespace {

TEST(LocalizationRecord, AccurateMeansExactLocation) {
  EXPECT_TRUE((LocalizationRecord{3, 3, 0.0}.accurate()));
  EXPECT_FALSE((LocalizationRecord{3, 4, 5.7}.accurate()));
}

TEST(ErrorStats, EmptyStats) {
  const ErrorStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.accuracy(), 0.0);
  EXPECT_EQ(stats.meanError(), 0.0);
  EXPECT_EQ(stats.maxError(), 0.0);
}

TEST(ErrorStats, AccuracyCountsExactFixes) {
  ErrorStats stats;
  stats.add({0, 0, 0.0});
  stats.add({1, 1, 0.0});
  stats.add({2, 5, 8.0});
  stats.add({3, 6, 12.0});
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.5);
  EXPECT_EQ(stats.count(), 4u);
}

TEST(ErrorStats, ErrorAggregates) {
  ErrorStats stats;
  stats.add({0, 0, 0.0});
  stats.add({1, 2, 4.0});
  stats.add({3, 4, 8.0});
  EXPECT_DOUBLE_EQ(stats.meanError(), 4.0);
  EXPECT_DOUBLE_EQ(stats.maxError(), 8.0);
  EXPECT_DOUBLE_EQ(stats.medianError(), 4.0);
  EXPECT_DOUBLE_EQ(stats.percentileError(100.0), 8.0);
}

TEST(ErrorStats, AddAll) {
  ErrorStats stats;
  const std::vector<LocalizationRecord> records{
      {0, 0, 0.0}, {1, 2, 3.0}, {2, 2, 0.0}};
  stats.addAll(records);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_NEAR(stats.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(ErrorStats, CdfEndsAtOne) {
  ErrorStats stats;
  stats.add({0, 1, 1.0});
  stats.add({0, 2, 2.0});
  stats.add({0, 3, 3.0});
  const auto cdf = stats.cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
}

TEST(ErrorStats, DownsampledCdf) {
  ErrorStats stats;
  for (int i = 0; i < 100; ++i)
    stats.add({0, 1, static_cast<double>(i)});
  EXPECT_EQ(stats.cdf(10).size(), 10u);
}

TEST(ErrorStats, ErrorsSpanExposed) {
  ErrorStats stats;
  stats.add({0, 1, 2.5});
  ASSERT_EQ(stats.errors().size(), 1u);
  EXPECT_DOUBLE_EQ(stats.errors()[0], 2.5);
}

}  // namespace
}  // namespace moloc::eval
