#include "core/trace_smoother.hpp"

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"

namespace moloc::core {
namespace {

/// The twin world from the engine tests: 0/2 and 1/3 are twin pairs,
/// 4 is unique.  Motion DB knows 0-1, 2-3, 1-4, 3-4.
struct TwinWorld {
  TwinWorld() : motion(5) {
    fingerprints.addLocation(0, radio::Fingerprint({-50.0, -60.0}));
    fingerprints.addLocation(1, radio::Fingerprint({-55.0, -57.0}));
    fingerprints.addLocation(2, radio::Fingerprint({-50.1, -60.1}));
    fingerprints.addLocation(3, radio::Fingerprint({-55.1, -57.1}));
    fingerprints.addLocation(4, radio::Fingerprint({-70.0, -40.0}));
    motion.setEntryWithMirror(0, 1, {90.0, 4.0, 4.0, 0.3, 20});
    motion.setEntryWithMirror(2, 3, {90.0, 4.0, 4.0, 0.3, 20});
    motion.setEntryWithMirror(1, 4, {117.0, 4.0, 8.9, 0.4, 20});
    motion.setEntryWithMirror(3, 4, {63.0, 4.0, 8.9, 0.4, 20});
  }
  radio::FingerprintDatabase fingerprints;
  MotionDatabase motion;
};

using Motions = std::vector<std::optional<sensors::MotionMeasurement>>;

TEST(TraceSmoother, RejectsBadShapes) {
  TwinWorld world;
  const TraceSmoother smoother(world.fingerprints, world.motion);
  EXPECT_THROW(smoother.smooth({}, {}), std::invalid_argument);
  const std::vector<radio::Fingerprint> one{
      radio::Fingerprint({-50.0, -60.0})};
  const Motions wrong{std::nullopt};
  EXPECT_THROW(smoother.smooth(one, wrong), std::invalid_argument);
}

TEST(TraceSmoother, SingleScanIsFingerprintArgmax) {
  TwinWorld world;
  const TraceSmoother smoother(world.fingerprints, world.motion);
  const std::vector<radio::Fingerprint> scans{
      radio::Fingerprint({-70.0, -40.0})};
  const auto path = smoother.smooth(scans, {});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
}

TEST(TraceSmoother, FixesErroneousInitialRetroactively) {
  // The causal engine's Table-I weakness: an ambiguous initial scan
  // whose best match is the wrong twin.  Offline, the later
  // unambiguous evidence propagates *backwards* and corrects step 0.
  TwinWorld world;
  MoLocConfig config;
  config.candidateCount = 5;
  const TraceSmoother smoother(world.fingerprints, world.motion,
                               config);

  // Truth: 0 -> 1 -> 4.  The initial scan is closer to twin 2.
  const std::vector<radio::Fingerprint> scans{
      radio::Fingerprint({-50.08, -60.08}),  // Nearer twin 2 than 0.
      radio::Fingerprint({-55.05, -57.05}),  // Ambiguous 1 vs 3.
      radio::Fingerprint({-70.0, -40.0}),    // Unambiguous 4.
  };
  const Motions motions{
      sensors::MotionMeasurement{90.0, 4.0},   // East: 0->1 or 2->3.
      sensors::MotionMeasurement{117.0, 8.9},  // Only matches 1->4.
  };

  // Sanity: the fingerprint argmax of scan 0 is the wrong twin.
  EXPECT_EQ(world.fingerprints.nearest(scans[0]), 2);

  const auto path = smoother.smooth(scans, motions);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);  // Corrected retroactively.
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 4);
}

TEST(TraceSmoother, MissingMotionFallsBackToEmissions) {
  TwinWorld world;
  const TraceSmoother smoother(world.fingerprints, world.motion);
  const std::vector<radio::Fingerprint> scans{
      radio::Fingerprint({-70.0, -40.0}),
      radio::Fingerprint({-50.0, -60.0}),
  };
  const Motions motions{std::nullopt};
  const auto path = smoother.smooth(scans, motions);
  EXPECT_EQ(path[0], 4);
  EXPECT_EQ(path[1], 0);
}

TEST(TraceSmoother, PathRespectsMotionConsistency) {
  // With motion present, the smoothed path never jumps between
  // candidates whose transition the motion database rules out when a
  // consistent alternative exists.
  TwinWorld world;
  const TraceSmoother smoother(world.fingerprints, world.motion);
  const std::vector<radio::Fingerprint> scans{
      radio::Fingerprint({-50.0, -60.0}),   // 0 (or twin 2).
      radio::Fingerprint({-55.1, -57.1}),   // Nearer twin 3 than 1!
  };
  const Motions motions{sensors::MotionMeasurement{90.0, 4.0}};
  const auto path = smoother.smooth(scans, motions);
  // Both (0,1) and (2,3) are motion-consistent; the joint likelihood
  // must pick one consistent pair, not the cross pair (0,3).
  EXPECT_TRUE((path[0] == 0 && path[1] == 1) ||
              (path[0] == 2 && path[1] == 3))
      << path[0] << "," << path[1];
}

TEST(TraceSmoother, BeatsOrMatchesOnlineEngineOnRealWalks) {
  // End to end: offline smoothing must be at least as accurate as the
  // causal engine over the same walks (it sees strictly more context).
  eval::WorldConfig config;
  eval::ExperimentWorld world(config);
  const TraceSmoother smoother(world.fingerprintDb(), world.motionDb(),
                               config.moloc);
  auto engine = world.makeEngine();

  int onlineCorrect = 0;
  int offlineCorrect = 0;
  int total = 0;
  for (int t = 0; t < 12; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace = world.makeTrace(user, 10, world.evalRng());

    std::vector<radio::Fingerprint> scans{trace.initialScan};
    std::vector<std::optional<sensors::MotionMeasurement>> motions;
    std::vector<env::LocationId> truth{trace.startTruth};
    for (const auto& interval : trace.intervals) {
      scans.push_back(interval.scanAtArrival);
      motions.push_back(world.processInterval(interval, user));
      truth.push_back(interval.toTruth);
    }

    engine.reset();
    std::vector<env::LocationId> online;
    online.push_back(engine.localize(scans[0], std::nullopt).location);
    for (std::size_t s = 1; s < scans.size(); ++s)
      online.push_back(
          engine.localize(scans[s], motions[s - 1]).location);

    const auto offline = smoother.smooth(scans, motions);
    for (std::size_t s = 0; s < truth.size(); ++s) {
      ++total;
      if (online[s] == truth[s]) ++onlineCorrect;
      if (offline[s] == truth[s]) ++offlineCorrect;
    }
  }
  EXPECT_GE(offlineCorrect, onlineCorrect - 2) << "of " << total;
  EXPECT_GT(static_cast<double>(offlineCorrect) / total, 0.8);
}

}  // namespace
}  // namespace moloc::core
