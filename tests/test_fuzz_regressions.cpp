// Replays the committed fuzz corpus (seeds and crash regressions)
// through the fuzz harness bodies as plain gtests, so every input that
// ever crashed a parser keeps running in every CI configuration — the
// default GCC build included, where libFuzzer itself is unavailable.
//
// The harnesses abort the process on a parser-contract violation, so
// a regression here fails loudly rather than with a nice assertion
// message; the file name in the test parameter identifies the input.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "targets/fuzz_targets.hpp"

namespace moloc::fuzz {
namespace {

namespace fs = std::filesystem;

using Harness = int (*)(const std::uint8_t*, std::size_t);

std::vector<std::uint8_t> readBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open corpus input " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Replays every file under corpus subdirectory `surface` (both the
/// seed set and regressions/<surface>) through `harness`.  Returns the
/// number of inputs replayed so an emptied or mislocated corpus cannot
/// silently pass.
std::size_t replaySurface(const std::string& surface, Harness harness) {
  const fs::path root(MOLOC_FUZZ_CORPUS_DIR);
  std::size_t replayed = 0;
  for (const auto& dir :
       {root / surface, root / "regressions" / surface}) {
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      SCOPED_TRACE("corpus input: " + entry.path().string());
      const auto bytes = readBytes(entry.path());
      EXPECT_EQ(0, harness(bytes.data(), bytes.size()));
      ++replayed;
    }
  }
  return replayed;
}

TEST(FuzzRegressions, WalCorpusReplaysClean) {
  EXPECT_GE(replaySurface("wal", runWalReader), 6u);
}

TEST(FuzzRegressions, CheckpointCorpusReplaysClean) {
  EXPECT_GE(replaySurface("checkpoint", runCheckpointLoad), 3u);
}

TEST(FuzzRegressions, SerializationCorpusReplaysClean) {
  EXPECT_GE(replaySurface("serialization", runSerializationLoad), 5u);
}

TEST(FuzzRegressions, CsvCorpusReplaysClean) {
  EXPECT_GE(replaySurface("csv", runCsvParse), 8u);
}

TEST(FuzzRegressions, WireCorpusReplaysClean) {
  EXPECT_GE(replaySurface("wire", runWireDecode), 10u);
}

TEST(FuzzRegressions, SignatureCorpusReplaysClean) {
  EXPECT_GE(replaySurface("signature", runSignatureCodec), 7u);
}

TEST(FuzzRegressions, ImageCorpusReplaysClean) {
  EXPECT_GE(replaySurface("image", runImageLoad), 8u);
}

// The harness must also accept the empty input (libFuzzer always
// starts there).
TEST(FuzzRegressions, EmptyInputIsCleanEverywhere) {
  const std::uint8_t dummy = 0;
  EXPECT_EQ(0, runWalReader(&dummy, 0));
  EXPECT_EQ(0, runCheckpointLoad(&dummy, 0));
  EXPECT_EQ(0, runSerializationLoad(&dummy, 0));
  EXPECT_EQ(0, runCsvParse(&dummy, 0));
  EXPECT_EQ(0, runWireDecode(&dummy, 0));
  EXPECT_EQ(0, runSignatureCodec(&dummy, 0));
  EXPECT_EQ(0, runImageLoad(&dummy, 0));
}

}  // namespace
}  // namespace moloc::fuzz
