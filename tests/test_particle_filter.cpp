#include "baseline/particle_filter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "eval/experiment_world.hpp"

namespace moloc::baseline {
namespace {

class ParticleFilterTest : public ::testing::Test {
 protected:
  ParticleFilterTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
    db_.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
    db_.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
    db_.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  }

  env::FloorPlan plan_{12.0, 4.0};
  radio::FingerprintDatabase db_;
};

TEST_F(ParticleFilterTest, RejectsZeroParticles) {
  ParticleFilterParams params;
  params.particleCount = 0;
  EXPECT_THROW(ParticleFilter(plan_, db_, params),
               std::invalid_argument);
}

TEST_F(ParticleFilterTest, FirstFixFollowsFingerprint) {
  ParticleFilter filter(plan_, db_);
  EXPECT_EQ(filter.update(radio::Fingerprint({-40.0, -70.0}),
                          std::nullopt),
            0);
  EXPECT_EQ(filter.particleCount(), 500u);
}

TEST_F(ParticleFilterTest, MeanPositionThrowsBeforeFirstUpdate) {
  ParticleFilter filter(plan_, db_);
  EXPECT_THROW(filter.meanPosition(), std::logic_error);
}

TEST_F(ParticleFilterTest, MotionCarriesCloudAlongCorridor) {
  ParticleFilter filter(plan_, db_);
  filter.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  // Walk east 4 m with an ambiguous scan: the cloud's motion model
  // should land it at location 1.
  const auto fix = filter.update(radio::Fingerprint({-55.0, -55.0}),
                                 sensors::MotionMeasurement{90.0, 4.0});
  EXPECT_EQ(fix, 1);
  EXPECT_NEAR(filter.meanPosition().x, 6.0, 1.5);
}

TEST_F(ParticleFilterTest, ChainsAcrossSteps) {
  ParticleFilter filter(plan_, db_);
  filter.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  filter.update(radio::Fingerprint({-55.0, -55.0}),
                sensors::MotionMeasurement{90.0, 4.0});
  const auto fix = filter.update(radio::Fingerprint({-70.0, -40.0}),
                                 sensors::MotionMeasurement{90.0, 4.0});
  EXPECT_EQ(fix, 2);
}

TEST_F(ParticleFilterTest, WallsKillImpossibleParticles) {
  // A wall between locations 0 and 1: a cloud at 0 told to walk east
  // cannot cross; the filter must recover from the scan instead of
  // tunnelling.
  env::FloorPlan walled(12.0, 4.0);
  walled.addReferenceLocation({2.0, 2.0});
  walled.addReferenceLocation({6.0, 2.0});
  walled.addReferenceLocation({10.0, 2.0});
  walled.addWall({{4.0, 0.0}, {4.0, 4.0}});

  ParticleFilter filter(walled, db_);
  filter.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  // Particles attempting to cross the wall die; whatever mass survives
  // sits east of it, so no estimate can remain at the start location.
  const auto fix = filter.update(radio::Fingerprint({-70.0, -40.0}),
                                 sensors::MotionMeasurement{90.0, 4.0});
  EXPECT_NE(fix, 0);
  EXPECT_GT(filter.meanPosition().x, 4.0);
}

TEST_F(ParticleFilterTest, ResetRestarts) {
  ParticleFilter filter(plan_, db_);
  filter.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  filter.reset();
  EXPECT_EQ(filter.particleCount(), 0u);
  EXPECT_EQ(filter.update(radio::Fingerprint({-70.0, -40.0}),
                          std::nullopt),
            2);
}

TEST_F(ParticleFilterTest, EffectiveSampleSizeBounded) {
  ParticleFilter filter(plan_, db_);
  filter.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  const double ess = filter.effectiveSampleSize();
  EXPECT_GT(ess, 0.0);
  EXPECT_LE(ess, static_cast<double>(filter.particleCount()) + 1e-9);
}

TEST_F(ParticleFilterTest, DeterministicGivenSeed) {
  ParticleFilter a(plan_, db_, {}, 7);
  ParticleFilter b(plan_, db_, {}, 7);
  const radio::Fingerprint scan({-50.0, -60.0});
  EXPECT_EQ(a.update(scan, std::nullopt), b.update(scan, std::nullopt));
  const sensors::MotionMeasurement motion{90.0, 4.0};
  EXPECT_EQ(a.update(scan, motion), b.update(scan, motion));
}

TEST_F(ParticleFilterTest, TracksWalkInOfficeHall) {
  // End to end: the filter follows a real simulated walk with decent
  // accuracy (not necessarily beating MoLoc, but far above random).
  eval::WorldConfig config;
  config.trainingTraces = 2;  // Motion DB unused by the filter.
  config.legsPerTrainingTrace = 3;
  eval::ExperimentWorld world(config);
  const auto& user = world.users().front();

  ParticleFilter filter(world.hall().plan, world.fingerprintDb());
  eval::ErrorStats stats;
  for (int t = 0; t < 6; ++t) {
    const auto trace = world.makeTrace(user, 10, world.evalRng());
    filter.reset();
    filter.update(trace.initialScan, std::nullopt);
    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      const auto fix = filter.update(interval.scanAtArrival, motion);
      stats.add({fix, interval.toTruth,
                 world.locationDistance(fix, interval.toTruth)});
    }
  }
  EXPECT_GT(stats.accuracy(), 0.35);
  EXPECT_LT(stats.meanError(), 4.0);
}

}  // namespace
}  // namespace moloc::baseline
