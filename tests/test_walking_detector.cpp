#include "sensors/walking_detector.hpp"

#include <gtest/gtest.h>

#include "sensors/accelerometer_model.hpp"
#include "util/rng.hpp"

namespace moloc::sensors {
namespace {

TEST(WalkingDetector, DetectsSyntheticWalking) {
  AccelerometerModel model;
  util::Rng rng(1);
  const auto samples = model.walkingSamples(150, 1.8, rng);
  const WalkingDetector detector;
  EXPECT_TRUE(detector.isWalking(samples));
}

TEST(WalkingDetector, RejectsIdle) {
  AccelerometerModel model;
  util::Rng rng(2);
  const auto samples = model.idleSamples(150, rng);
  const WalkingDetector detector;
  EXPECT_FALSE(detector.isWalking(samples));
}

TEST(WalkingDetector, RejectsTooFewSamples) {
  const WalkingDetector detector;
  const std::vector<double> few{9.8, 15.0, 5.0};
  EXPECT_FALSE(detector.isWalking(few));
}

TEST(WalkingDetector, WindowVarianceOfConstantIsZero) {
  const std::vector<double> flat(50, 9.81);
  EXPECT_DOUBLE_EQ(WalkingDetector::windowVariance(flat), 0.0);
}

TEST(WalkingDetector, WindowVarianceOfTinyWindow) {
  EXPECT_DOUBLE_EQ(WalkingDetector::windowVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(WalkingDetector::windowVariance({{9.8}}), 0.0);
}

TEST(WalkingDetector, ThresholdSeparates) {
  WalkingDetectorParams params;
  params.varianceThreshold = 1e9;  // Impossibly high.
  const WalkingDetector strict(params);
  AccelerometerModel model;
  util::Rng rng(3);
  EXPECT_FALSE(strict.isWalking(model.walkingSamples(150, 1.8, rng)));
}

/// Across plausible cadences, synthetic walking always clears the
/// default threshold.
class WalkingCadenceTest : public ::testing::TestWithParam<double> {};

TEST_P(WalkingCadenceTest, AlwaysDetected) {
  AccelerometerModel model;
  util::Rng rng(4);
  const auto samples = model.walkingSamples(200, GetParam(), rng);
  EXPECT_TRUE(WalkingDetector{}.isWalking(samples));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WalkingCadenceTest,
                         ::testing::Values(1.4, 1.6, 1.8, 2.0, 2.2));

}  // namespace
}  // namespace moloc::sensors
