#include "util/stats.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace moloc::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known sample: mean 5, sum of squared deviations 32, n-1 = 7.
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_EQ(stddev(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_EQ(maxValue(xs), 7.0);
  EXPECT_EQ(minValue(xs), -1.0);
  EXPECT_EQ(maxValue({}), 0.0);
  EXPECT_EQ(minValue({}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Stats, PercentileClampsOutOfRange) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 2.0);
}

TEST(Stats, FractionBelow) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fractionBelow(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fractionBelow(xs, 1.0), 0.0);  // strictly below
  EXPECT_DOUBLE_EQ(fractionBelow(xs, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fractionBelow({}, 1.0), 0.0);
}

TEST(Stats, EmpiricalCdfIsSortedAndEndsAtOne) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const auto cdf = empiricalCdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative, cdf[i].cumulative);
  }
}

TEST(Stats, SampledCdfDownsamples) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(static_cast<double>(i));
  const auto cdf = sampledCdf(xs, 10);
  ASSERT_EQ(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 999.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(Stats, SampledCdfReturnsFullWhenSmall) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(sampledCdf(xs, 10).size(), 2u);
}

TEST(RunningStats, MatchesBatchStats) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.min(), 2.0);
}

TEST(RunningStats, EmptyIsAllZero) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats rs;
  rs.add(-5.0);
  rs.add(-1.0);
  EXPECT_EQ(rs.min(), -5.0);
  EXPECT_EQ(rs.max(), -1.0);
  EXPECT_DOUBLE_EQ(rs.mean(), -3.0);
}

TEST(BootstrapCi, DegenerateInputs) {
  Rng rng(1);
  const auto empty = bootstrapMeanCi({}, 0.95, 100, rng);
  EXPECT_EQ(empty.estimate, 0.0);
  EXPECT_EQ(empty.lower, empty.upper);

  const std::vector<double> one{5.0};
  const auto single = bootstrapMeanCi(one, 0.95, 100, rng);
  EXPECT_EQ(single.estimate, 5.0);
  EXPECT_EQ(single.lower, 5.0);
  EXPECT_EQ(single.upper, 5.0);
}

TEST(BootstrapCi, BracketsTheMean) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const auto ci = bootstrapMeanCi(xs, 0.95, 2000, rng);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_NEAR(ci.estimate, 10.0, 0.5);
  // Width roughly 2 * 1.96 * sigma / sqrt(n) ~ 0.55.
  EXPECT_GT(ci.upper - ci.lower, 0.2);
  EXPECT_LT(ci.upper - ci.lower, 1.2);
}

TEST(BootstrapCi, HigherConfidenceIsWider) {
  Rng rngData(3);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rngData.normal(0.0, 1.0));
  Rng rngA(4);
  Rng rngB(4);
  const auto narrow = bootstrapMeanCi(xs, 0.5, 2000, rngA);
  const auto wide = bootstrapMeanCi(xs, 0.99, 2000, rngB);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(BootstrapCi, ConstantSampleHasZeroWidth) {
  Rng rng(5);
  const std::vector<double> xs(50, 3.25);
  const auto ci = bootstrapMeanCi(xs, 0.95, 500, rng);
  EXPECT_DOUBLE_EQ(ci.lower, 3.25);
  EXPECT_DOUBLE_EQ(ci.upper, 3.25);
}

/// Property sweep: percentile is monotone in its argument.
class PercentileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotoneTest, MonotoneNonDecreasing) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
  const double p = GetParam();
  EXPECT_LE(percentile(xs, p), percentile(xs, p + 10.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotoneTest,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 50.0,
                                           65.0, 80.0, 90.0));

}  // namespace
}  // namespace moloc::util
