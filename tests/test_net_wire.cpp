#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "store/crc32c.hpp"

namespace moloc::net {
namespace {

// ---- Raw little-endian builders (independent of the encoder under
// test, so a framing bug cannot hide behind its own inverse). --------

void rawU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void rawU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void rawU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// A 12-byte header with every field chosen by the test.
std::string rawHeader(std::uint32_t magic, std::uint8_t version,
                      std::uint8_t type, std::uint32_t payloadLen) {
  std::string h;
  rawU32(h, magic);
  rawU8(h, version);
  rawU8(h, type);
  rawU8(h, 0);
  rawU8(h, 0);
  rawU32(h, payloadLen);
  return h;
}

WireFault faultOf(const std::string& bytes) {
  FrameAssembler assembler;
  assembler.feed(bytes.data(), bytes.size());
  Frame frame;
  try {
    while (assembler.next(frame)) {
    }
  } catch (const ProtocolError& e) {
    return e.fault();
  }
  ADD_FAILURE() << "expected a ProtocolError";
  return WireFault::kBadMagic;
}

WireScan sampleScan(std::uint64_t sessionId) {
  WireScan s;
  s.sessionId = sessionId;
  s.scan = radio::Fingerprint({-48.5, -61.25, -70.0});
  s.imu = sensors::ImuTrace(50.0);
  for (int i = 0; i < 5; ++i) {
    sensors::ImuSample sample;
    sample.t = 0.02 * i;
    sample.accelMagnitude = 9.81 + 0.3 * i;
    sample.compassDeg = 87.0 + i;
    sample.gyroRateDegPerSec = -2.5 * i;
    s.imu.append(sample);
  }
  return s;
}

void expectScanEq(const WireScan& a, const WireScan& b) {
  EXPECT_EQ(a.sessionId, b.sessionId);
  const auto aRss = a.scan.values();
  const auto bRss = b.scan.values();
  ASSERT_EQ(aRss.size(), bRss.size());
  for (std::size_t i = 0; i < aRss.size(); ++i) EXPECT_EQ(aRss[i], bRss[i]);
  EXPECT_EQ(a.imu.sampleRateHz(), b.imu.sampleRateHz());
  ASSERT_EQ(a.imu.samples().size(), b.imu.samples().size());
  for (std::size_t i = 0; i < a.imu.samples().size(); ++i) {
    EXPECT_EQ(a.imu.samples()[i].t, b.imu.samples()[i].t);
    EXPECT_EQ(a.imu.samples()[i].accelMagnitude,
              b.imu.samples()[i].accelMagnitude);
    EXPECT_EQ(a.imu.samples()[i].compassDeg, b.imu.samples()[i].compassDeg);
    EXPECT_EQ(a.imu.samples()[i].gyroRateDegPerSec,
              b.imu.samples()[i].gyroRateDegPerSec);
  }
}

core::LocationEstimate sampleEstimate() {
  core::LocationEstimate e;
  e.location = 3;
  e.probability = 0.625;
  e.candidates.push_back({3, 0.625});
  e.candidates.push_back({7, 0.25});
  e.candidates.push_back({1, 0.125});
  return e;
}

/// Frame → assembler → payload, asserting exactly one frame comes out.
Frame decodeOne(const std::string& frame) {
  FrameAssembler assembler;
  assembler.feed(frame.data(), frame.size());
  Frame out;
  EXPECT_TRUE(assembler.next(out));
  EXPECT_EQ(assembler.buffered(), 0u);
  Frame extra;
  EXPECT_FALSE(assembler.next(extra));
  return out;
}

// ---- Round trips ------------------------------------------------------

TEST(NetWire, LocalizeRequestRoundTrips) {
  LocalizeRequest msg;
  msg.tag = 0x1122334455667788ull;
  msg.scan = sampleScan(42);
  const Frame frame = decodeOne(encodeLocalizeRequest(msg));
  EXPECT_EQ(frame.type, MsgType::kLocalize);
  const LocalizeRequest back = decodeLocalizeRequest(frame.payload);
  EXPECT_EQ(back.tag, msg.tag);
  expectScanEq(back.scan, msg.scan);
}

TEST(NetWire, LocalizeBatchRequestRoundTrips) {
  LocalizeBatchRequest msg;
  msg.tag = 7;
  msg.scans.push_back(sampleScan(1));
  msg.scans.push_back(sampleScan(2));
  const Frame frame = decodeOne(encodeLocalizeBatchRequest(msg));
  EXPECT_EQ(frame.type, MsgType::kLocalizeBatch);
  const LocalizeBatchRequest back =
      decodeLocalizeBatchRequest(frame.payload);
  EXPECT_EQ(back.tag, msg.tag);
  ASSERT_EQ(back.scans.size(), 2u);
  expectScanEq(back.scans[0], msg.scans[0]);
  expectScanEq(back.scans[1], msg.scans[1]);
}

TEST(NetWire, ReportObservationRequestRoundTrips) {
  ReportObservationRequest msg;
  msg.tag = 9;
  msg.start = 4;
  msg.end = 5;
  msg.directionDeg = 91.5;
  msg.offsetMeters = 3.75;
  const Frame frame = decodeOne(encodeReportObservationRequest(msg));
  EXPECT_EQ(frame.type, MsgType::kReportObservation);
  const ReportObservationRequest back =
      decodeReportObservationRequest(frame.payload);
  EXPECT_EQ(back.tag, msg.tag);
  EXPECT_EQ(back.start, msg.start);
  EXPECT_EQ(back.end, msg.end);
  EXPECT_EQ(back.directionDeg, msg.directionDeg);
  EXPECT_EQ(back.offsetMeters, msg.offsetMeters);
}

TEST(NetWire, FlushAndStatsRequestsRoundTrip) {
  const Frame flush = decodeOne(encodeFlushRequest({11}));
  EXPECT_EQ(flush.type, MsgType::kFlush);
  EXPECT_EQ(decodeFlushRequest(flush.payload).tag, 11u);

  const Frame stats = decodeOne(encodeStatsRequest({12}));
  EXPECT_EQ(stats.type, MsgType::kStats);
  EXPECT_EQ(decodeStatsRequest(stats.payload).tag, 12u);
}

TEST(NetWire, LocalizeResponseRoundTripsOkAndError) {
  LocalizeResponse ok;
  ok.tag = 21;
  ok.estimate = sampleEstimate();
  const Frame okFrame = decodeOne(encodeLocalizeResponse(ok));
  EXPECT_EQ(okFrame.type, MsgType::kLocalizeResponse);
  const LocalizeResponse okBack = decodeLocalizeResponse(okFrame.payload);
  EXPECT_EQ(okBack.tag, 21u);
  EXPECT_EQ(okBack.status, Status::kOk);
  EXPECT_EQ(okBack.estimate.location, ok.estimate.location);
  EXPECT_EQ(okBack.estimate.probability, ok.estimate.probability);
  ASSERT_EQ(okBack.estimate.candidates.size(), 3u);
  EXPECT_EQ(okBack.estimate.candidates[1].location, 7);
  EXPECT_EQ(okBack.estimate.candidates[1].probability, 0.25);

  LocalizeResponse err;
  err.tag = 22;
  err.status = Status::kOverloaded;
  err.message = "intake queue full";
  const LocalizeResponse errBack =
      decodeLocalizeResponse(decodeOne(encodeLocalizeResponse(err)).payload);
  EXPECT_EQ(errBack.status, Status::kOverloaded);
  EXPECT_EQ(errBack.message, "intake queue full");
  EXPECT_TRUE(errBack.estimate.candidates.empty());
}

TEST(NetWire, LocalizeBatchResponseRoundTrips) {
  LocalizeBatchResponse msg;
  msg.tag = 31;
  msg.estimates.push_back(sampleEstimate());
  msg.estimates.push_back(core::LocationEstimate{});
  const LocalizeBatchResponse back = decodeLocalizeBatchResponse(
      decodeOne(encodeLocalizeBatchResponse(msg)).payload);
  EXPECT_EQ(back.tag, 31u);
  ASSERT_EQ(back.estimates.size(), 2u);
  EXPECT_EQ(back.estimates[0].location, 3);
  EXPECT_EQ(back.estimates[1].location, core::LocationEstimate{}.location);
}

TEST(NetWire, ReportObservationResponseCarriesTheVerdict) {
  ReportObservationResponse msg;
  msg.tag = 41;
  msg.accepted = true;
  const ReportObservationResponse back = decodeReportObservationResponse(
      decodeOne(encodeReportObservationResponse(msg)).payload);
  EXPECT_EQ(back.tag, 41u);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_TRUE(back.accepted);

  msg.status = Status::kShuttingDown;
  msg.message = "drain in progress";
  const ReportObservationResponse drained = decodeReportObservationResponse(
      decodeOne(encodeReportObservationResponse(msg)).payload);
  EXPECT_EQ(drained.status, Status::kShuttingDown);
  EXPECT_EQ(drained.message, "drain in progress");
}

TEST(NetWire, FlushAndStatsResponsesRoundTrip) {
  FlushResponse flush;
  flush.tag = 51;
  EXPECT_EQ(decodeFlushResponse(
                decodeOne(encodeFlushResponse(flush)).payload)
                .status,
            Status::kOk);

  StatsResponse stats;
  stats.tag = 52;
  stats.stats.sessions = 3;
  stats.stats.worldGeneration = 4;
  stats.stats.intakeApplied = 5;
  stats.stats.requestsServed = 6;
  stats.stats.connectionsAccepted = 7;
  stats.stats.cleanDisconnects = 8;
  stats.stats.overloadRejections = 9;
  stats.stats.protocolErrors = 10;
  const StatsResponse back =
      decodeStatsResponse(decodeOne(encodeStatsResponse(stats)).payload);
  EXPECT_EQ(back.tag, 52u);
  EXPECT_EQ(back.stats.sessions, 3u);
  EXPECT_EQ(back.stats.worldGeneration, 4u);
  EXPECT_EQ(back.stats.intakeApplied, 5u);
  EXPECT_EQ(back.stats.requestsServed, 6u);
  EXPECT_EQ(back.stats.connectionsAccepted, 7u);
  EXPECT_EQ(back.stats.cleanDisconnects, 8u);
  EXPECT_EQ(back.stats.overloadRejections, 9u);
  EXPECT_EQ(back.stats.protocolErrors, 10u);
}

// ---- Assembler behaviour ----------------------------------------------

TEST(NetWire, AssemblerReassemblesByteByByte) {
  LocalizeRequest msg;
  msg.tag = 77;
  msg.scan = sampleScan(5);
  const std::string frame = encodeLocalizeRequest(msg);

  FrameAssembler assembler;
  Frame out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    assembler.feed(frame.data() + i, 1);
    EXPECT_FALSE(assembler.next(out))
        << "frame surfaced after only " << (i + 1) << " bytes";
  }
  assembler.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(assembler.next(out));
  EXPECT_EQ(out.type, MsgType::kLocalize);
  EXPECT_EQ(decodeLocalizeRequest(out.payload).tag, 77u);
}

TEST(NetWire, AssemblerYieldsPipelinedFramesInOrder) {
  std::string stream;
  for (std::uint64_t tag = 0; tag < 32; ++tag)
    stream += encodeFlushRequest({tag});
  // Feed in awkward 7-byte slices spanning frame boundaries.
  FrameAssembler assembler;
  std::vector<std::uint64_t> tags;
  Frame out;
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    assembler.feed(stream.data() + i, std::min<std::size_t>(7, stream.size() - i));
    while (assembler.next(out)) tags.push_back(decodeFlushRequest(out.payload).tag);
  }
  ASSERT_EQ(tags.size(), 32u);
  for (std::uint64_t tag = 0; tag < 32; ++tag) EXPECT_EQ(tags[tag], tag);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(NetWire, HeaderFaultsFailFastBeforeThePayloadArrives) {
  // Only 12 header bytes are fed in each case — a correct fail-fast
  // decoder must not wait for payload or CRC to reject these.
  EXPECT_EQ(faultOf(rawHeader(0xDEADBEEF, kWireVersion, 1, 0)),
            WireFault::kBadMagic);
  EXPECT_EQ(faultOf(rawHeader(kMagic, 9, 1, 0)), WireFault::kBadVersion);
  EXPECT_EQ(faultOf(rawHeader(kMagic, kWireVersion, 0, 0)),
            WireFault::kBadType);
  EXPECT_EQ(faultOf(rawHeader(kMagic, kWireVersion, 0x7F, 0)),
            WireFault::kBadType);
  EXPECT_EQ(faultOf(rawHeader(kMagic, kWireVersion, 1,
                              static_cast<std::uint32_t>(kMaxPayloadBytes) + 1)),
            WireFault::kOversizedPayload);
}

TEST(NetWire, EveryCorruptedBitIsRejectedOrLeftIncomplete) {
  const std::string frame = encodeFlushRequest({0xABCDEF0123456789ull});
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      FrameAssembler assembler;
      assembler.feed(damaged.data(), damaged.size());
      Frame out;
      bool rejected = false;
      bool complete = false;
      try {
        complete = assembler.next(out);
      } catch (const ProtocolError&) {
        rejected = true;
      }
      // A flip may grow the length field (frame now looks incomplete:
      // no output, no error yet) — but it must never pass the CRC.
      EXPECT_TRUE(rejected || !complete)
          << "bit " << bit << " of byte " << byte
          << " flipped and the frame still decoded";
    }
  }
}

TEST(NetWire, CorruptPayloadByteFailsTheCrc) {
  std::string frame = encodeStatsRequest({99});
  frame[kHeaderBytes] = static_cast<char>(frame[kHeaderBytes] ^ 0x40);
  EXPECT_EQ(faultOf(frame), WireFault::kBadCrc);
}

TEST(NetWire, NonzeroReservedBytesAreRejectedFailFast) {
  // The spec says the reserved bytes must be 0 and receivers enforce
  // it, so future use of those bytes can never be ambiguous.  Only 12
  // header bytes are fed: rejection must not wait for payload or CRC.
  for (const std::size_t byte : {std::size_t{6}, std::size_t{7}}) {
    std::string header = rawHeader(kMagic, kWireVersion, 1, 0);
    header[byte] = 0x01;
    EXPECT_EQ(faultOf(header), WireFault::kMalformedPayload)
        << "reserved byte at offset " << byte;
  }

  // A full frame with a nonzero reserved byte (CRC recomputed to
  // match) is equally rejected — the check is not just CRC fallout.
  std::string frame = encodeFlushRequest({1});
  frame[7] = 0x01;
  const std::uint32_t crc = store::crc32c(
      frame.data() + 4, frame.size() - 4 - kTrailerBytes);
  for (int i = 0; i < 4; ++i)
    frame[frame.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  EXPECT_EQ(faultOf(frame), WireFault::kMalformedPayload);
}

TEST(NetWire, CorruptTrailerFailsTheCrc) {
  std::string frame = encodeFlushRequest({1});
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0x01);
  EXPECT_EQ(faultOf(frame), WireFault::kBadCrc);
}

TEST(NetWire, EncodeFrameRejectsOversizedPayloads) {
  const std::string huge(kMaxPayloadBytes + 1, 'x');
  try {
    encodeFrame(MsgType::kFlush, huge);
    FAIL() << "oversized payload was framed";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kOversizedPayload);
  }
}

// ---- Payload torture --------------------------------------------------

TEST(NetWire, TrailingGarbageAfterTheBodyIsMalformed) {
  std::string payload;
  rawU64(payload, 5);
  payload.push_back('\0');  // One byte past the flush body.
  try {
    decodeFlushRequest(payload);
    FAIL() << "trailing garbage decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(NetWire, TruncatedBodiesAreMalformedAtEveryLength) {
  LocalizeRequest msg;
  msg.tag = 13;
  msg.scan = sampleScan(6);
  // Encode through the public encoder, then strip the framing to get
  // the canonical payload bytes.
  const std::string payload = decodeOne(encodeLocalizeRequest(msg)).payload;
  for (std::size_t len = 0; len < payload.size(); ++len) {
    try {
      decodeLocalizeRequest(std::string_view(payload.data(), len));
      FAIL() << "truncated payload of " << len << " bytes decoded";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
    }
  }
  EXPECT_EQ(decodeLocalizeRequest(payload).tag, 13u);
}

TEST(NetWire, HostileCountFieldsAreRejectedWithoutAllocation) {
  // A batch claiming 2^32-1 scans in a 16-byte payload must be thrown
  // out by arithmetic, not by an allocator.
  std::string batch;
  rawU64(batch, 1);
  rawU32(batch, 0xFFFFFFFFu);
  try {
    decodeLocalizeBatchRequest(batch);
    FAIL() << "hostile scan count decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }

  // Same for a scan's AP count inside a Localize payload.
  std::string localize;
  rawU64(localize, 1);   // tag
  rawU64(localize, 2);   // sessionId
  rawU32(localize, 0x40000000u);
  try {
    decodeLocalizeRequest(localize);
    FAIL() << "hostile AP count decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }

  // And for an error message's string length in a response.
  std::string response;
  rawU64(response, 1);
  rawU8(response, static_cast<std::uint8_t>(Status::kInternalError));
  rawU32(response, 0xFFFFFF00u);
  try {
    decodeFlushResponse(response);
    FAIL() << "hostile message length decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(NetWire, UnknownStatusByteIsMalformed) {
  std::string payload;
  rawU64(payload, 1);
  rawU8(payload, 250);
  try {
    decodeFlushResponse(payload);
    FAIL() << "unknown status decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(NetWire, HostileImuSampleRateIsMalformedNotFatal) {
  // A non-positive sample rate violates the ImuTrace domain; the
  // decoder must translate that rejection into kMalformedPayload
  // rather than leaking std::invalid_argument to the server loop.
  std::string payload;
  rawU64(payload, 1);  // tag
  rawU64(payload, 2);  // sessionId
  rawU32(payload, 0);  // apCount
  std::string rate(8, '\0');
  const double bad = -50.0;
  std::memcpy(rate.data(), &bad, 8);
  payload += rate;
  rawU32(payload, 0);  // sampleCount
  try {
    decodeLocalizeRequest(payload);
    FAIL() << "negative sample rate decoded";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(NetWire, IsKnownMsgTypeMatchesTheEnum) {
  int known = 0;
  for (int raw = 0; raw < 256; ++raw)
    if (isKnownMsgType(static_cast<std::uint8_t>(raw))) ++known;
  EXPECT_EQ(known, 10);
  EXPECT_TRUE(isKnownMsgType(0x01));
  EXPECT_TRUE(isKnownMsgType(0x85));
  EXPECT_FALSE(isKnownMsgType(0x00));
  EXPECT_FALSE(isKnownMsgType(0x06));
  EXPECT_FALSE(isKnownMsgType(0x80));
  EXPECT_FALSE(isKnownMsgType(0x86));
}

}  // namespace
}  // namespace moloc::net
