#include "baseline/hmm_localizer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::baseline {
namespace {

/// A 3-location corridor at 4 m spacing with well-separated
/// fingerprints.
class HmmTest : public ::testing::Test {
 protected:
  HmmTest() {
    plan_.addReferenceLocation({2.0, 2.0});
    plan_.addReferenceLocation({6.0, 2.0});
    plan_.addReferenceLocation({10.0, 2.0});
    graph_ = env::WalkGraph::build(plan_, 4.5);
    db_.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
    db_.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
    db_.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  }

  env::FloorPlan plan_{12.0, 4.0};
  env::WalkGraph graph_;
  radio::FingerprintDatabase db_;
};

TEST_F(HmmTest, RejectsIncompleteDatabase) {
  radio::FingerprintDatabase partial;
  partial.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  EXPECT_THROW(HmmLocalizer(partial, graph_), std::invalid_argument);
}

TEST_F(HmmTest, FirstFixFollowsEmissions) {
  HmmLocalizer hmm(db_, graph_);
  EXPECT_EQ(hmm.update(radio::Fingerprint({-41.0, -69.0}), std::nullopt),
            0);
}

TEST_F(HmmTest, BeliefIsNormalized) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-41.0, -69.0}), std::nullopt);
  double total = 0.0;
  for (double b : hmm.belief()) {
    EXPECT_GE(b, 0.0);
    total += b;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(HmmTest, TransitionFavoursMatchingOffset) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  // Ambiguous second scan (equidistant between 0 and 1), but the user
  // walked 4 m: the step to location 1 explains the offset, staying at
  // 0 does not.
  const auto fix =
      hmm.update(radio::Fingerprint({-47.5, -62.5}), 4.0);
  EXPECT_EQ(fix, 1);
}

TEST_F(HmmTest, ZeroOffsetFavoursStaying) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  const auto fix = hmm.update(radio::Fingerprint({-47.5, -62.5}), 0.0);
  EXPECT_EQ(fix, 0);
}

TEST_F(HmmTest, ChainsAcrossSteps) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  hmm.update(radio::Fingerprint({-55.0, -55.0}), 4.0);
  const auto fix = hmm.update(radio::Fingerprint({-70.0, -40.0}), 4.0);
  EXPECT_EQ(fix, 2);
}

TEST_F(HmmTest, MissingMotionRestartsFromEmissions) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  const auto fix =
      hmm.update(radio::Fingerprint({-70.0, -40.0}), std::nullopt);
  EXPECT_EQ(fix, 2);
}

TEST_F(HmmTest, ResetClearsBelief) {
  HmmLocalizer hmm(db_, graph_);
  hmm.update(radio::Fingerprint({-40.0, -70.0}), std::nullopt);
  EXPECT_FALSE(hmm.belief().empty());
  hmm.reset();
  EXPECT_TRUE(hmm.belief().empty());
}

TEST_F(HmmTest, SurvivesExtremeEmissionGap) {
  // A scan wildly far from every entry must not underflow to NaN.
  HmmParams params;
  params.emissionSigmaDb = 0.5;  // Very sharp emissions.
  HmmLocalizer hmm(db_, graph_, params);
  const auto fix =
      hmm.update(radio::Fingerprint({-200.0, -200.0}), std::nullopt);
  EXPECT_GE(fix, 0);
  EXPECT_LE(fix, 2);
  double total = 0.0;
  for (double b : hmm.belief()) total += b;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace moloc::baseline
