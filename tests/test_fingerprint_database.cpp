#include "radio/fingerprint_database.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace moloc::radio {
namespace {

FingerprintDatabase threeLocationDb() {
  FingerprintDatabase db;
  db.addLocation(0, Fingerprint({-40.0, -70.0}));
  db.addLocation(1, Fingerprint({-55.0, -55.0}));
  db.addLocation(2, Fingerprint({-70.0, -40.0}));
  return db;
}

TEST(FingerprintDatabase, SizeAndApCount) {
  const auto db = threeLocationDb();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.apCount(), 2u);
  EXPECT_FALSE(db.empty());
}

TEST(FingerprintDatabase, EmptyDatabase) {
  const FingerprintDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.apCount(), 0u);
  EXPECT_THROW(db.nearest(Fingerprint({-40.0})), std::logic_error);
  EXPECT_THROW(db.query(Fingerprint({-40.0}), 1), std::logic_error);
}

TEST(FingerprintDatabase, RejectsEmptyFingerprint) {
  FingerprintDatabase db;
  EXPECT_THROW(db.addLocation(0, Fingerprint{}), std::invalid_argument);
}

TEST(FingerprintDatabase, RejectsMismatchedDimensions) {
  auto db = threeLocationDb();
  EXPECT_THROW(db.addLocation(3, Fingerprint({-40.0})),
               std::invalid_argument);
}

TEST(FingerprintDatabase, RejectsDuplicateIds) {
  auto db = threeLocationDb();
  EXPECT_THROW(db.addLocation(1, Fingerprint({-40.0, -40.0})),
               std::invalid_argument);
}

TEST(FingerprintDatabase, EntryLookup) {
  const auto db = threeLocationDb();
  EXPECT_DOUBLE_EQ(db.entry(1)[0], -55.0);
  EXPECT_TRUE(db.contains(2));
  EXPECT_FALSE(db.contains(9));
  EXPECT_THROW(db.entry(9), std::out_of_range);
}

TEST(FingerprintDatabase, NearestImplementsEq2) {
  const auto db = threeLocationDb();
  EXPECT_EQ(db.nearest(Fingerprint({-41.0, -69.0})), 0);
  EXPECT_EQ(db.nearest(Fingerprint({-56.0, -54.0})), 1);
  EXPECT_EQ(db.nearest(Fingerprint({-69.0, -41.0})), 2);
}

TEST(FingerprintDatabase, QueryOrdersByDissimilarity) {
  const auto db = threeLocationDb();
  const auto matches = db.query(Fingerprint({-42.0, -68.0}), 3);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].location, 0);
  EXPECT_EQ(matches[1].location, 1);
  EXPECT_EQ(matches[2].location, 2);
  EXPECT_LT(matches[0].dissimilarity, matches[1].dissimilarity);
  EXPECT_LT(matches[1].dissimilarity, matches[2].dissimilarity);
}

TEST(FingerprintDatabase, QueryProbabilitiesFollowEq4) {
  const auto db = threeLocationDb();
  const auto matches = db.query(Fingerprint({-42.0, -68.0}), 3);
  double total = 0.0;
  for (const auto& m : matches) total += m.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Closer match gets higher probability, with the 1/m shape.
  EXPECT_GT(matches[0].probability, matches[1].probability);
  EXPECT_GT(matches[1].probability, matches[2].probability);
  const double ratio = matches[0].probability / matches[1].probability;
  EXPECT_NEAR(ratio, matches[1].dissimilarity / matches[0].dissimilarity,
              1e-9);
}

TEST(FingerprintDatabase, ExactMatchDominatesProbability) {
  const auto db = threeLocationDb();
  const auto matches = db.query(Fingerprint({-40.0, -70.0}), 3);
  EXPECT_EQ(matches[0].location, 0);
  // Dominant, but bounded: the 0.5 dB dissimilarity floor keeps even
  // an exact match from claiming near-certainty (sub-dB gaps are
  // coincidence, not information).
  EXPECT_GT(matches[0].probability, 0.9);
  EXPECT_LT(matches[0].probability, 1.0);
}

TEST(FingerprintDatabase, QueryClampsKToSize) {
  const auto db = threeLocationDb();
  EXPECT_EQ(db.query(Fingerprint({-40.0, -70.0}), 10).size(), 3u);
}

TEST(FingerprintDatabase, QueryRejectsZeroK) {
  const auto db = threeLocationDb();
  EXPECT_THROW(db.query(Fingerprint({-40.0, -70.0}), 0),
               std::invalid_argument);
}

TEST(FingerprintDatabase, NearestAgreesWithQueryTop1) {
  const auto db = threeLocationDb();
  for (double x : {-40.0, -50.0, -60.0, -75.0}) {
    const Fingerprint probe({x, -55.0});
    EXPECT_EQ(db.nearest(probe), db.query(probe, 1).front().location);
  }
}

TEST(FingerprintDatabase, TruncatedToKeepsApPrefix) {
  FingerprintDatabase db;
  db.addLocation(0, Fingerprint({-40.0, -70.0, -90.0}));
  db.addLocation(1, Fingerprint({-55.0, -55.0, -30.0}));
  const auto cut = db.truncatedTo(2);
  EXPECT_EQ(cut.apCount(), 2u);
  EXPECT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut.entry(1)[1], -55.0);
}

TEST(FingerprintDatabase, TruncationChangesNearestWhenDecisiveApDropped) {
  FingerprintDatabase db;
  // Locations identical on AP 0, distinguished only by AP 1.
  db.addLocation(0, Fingerprint({-50.0, -40.0}));
  db.addLocation(1, Fingerprint({-50.0, -80.0}));
  const Fingerprint probe({-50.0, -78.0});
  EXPECT_EQ(db.nearest(probe), 1);
  const auto cut = db.truncatedTo(1);
  // With only AP 0 both are equidistant; nearest returns the first.
  EXPECT_EQ(cut.nearest(probe.truncated(1)), 0);
}

/// Parameterized sweep: Eq. 4 probabilities are a proper distribution
/// for any k.
class QueryNormalizationTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueryNormalizationTest, ProbabilitiesSumToOne) {
  FingerprintDatabase db;
  for (int i = 0; i < 10; ++i)
    db.addLocation(i, Fingerprint({-40.0 - 3.0 * i, -70.0 + 2.5 * i}));
  const auto matches = db.query(Fingerprint({-52.0, -61.0}), GetParam());
  double total = 0.0;
  for (const auto& m : matches) {
    EXPECT_GT(m.probability, 0.0);
    total += m.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(matches.size(), std::min<std::size_t>(GetParam(), 10));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueryNormalizationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 15));

TEST(FingerprintDatabase, IndexedLookupAtScale) {
  // The id->index map must preserve the exact lookup semantics for
  // arbitrary, non-contiguous, out-of-order ids.
  FingerprintDatabase db;
  for (int i = 0; i < 500; ++i) {
    const env::LocationId id = (i * 37) % 1000;  // 37 coprime to 1000.
    db.addLocation(id, Fingerprint({-40.0 - i * 0.1, -70.0 + i * 0.05}));
  }
  EXPECT_EQ(db.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const env::LocationId id = (i * 37) % 1000;
    ASSERT_TRUE(db.contains(id));
    EXPECT_DOUBLE_EQ(db.entry(id)[0], -40.0 - i * 0.1);
  }
  EXPECT_FALSE(db.contains(1));  // 1 is not a multiple of 37 mod 1000.
  EXPECT_THROW(db.entry(1), std::out_of_range);
  // Duplicate rejection still works against the index.
  EXPECT_THROW(db.addLocation(37, Fingerprint({-1.0, -1.0})),
               std::invalid_argument);
}

TEST(FingerprintDatabase, IndexSurvivesCopyAndTruncation) {
  const auto db = threeLocationDb();
  const FingerprintDatabase copy = db;
  EXPECT_DOUBLE_EQ(copy.entry(1)[0], -55.0);
  EXPECT_THROW(copy.entry(9), std::out_of_range);

  const auto truncated = db.truncatedTo(1);
  EXPECT_EQ(truncated.apCount(), 1u);
  EXPECT_TRUE(truncated.contains(2));
  EXPECT_DOUBLE_EQ(truncated.entry(2)[0], -70.0);
}

TEST(FingerprintDatabase, QueryIntoMatchesQueryAndReusesBuffer) {
  const auto db = threeLocationDb();
  const Fingerprint probe({-52.0, -61.0});
  const auto fresh = db.query(probe, 2);

  std::vector<Match> scratch;
  db.queryInto(probe, 2, scratch);
  ASSERT_EQ(scratch.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(scratch[i].location, fresh[i].location);
    EXPECT_DOUBLE_EQ(scratch[i].dissimilarity, fresh[i].dissimilarity);
    EXPECT_DOUBLE_EQ(scratch[i].probability, fresh[i].probability);
  }

  // Second call reuses the buffer and must fully replace its contents.
  const Fingerprint other({-70.0, -41.0});
  db.queryInto(other, 3, scratch);
  const auto expected = db.query(other, 3);
  ASSERT_EQ(scratch.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(scratch[i].location, expected[i].location);
    EXPECT_DOUBLE_EQ(scratch[i].probability, expected[i].probability);
  }
}

}  // namespace
}  // namespace moloc::radio
