// Lingering users: pause-aware trajectories, idle intervals in the
// trace simulator, and the engine's graceful handling of scans without
// motion — end to end.

#include <gtest/gtest.h>

#include "eval/experiment_world.hpp"
#include "traj/trajectory_generator.hpp"

namespace moloc {
namespace {

TEST(Pauses, TrajectoryCanRepeatNodes) {
  const auto hall = env::makeOfficeHall();
  traj::TrajectoryParams params;
  params.pauseProbability = 0.5;
  const traj::TrajectoryGenerator gen(hall.graph, params);
  util::Rng rng(1);
  const auto walk = gen.randomWalk(0, 200, rng);
  int pauses = 0;
  for (std::size_t i = 1; i < walk.size(); ++i)
    if (walk[i] == walk[i - 1]) ++pauses;
  EXPECT_GT(pauses, 50);
  EXPECT_LT(pauses, 150);
  // Non-pause steps remain graph legs.
  for (std::size_t i = 1; i < walk.size(); ++i)
    if (walk[i] != walk[i - 1])
      EXPECT_TRUE(hall.graph.adjacent(walk[i - 1], walk[i]));
}

TEST(Pauses, ZeroProbabilityNeverPauses) {
  const auto hall = env::makeOfficeHall();
  const traj::TrajectoryGenerator gen(hall.graph);  // Default 0.
  util::Rng rng(2);
  const auto walk = gen.randomWalk(0, 200, rng);
  for (std::size_t i = 1; i < walk.size(); ++i)
    EXPECT_NE(walk[i], walk[i - 1]);
}

class PauseTraceTest : public ::testing::Test {
 protected:
  PauseTraceTest() {
    radio_ = std::make_unique<radio::RadioEnvironment>(
        hall_.plan,
        std::vector<radio::AccessPoint>{{0, hall_.apPositions[0]},
                                        {1, hall_.apPositions[3]}},
        radio::PropagationParams{});
    sim_ = std::make_unique<traj::TraceSimulator>(*radio_, hall_.graph);
  }

  env::OfficeHall hall_ = env::makeOfficeHall();
  std::unique_ptr<radio::RadioEnvironment> radio_;
  std::unique_ptr<traj::TraceSimulator> sim_;
  traj::UserProfile user_ = traj::makeDefaultUsers().front();
};

TEST_F(PauseTraceTest, IdleIntervalHasZeroOffsetTruth) {
  util::Rng rng(3);
  const auto trace = sim_->simulate(user_, {0, 1, 1, 2}, rng);
  ASSERT_EQ(trace.intervals.size(), 3u);
  EXPECT_EQ(trace.intervals[1].fromTruth, 1);
  EXPECT_EQ(trace.intervals[1].toTruth, 1);
  EXPECT_EQ(trace.intervals[1].trueOffsetMeters, 0.0);
  // Pause duration matches the configured interval.
  EXPECT_NEAR(trace.intervals[1].imu.duration(), 3.0, 0.1);
}

TEST_F(PauseTraceTest, IdleIntervalYieldsStationaryMeasurement) {
  util::Rng rng(4);
  const auto trace = sim_->simulate(user_, {0, 1, 1, 2}, rng);
  const sensors::MotionProcessor processor;
  const auto idle = processor.process(trace.intervals[1].imu,
                                      user_.estimatedStepLengthMeters());
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(idle->offsetMeters, 0.0);
  // The walking intervals produce genuine offsets.
  const auto walking = processor.process(
      trace.intervals[0].imu, user_.estimatedStepLengthMeters());
  ASSERT_TRUE(walking.has_value());
  EXPECT_GT(walking->offsetMeters, 1.0);
}

TEST_F(PauseTraceTest, PauseOnlyRouteWorks) {
  util::Rng rng(5);
  const auto trace = sim_->simulate(user_, {7, 7, 7}, rng);
  EXPECT_EQ(trace.intervals.size(), 2u);
  for (const auto& interval : trace.intervals) {
    EXPECT_EQ(interval.fromTruth, 7);
    EXPECT_EQ(interval.toTruth, 7);
  }
}

TEST(Pauses, EngineStaysAccurateThroughPauses) {
  // End to end: walks with frequent pauses still localize well — the
  // engine degrades to fingerprint updates during idle intervals and
  // keeps its candidate set.
  eval::WorldConfig config;  // Paper-scale training.
  eval::ExperimentWorld world(config);

  const auto& hall = world.hall();
  traj::TrajectoryParams pausey;
  pausey.pauseProbability = 0.3;
  const traj::TrajectoryGenerator gen(hall.graph, pausey);

  // Rebuild a simulator against the world's radio (same params).
  traj::TraceSimulator sim(world.radio(), hall.graph,
                           world.config().traceSim);

  auto engine = world.makeEngine();
  eval::ErrorStats stats;
  for (int t = 0; t < 10; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto route = gen.randomWalk(12, world.evalRng());
    const auto trace = sim.simulate(user, route, world.evalRng());
    engine.reset();
    engine.localize(trace.initialScan, std::nullopt);
    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      const auto fix = engine.localize(interval.scanAtArrival, motion);
      stats.add({fix.location, interval.toTruth,
                 world.locationDistance(fix.location, interval.toTruth)});
    }
  }
  EXPECT_GT(stats.accuracy(), 0.7);
}

}  // namespace
}  // namespace moloc
