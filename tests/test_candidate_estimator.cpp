#include "core/candidate_estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moloc::core {
namespace {

radio::FingerprintDatabase smallDb() {
  radio::FingerprintDatabase db;
  db.addLocation(0, radio::Fingerprint({-40.0, -70.0}));
  db.addLocation(1, radio::Fingerprint({-55.0, -55.0}));
  db.addLocation(2, radio::Fingerprint({-70.0, -40.0}));
  db.addLocation(3, radio::Fingerprint({-45.0, -65.0}));
  return db;
}

TEST(CandidateEstimator, RejectsZeroK) {
  const auto db = smallDb();
  EXPECT_THROW(CandidateEstimator(db, 0), std::invalid_argument);
}

TEST(CandidateEstimator, ReturnsKCandidates) {
  const auto db = smallDb();
  const CandidateEstimator estimator(db, 3);
  EXPECT_EQ(estimator.k(), 3u);
  const auto candidates =
      estimator.estimate(radio::Fingerprint({-42.0, -68.0}));
  EXPECT_EQ(candidates.size(), 3u);
}

TEST(CandidateEstimator, OrderedByDissimilarity) {
  const auto db = smallDb();
  const CandidateEstimator estimator(db, 4);
  const auto candidates =
      estimator.estimate(radio::Fingerprint({-42.0, -68.0}));
  for (std::size_t i = 1; i < candidates.size(); ++i)
    EXPECT_LE(candidates[i - 1].dissimilarity,
              candidates[i].dissimilarity);
  EXPECT_EQ(candidates.front().location, 0);
}

TEST(CandidateEstimator, ProbabilitiesNormalized) {
  const auto db = smallDb();
  const CandidateEstimator estimator(db, 4);
  const auto candidates =
      estimator.estimate(radio::Fingerprint({-50.0, -60.0}));
  double total = 0.0;
  for (const auto& c : candidates) total += c.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CandidateEstimator, MatchesDatabaseQuery) {
  const auto db = smallDb();
  const CandidateEstimator estimator(db, 2);
  const radio::Fingerprint probe({-46.0, -63.0});
  const auto viaEstimator = estimator.estimate(probe);
  const auto viaDb = db.query(probe, 2);
  ASSERT_EQ(viaEstimator.size(), viaDb.size());
  for (std::size_t i = 0; i < viaDb.size(); ++i) {
    EXPECT_EQ(viaEstimator[i].location, viaDb[i].location);
    EXPECT_EQ(viaEstimator[i].probability, viaDb[i].probability);
  }
}

}  // namespace
}  // namespace moloc::core
