#include "traj/trajectory_generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "env/office_hall.hpp"

namespace moloc::traj {
namespace {

class TrajectoryTest : public ::testing::Test {
 protected:
  env::OfficeHall hall_ = env::makeOfficeHall();
};

TEST_F(TrajectoryTest, WalkHasRequestedLegs) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(1);
  const auto walk = gen.randomWalk(0, 15, rng);
  EXPECT_EQ(walk.size(), 16u);
  EXPECT_EQ(walk.front(), 0);
}

TEST_F(TrajectoryTest, ConsecutiveNodesAreAdjacent) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(2);
  const auto walk = gen.randomWalk(5, 40, rng);
  for (std::size_t i = 1; i < walk.size(); ++i)
    EXPECT_TRUE(hall_.graph.adjacent(walk[i - 1], walk[i]))
        << "leg " << i << ": " << walk[i - 1] << " -> " << walk[i];
}

TEST_F(TrajectoryTest, ZeroLegsIsJustStart) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(3);
  const auto walk = gen.randomWalk(9, 0, rng);
  EXPECT_EQ(walk, (std::vector<env::LocationId>{9}));
}

TEST_F(TrajectoryTest, RandomStartCoversManyNodes) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(4);
  std::set<env::LocationId> starts;
  for (int i = 0; i < 300; ++i) starts.insert(gen.randomWalk(3, rng)[0]);
  EXPECT_GT(starts.size(), 20u);  // Of 28 locations.
}

TEST_F(TrajectoryTest, LongWalkCoversWholeHall) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(5);
  std::set<env::LocationId> visited;
  const auto walk = gen.randomWalk(0, 600, rng);
  for (const auto node : walk) visited.insert(node);
  EXPECT_EQ(visited.size(), hall_.graph.nodeCount());
}

TEST_F(TrajectoryTest, UturnsAreRare) {
  TrajectoryParams params;
  params.uturnProbability = 0.1;
  const TrajectoryGenerator gen(hall_.graph, params);
  util::Rng rng(6);
  int uturns = 0;
  int decisions = 0;
  const auto walk = gen.randomWalk(0, 2000, rng);
  for (std::size_t i = 2; i < walk.size(); ++i) {
    ++decisions;
    if (walk[i] == walk[i - 2]) ++uturns;
  }
  EXPECT_LT(static_cast<double>(uturns) / decisions, 0.15);
}

TEST_F(TrajectoryTest, DeadEndForcesUturn) {
  // A 2-node path graph: from the far end the only move is back.
  env::FloorPlan plan(10.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  const auto graph = env::WalkGraph::build(plan, 4.5);
  TrajectoryParams params;
  params.uturnProbability = 0.0;
  const TrajectoryGenerator gen(graph, params);
  util::Rng rng(7);
  const auto walk = gen.randomWalk(0, 4, rng);
  EXPECT_EQ(walk, (std::vector<env::LocationId>{0, 1, 0, 1, 0}));
}

TEST_F(TrajectoryTest, ThrowsOnBadStart) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rng(8);
  EXPECT_THROW(gen.randomWalk(99, 3, rng), std::out_of_range);
}

TEST_F(TrajectoryTest, ThrowsOnIsolatedStart) {
  env::FloorPlan plan(10.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});  // No neighbours.
  const auto graph = env::WalkGraph::build(plan, 1.0);
  const TrajectoryGenerator gen(graph);
  util::Rng rng(9);
  EXPECT_THROW(gen.randomWalk(0, 1, rng), std::runtime_error);
}

TEST_F(TrajectoryTest, ThrowsOnEmptyGraph) {
  const env::FloorPlan plan(10.0, 4.0);
  const auto graph = env::WalkGraph::build(plan, 1.0);
  EXPECT_THROW(TrajectoryGenerator{graph}, std::invalid_argument);
}

TEST_F(TrajectoryTest, Deterministic) {
  const TrajectoryGenerator gen(hall_.graph);
  util::Rng rngA(11);
  util::Rng rngB(11);
  EXPECT_EQ(gen.randomWalk(0, 30, rngA), gen.randomWalk(0, 30, rngB));
}

}  // namespace
}  // namespace moloc::traj
