// End-to-end contract tests for moloc_check: shell out to the real
// binary over tests/analyze_fixtures/ and compare its findings
// against the `expect:` markers embedded in the fixture sources.
//
// Marker grammar (inside any // comment of a fixture .cpp):
//   expect: <rule>            finding of <rule> on THIS line
//   expect-next-line: <rule>  finding of <rule> on the NEXT line
//     (needed when the marker text would change the finding itself,
//      e.g. the empty-reason bad-suppression case)
//
// Only compiled when MOLOC_ANALYZE=ON; MOLOC_CHECK_BIN and
// MOLOC_ANALYZE_FIXTURE_DIR are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "support/rules.hpp"

namespace fs = std::filesystem;

namespace {

/// (repo-relative file, line, rule)
using Key = std::tuple<std::string, unsigned, std::string>;

fs::path fixtureRoot() { return fs::path(MOLOC_ANALYZE_FIXTURE_DIR); }

std::vector<std::string> fixtureSources() {
  std::vector<std::string> out;
  const fs::path root = fixtureRoot();
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cpp")
      continue;
    out.push_back(fs::relative(entry.path(), root).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool isRuleChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

void scrapeLine(const std::string& line, unsigned lineNo,
                const std::string& rel, std::set<Key>& expected) {
  static const std::string kHere = "expect: ";
  static const std::string kNext = "expect-next-line: ";
  for (std::size_t at = 0; (at = line.find(kNext, at)) != std::string::npos;) {
    std::size_t pos = at + kNext.size();
    std::string rule;
    while (pos < line.size() && isRuleChar(line[pos])) rule += line[pos++];
    ASSERT_FALSE(rule.empty()) << rel << ":" << lineNo << ": bare marker";
    expected.insert({rel, lineNo + 1, rule});
    at = pos;
  }
  for (std::size_t at = 0; (at = line.find(kHere, at)) != std::string::npos;) {
    std::size_t pos = at + kHere.size();
    std::string rule;
    while (pos < line.size() && isRuleChar(line[pos])) rule += line[pos++];
    ASSERT_FALSE(rule.empty()) << rel << ":" << lineNo << ": bare marker";
    expected.insert({rel, lineNo, rule});
    at = pos;
  }
}

std::set<Key> scrapeExpectations() {
  std::set<Key> expected;
  for (const std::string& rel : fixtureSources()) {
    std::ifstream in(fixtureRoot() / rel);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) scrapeLine(line, ++lineNo, rel, expected);
  }
  return expected;
}

/// Writes a compile_commands.json covering every fixture source and
/// returns its directory.  Paths are absolute: that is what CMake
/// emits, and what moloc_check's relative-path hardening falls back
/// to anyway.
fs::path writeCompileDb() {
  const fs::path dbDir = fs::temp_directory_path() / "moloc_analyze_db";
  fs::create_directories(dbDir);
  std::ostringstream json;
  json << "[\n";
  bool first = true;
  for (const std::string& rel : fixtureSources()) {
    const std::string abs = (fixtureRoot() / rel).generic_string();
    if (!first) json << ",\n";
    first = false;
    json << "  {\"directory\": \"" << fixtureRoot().generic_string()
         << "\",\n   \"command\": \"clang++ -std=c++20 -c " << abs
         << "\",\n   \"file\": \"" << abs << "\"}";
  }
  json << "\n]\n";
  std::ofstream out(dbDir / "compile_commands.json");
  out << json.str();
  return dbDir;
}

struct RunResult {
  int exitCode = -1;
  std::vector<std::string> stdoutLines;
};

RunResult runCheck(const std::string& extraArgs) {
  const std::string cmd = std::string("\"") + MOLOC_CHECK_BIN + "\" -p \"" +
                          writeCompileDb().generic_string() +
                          "\" --repo-root \"" +
                          fixtureRoot().generic_string() + "\" " + extraArgs;
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) output.append(buf, got);
  const int status = pclose(pipe);
  result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream lines(output);
  for (std::string line; std::getline(lines, line);)
    if (!line.empty()) result.stdoutLines.push_back(line);
  return result;
}

/// Parses "file:line:col: [rule] message" back into a Key.
bool parseFinding(const std::string& line, Key& key) {
  const std::size_t c1 = line.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = line.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  const std::size_t open = line.find('[');
  const std::size_t close = line.find(']');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return false;
  try {
    key = {line.substr(0, c1),
           static_cast<unsigned>(std::stoul(line.substr(c1 + 1, c2 - c1 - 1))),
           line.substr(open + 1, close - open - 1)};
  } catch (...) {
    return false;
  }
  return true;
}

std::string describe(const std::set<Key>& keys) {
  std::ostringstream out;
  for (const auto& [file, line, rule] : keys)
    out << "  " << file << ":" << line << " [" << rule << "]\n";
  return out.str();
}

}  // namespace

// The whole corpus, one invocation: every expect marker must have a
// matching finding and every finding a matching marker — exact file,
// exact line, exact rule id.
TEST(AnalyzeFixtures, FindingsMatchExpectMarkersExactly) {
  const RunResult run = runCheck("");
  ASSERT_EQ(run.exitCode, 0)
      << "moloc_check reported parse errors over the fixture corpus";

  std::set<Key> actual;
  for (const std::string& line : run.stdoutLines) {
    Key key;
    ASSERT_TRUE(parseFinding(line, key)) << "unparseable finding: " << line;
    actual.insert(key);
  }

  const std::set<Key> expected = scrapeExpectations();
  ASSERT_FALSE(expected.empty());

  std::set<Key> missing, unexpected;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::inserter(missing, missing.end()));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(),
                      std::inserter(unexpected, unexpected.end()));
  EXPECT_TRUE(missing.empty()) << "expected but not reported:\n"
                               << describe(missing);
  EXPECT_TRUE(unexpected.empty()) << "reported but not expected:\n"
                                  << describe(unexpected);
}

// Every rule in the registry has at least one firing fixture — a new
// check cannot land without corpus coverage.
TEST(AnalyzeFixtures, EveryRuleHasAFiringFixture) {
  std::set<std::string> covered;
  for (const auto& [file, line, rule] : scrapeExpectations()) covered.insert(rule);
  for (const auto& info : moloc::analyze::allRules())
    EXPECT_TRUE(covered.count(info.id) != 0)
        << "rule " << info.id << " has no firing fixture";
}

// The lint.sh raw-eintr regression: a raw ::read on the line after a
// retryEintr-wrapped call must be reported (the grep window missed
// it), and the multi-line wrapped idiom must stay quiet (the grep
// window false-positived on it).
TEST(AnalyzeFixtures, RawEintrWindowRegressions) {
  const std::set<Key> expected = scrapeExpectations();
  bool windowMiss = false;
  for (const auto& [file, line, rule] : expected)
    windowMiss |= (file == "src/net/raw_eintr_fires.cpp" &&
                   rule == "raw-eintr" && line >= 27);
  EXPECT_TRUE(windowMiss)
      << "raw_eintr_fires.cpp lost its wrapped-call-on-previous-line case";

  std::set<Key> clean;
  for (const auto& key : expected)
    if (std::get<0>(key) == "src/net/raw_eintr_clean.cpp") clean.insert(key);
  EXPECT_TRUE(clean.empty())
      << "raw_eintr_clean.cpp must carry no expect markers";
}

// --fail-on-findings turns the corpus's findings into exit 1.
TEST(AnalyzeFixtures, FailOnFindingsExitsOne) {
  EXPECT_EQ(runCheck("--fail-on-findings").exitCode, 1);
}

// Suppressed, clean, and scope-exempt fixtures produce zero findings
// even under --fail-on-findings.
TEST(AnalyzeFixtures, QuietFilesStayQuiet) {
  std::string only;
  for (const std::string& rel : fixtureSources())
    if (rel.find("_fires") == std::string::npos)
      only += " --only \"" + rel + "\"";
  ASSERT_FALSE(only.empty());
  const RunResult run = runCheck("--fail-on-findings" + only);
  EXPECT_EQ(run.exitCode, 0);
  EXPECT_TRUE(run.stdoutLines.empty())
      << "findings in suppressed/clean fixtures:\n"
      << run.stdoutLines.front();
}

// --list-rules advertises the full registry (CI logs this so a reader
// can tell which gates a given run enforced).
TEST(AnalyzeFixtures, ListRulesCoversRegistry) {
  const RunResult run = runCheck("--list-rules");
  ASSERT_EQ(run.exitCode, 0);
  std::string all;
  for (const std::string& line : run.stdoutLines) all += line + "\n";
  for (const auto& info : moloc::analyze::allRules())
    EXPECT_NE(all.find(info.id), std::string::npos)
        << "--list-rules omits " << info.id;
}
