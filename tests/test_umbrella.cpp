// The umbrella header must pull in the whole public API and compile
// standalone (this translation unit includes nothing else first).

#include "moloc.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, WholeApiReachable) {
  // Touch one symbol per component so a missing include in moloc.hpp
  // breaks this file.
  moloc::util::Rng rng(1);
  const moloc::geometry::Vec2 v{1.0, 2.0};
  EXPECT_GT(v.norm(), 0.0);

  const auto hall = moloc::env::makeOfficeHall();
  EXPECT_EQ(hall.plan.locationCount(), 28u);
  const auto corridor = moloc::env::makeCorridorBuilding();
  EXPECT_TRUE(corridor.graph.isConnected());

  moloc::radio::Fingerprint fp({-50.0});
  EXPECT_EQ(fp.size(), 1u);

  moloc::sensors::StepDetector detector;
  moloc::traj::UserProfile user;
  EXPECT_GT(user.speedMps(), 0.0);

  moloc::core::MotionDatabase motion(2);
  EXPECT_EQ(motion.locationCount(), 2u);

  moloc::eval::ErrorStats stats;
  EXPECT_TRUE(stats.empty());

  EXPECT_GE(moloc::sensors::estimateStepLength(1.7, 70.0), 0.5);
  EXPECT_EQ(moloc::geometry::reverseHeadingDeg(0.0), 180.0);
  (void)rng();
}

}  // namespace
