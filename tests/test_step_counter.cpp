#include "sensors/step_counter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace moloc::sensors {
namespace {

std::vector<double> evenStepTimes(int k, double period, double first) {
  std::vector<double> times;
  for (int i = 0; i < k; ++i) times.push_back(first + i * period);
  return times;
}

TEST(StepCounter, DscCountsPeaksOnly) {
  const auto times = evenStepTimes(7, 0.5, 0.2);
  const auto count = discreteStepCount(times);
  EXPECT_EQ(count.integralSteps, 7);
  EXPECT_DOUBLE_EQ(count.decimalSteps, 0.0);
  EXPECT_DOUBLE_EQ(count.totalSteps(), 7.0);
}

TEST(StepCounter, DscEmpty) {
  const auto count = discreteStepCount({});
  EXPECT_EQ(count.integralSteps, 0);
  EXPECT_DOUBLE_EQ(count.totalSteps(), 0.0);
}

TEST(StepCounter, CscRecoversOddTime) {
  // 5 steps at 0.5 s period, first peak at 0.25 s; the interval lasts
  // 3.0 s.  Peak span = 2.0 s, period = 0.5, whole steps cover 2.5 s,
  // odd time = 0.5 s -> one extra decimal step.
  const auto times = evenStepTimes(5, 0.5, 0.25);
  const auto count = continuousStepCount(times, 3.0);
  EXPECT_EQ(count.integralSteps, 5);
  EXPECT_NEAR(count.decimalSteps, 1.0, 1e-12);
  EXPECT_NEAR(count.totalSteps(), 6.0, 1e-12);
}

TEST(StepCounter, CscNoOddTimeWhenIntervalCovered) {
  const auto times = evenStepTimes(5, 0.5, 0.0);
  // Whole steps cover 5 * 0.5 = 2.5 s; the interval is exactly that.
  const auto count = continuousStepCount(times, 2.5);
  EXPECT_NEAR(count.decimalSteps, 0.0, 1e-12);
}

TEST(StepCounter, CscClampsNegativeOddTime) {
  const auto times = evenStepTimes(5, 0.5, 0.0);
  const auto count = continuousStepCount(times, 1.0);  // Shorter span.
  EXPECT_GE(count.decimalSteps, 0.0);
}

TEST(StepCounter, CscDegradesToDscBelowTwoSteps) {
  const std::vector<double> one{0.4};
  const auto count = continuousStepCount(one, 3.0);
  EXPECT_EQ(count.integralSteps, 1);
  EXPECT_DOUBLE_EQ(count.decimalSteps, 0.0);

  const auto empty = continuousStepCount({}, 3.0);
  EXPECT_EQ(empty.integralSteps, 0);
}

TEST(StepCounter, CscHandlesCoincidentPeaks) {
  // Degenerate zero span must not divide by zero.
  const std::vector<double> same{1.0, 1.0, 1.0};
  const auto count = continuousStepCount(same, 3.0);
  EXPECT_EQ(count.integralSteps, 3);
  EXPECT_DOUBLE_EQ(count.decimalSteps, 0.0);
}

TEST(StepCounter, CscAlwaysAtLeastDsc) {
  // The paper's point: DSC misses the odd time; CSC never counts fewer.
  for (double first : {0.0, 0.1, 0.3}) {
    for (double duration : {2.4, 3.0, 3.6}) {
      const auto times = evenStepTimes(4, 0.55, first);
      const auto dsc = discreteStepCount(times);
      const auto csc = continuousStepCount(times, duration);
      EXPECT_GE(csc.totalSteps(), dsc.totalSteps());
    }
  }
}

/// Parameterized odd-time sweep: CSC recovers fractional steps with the
/// correct magnitude for any odd time within one period.
class OddTimeSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(OddTimeSweepTest, DecimalMatchesOddTime) {
  const double period = 0.5;
  const double oddTime = GetParam();
  const auto times = evenStepTimes(6, period, 0.0);
  const double covered = 6 * period;
  const auto count = continuousStepCount(times, covered + oddTime);
  EXPECT_NEAR(count.decimalSteps, oddTime / period, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OddTimeSweepTest,
                         ::testing::Values(0.0, 0.1, 0.2, 0.25, 0.35,
                                           0.49));

}  // namespace
}  // namespace moloc::sensors
