#include "targets/fuzz_targets.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/world_snapshot.hpp"
#include "image/image_loader.hpp"
#include "image/image_writer.hpp"
#include "index/signature_codec.hpp"
#include "io/serialization.hpp"
#include "net/wire.hpp"
#include "store/checkpoint.hpp"
#include "store/format.hpp"
#include "store/wal.hpp"
#include "util/csv.hpp"

namespace moloc::fuzz {

namespace {

/// Inputs above this are not interesting for format parsing (every
/// length field the formats carry fits well inside it) and only slow
/// the fuzzer down; libFuzzer's -max_len mirrors this bound.
constexpr std::size_t kMaxInputBytes = 1 << 20;

/// Parser-contract violation: not a rejected input (those are typed
/// exceptions the harness catches) but a broken invariant — abort so
/// the fuzzer records the input as a crash.
[[noreturn]] void invariantFailed(const char* surface, const char* what) {
  std::fprintf(stderr, "moloc-fuzz[%s]: invariant violated: %s\n", surface,
               what);
  std::abort();
}

/// A per-process scratch directory, emptied before every iteration.
/// The disk round trip is deliberate: the WAL and checkpoint readers
/// only consume files, and fuzzing through the real open/read path
/// also covers the file-level validation (names, sizes, CRC framing).
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("moloc-fuzz-" + std::string(tag) + "-" +
             std::to_string(::getpid())))
               .string();
  }

  const std::string& reset() {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    return dir_;
  }

  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

void writeBytes(const std::string& path, const std::uint8_t* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (size != 0)
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!out) invariantFailed("scratch", "cannot write scratch input file");
}

}  // namespace

// ---------------------------------------------------------------------------
// WAL

int runWalReader(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;
  static ScratchDir scratch("wal");
  const std::string& dir = scratch.reset();
  writeBytes(dir + "/wal-0000000000000001.log", data, size);

  const store::WalReader reader(dir);
  bool scanOk = false;
  try {
    std::uint64_t prevSeq = 0;
    std::uint64_t delivered = 0;
    const store::WalScan scan =
        reader.replay([&](const store::ObservationRecord& record) {
          if (record.seq <= prevSeq)
            invariantFailed("wal", "delivered sequence did not increase");
          prevSeq = record.seq;
          ++delivered;
        });
    if (scan.records != delivered)
      invariantFailed("wal", "scan.records disagrees with callback count");
    if (delivered != 0 && scan.lastSeq < prevSeq)
      invariantFailed("wal", "scan.lastSeq below last delivered seq");
    scanOk = true;
  } catch (const store::StoreError&) {
    // Rejected input (CorruptionError or I/O): the documented outcome.
  }

  if (!scanOk) return 0;
  // A scan the reader accepted must survive repair: repair only
  // truncates a torn tail, and the log it leaves behind must scan
  // clean.  Exceptions past this point are bugs — let them escape.
  const store::WalScan repaired = reader.repair();
  if (repaired.tailDamaged)
    invariantFailed("wal", "repair() left a damaged tail behind");
  const store::WalScan recheck = reader.scan();
  if (recheck.tailDamaged || recheck.records != repaired.records)
    invariantFailed("wal", "post-repair scan disagrees with repair()");
  return 0;
}

// ---------------------------------------------------------------------------
// Checkpoint

int runCheckpointLoad(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;
  static ScratchDir scratch("ckpt");
  const std::string& dir = scratch.reset();
  // Named seq 1: loadNewestCheckpoint also cross-checks the decoded
  // throughSeq against the file name.
  writeBytes(dir + "/checkpoint-00000000000000000001.ckpt", data, size);

  // The loader's contract is catch-and-skip: nothing an input file
  // contains may throw through it, so no try/catch here.
  const auto loaded = store::loadNewestCheckpoint(dir);
  if (!loaded) return 0;
  if (loaded->data.throughSeq != 1)
    invariantFailed("checkpoint", "loader accepted a name/seq mismatch");

  // Accepted checkpoints must re-encode and re-decode to the same
  // structure (decode is total on encode's image).
  static ScratchDir rewrite("ckpt-rewrite");
  const std::string& dir2 = rewrite.reset();
  store::writeCheckpointFile(dir2, loaded->data);
  const auto reloaded = store::loadNewestCheckpoint(dir2);
  if (!reloaded)
    invariantFailed("checkpoint", "re-encoded checkpoint failed to load");
  const auto& a = loaded->data;
  const auto& b = reloaded->data;
  if (a.throughSeq != b.throughSeq ||
      a.snapshot.reservoirs.size() != b.snapshot.reservoirs.size() ||
      a.snapshot.entries.size() != b.snapshot.entries.size() ||
      a.fingerprints.has_value() != b.fingerprints.has_value())
    invariantFailed("checkpoint", "decode/encode/decode was not stable");
  return 0;
}

// ---------------------------------------------------------------------------
// Text serialization

int runSerializationLoad(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Loaders reject with std::runtime_error (line-numbered); any other
  // escape is a harness crash by design.
  {
    std::istringstream in(text);
    try {
      const auto db = io::loadFingerprintDatabase(in);
      std::ostringstream first;
      io::saveFingerprintDatabase(db, first);
      std::istringstream again(first.str());
      std::ostringstream second;
      io::saveFingerprintDatabase(io::loadFingerprintDatabase(again),
                                  second);
      if (first.str() != second.str())
        invariantFailed("serialization",
                        "fingerprint save/load is not a fixed point");
    } catch (const std::runtime_error&) {
    }
  }
  {
    std::istringstream in(text);
    try {
      const auto db = io::loadMotionDatabase(in);
      // The save path scans the dense n x n matrix; bound the
      // round-trip check so a legitimately huge accepted header cannot
      // turn one iteration into seconds of work.
      if (db.locationCount() <= 64) {
        std::ostringstream first;
        io::saveMotionDatabase(db, first);
        std::istringstream again(first.str());
        std::ostringstream second;
        io::saveMotionDatabase(io::loadMotionDatabase(again), second);
        if (first.str() != second.str())
          invariantFailed("serialization",
                          "motion save/load is not a fixed point");
      }
    } catch (const std::runtime_error&) {
    }
  }
  {
    std::istringstream in(text);
    try {
      io::loadProbabilisticDatabase(in);
    } catch (const std::runtime_error&) {
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// CSV

namespace {

/// RFC 4180 cell escaping for the round-trip check.  Unlike
/// CsvWriter::escape this also quotes '\r': an unquoted trailing '\r'
/// would fuse with the row's '\n' terminator into a CRLF line ending
/// and silently shorten the cell (the bug the round-trip property
/// originally caught in the writer).
std::string escapeCell(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

int runCsvParse(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::vector<std::vector<std::string>> rows;
  try {
    rows = util::parseCsv(text);
  } catch (const std::invalid_argument&) {
    return 0;  // Rejected input: the documented outcome.
  }

  // Accepted documents must round-trip: re-serialize the rows and
  // re-parse; the parser may normalize line endings but never the
  // cells themselves.
  std::string rewritten;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) rewritten += ',';
      rewritten += escapeCell(row[c]);
    }
    rewritten += '\n';
  }
  const auto reparsed = util::parseCsv(rewritten);
  if (reparsed != rows)
    invariantFailed("csv", "parse/serialize/parse changed the rows");
  return 0;
}

namespace {

/// Decode + canonical re-encode of one CRC-valid frame's payload.
/// Returns the re-encoded *frame*; the caller compares payloads.
std::string reencodeWireFrame(const net::Frame& frame) {
  using net::MsgType;
  switch (frame.type) {
    case MsgType::kLocalize:
      return encodeLocalizeRequest(
          net::decodeLocalizeRequest(frame.payload));
    case MsgType::kLocalizeBatch:
      return encodeLocalizeBatchRequest(
          net::decodeLocalizeBatchRequest(frame.payload));
    case MsgType::kReportObservation:
      return encodeReportObservationRequest(
          net::decodeReportObservationRequest(frame.payload));
    case MsgType::kFlush:
      return encodeFlushRequest(net::decodeFlushRequest(frame.payload));
    case MsgType::kStats:
      return encodeStatsRequest(net::decodeStatsRequest(frame.payload));
    case MsgType::kLocalizeResponse:
      return encodeLocalizeResponse(
          net::decodeLocalizeResponse(frame.payload));
    case MsgType::kLocalizeBatchResponse:
      return encodeLocalizeBatchResponse(
          net::decodeLocalizeBatchResponse(frame.payload));
    case MsgType::kReportObservationResponse:
      return encodeReportObservationResponse(
          net::decodeReportObservationResponse(frame.payload));
    case MsgType::kFlushResponse:
      return encodeFlushResponse(net::decodeFlushResponse(frame.payload));
    case MsgType::kStatsResponse:
      return encodeStatsResponse(net::decodeStatsResponse(frame.payload));
  }
  invariantFailed("wire", "assembler yielded an unknown message type");
}

}  // namespace

int runWireDecode(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;

  // Feed in small chunks with draining between them, so the fuzzer
  // also explores the assembler's buffering/compaction paths, not just
  // one-shot parses.
  net::FrameAssembler assembler;
  const char* bytes = reinterpret_cast<const char*>(data);
  constexpr std::size_t kChunk = 7;
  net::Frame frame;
  for (std::size_t offset = 0; offset < size; offset += kChunk) {
    assembler.feed(bytes + offset,
                   offset + kChunk <= size ? kChunk : size - offset);
    try {
      while (assembler.next(frame)) {
        try {
          const std::string reframed = reencodeWireFrame(frame);
          const std::string_view payload(
              reframed.data() + net::kHeaderBytes,
              reframed.size() - net::kHeaderBytes - net::kTrailerBytes);
          if (payload != frame.payload)
            invariantFailed("wire",
                            "decode/encode changed an accepted payload");
        } catch (const net::ProtocolError&) {
          // Malformed payload inside a CRC-valid frame: a documented
          // per-message rejection; the stream itself stays in sync.
        }
      }
    } catch (const net::ProtocolError&) {
      return 0;  // Framing damage: the connection would be dropped.
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Quantized signature blocks

int runSignatureCodec(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;

  index::DecodedSignatureBlock decoded;
  try {
    decoded = index::decodeSignatureBlock({data, size});
  } catch (const index::SignatureCodecError&) {
    return 0;  // Rejected input: the documented outcome.
  }

  // Accepted blocks are canonical: re-encoding must reproduce the
  // input byte for byte.
  const std::vector<std::uint8_t> reencoded =
      index::encodeSignatureBlock(decoded.buckets, decoded.bucketCount);
  if (reencoded.size() != size ||
      !std::equal(reencoded.begin(), reencoded.end(), data))
    invariantFailed("signature",
                    "decode/encode changed an accepted block");

  // The buckets must round-trip through the plane packers the index
  // builds its shard slabs with — the fuzzed serialized layout and the
  // scanned in-slab layout are the same bit-slicing.
  const auto planeCount =
      static_cast<std::size_t>(decoded.bucketCount - 1);
  std::vector<std::uint64_t> planes(planeCount);
  index::packThermometerPlanes(decoded.buckets, decoded.bucketCount,
                               planes);
  std::vector<std::uint8_t> unpacked(decoded.buckets.size());
  index::unpackThermometerPlanes(planes, decoded.bucketCount,
                                 decoded.buckets.size(), unpacked);
  if (unpacked != decoded.buckets)
    invariantFailed("signature",
                    "thermometer plane pack/unpack changed the buckets");
  return 0;
}

// ---------------------------------------------------------------------------
// Venue images

namespace {

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) invariantFailed("image", "cannot read back a written image");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Exercises an accepted image the way serving would: the meta must
/// agree with the views, every fingerprinted id must resolve to a CSR
/// row, every row must be walkable edge by edge, and a probe query
/// must complete through the database (and the embedded index, when
/// present).  The backing buffer is exactly input-sized, so any
/// over-read here is an ASan stop, not silence.
void exerciseLoadedImage(const image::VenueImage& img) {
  const auto& db = img.fingerprints();
  const auto& adjacency = img.adjacency();
  if (db == nullptr || adjacency == nullptr)
    invariantFailed("image", "accepted image is missing a core view");
  if (db->size() != img.meta().locationCount ||
      db->apCount() != img.meta().apCount ||
      adjacency->locationCount() != img.meta().adjacencyLocationCount)
    invariantFailed("image", "meta disagrees with the loaded views");
  if (img.meta().hasIndex != (img.tieredIndex() != nullptr))
    invariantFailed("image", "meta.hasIndex disagrees with the loader");

  for (std::size_t row = 0; row < db->size(); ++row) {
    const env::LocationId id = db->idAt(row);
    if (static_cast<std::size_t>(id) >= adjacency->locationCount())
      invariantFailed("image",
                      "fingerprinted id outside the adjacency "
                      "(the serving invariant)");
  }
  std::uint64_t edges = 0;
  std::int64_t touched = 0;  // Forces a read of every edge's bytes.
  for (std::size_t row = 0; row < adjacency->locationCount(); ++row) {
    const auto span =
        adjacency->outEdges(static_cast<env::LocationId>(row));
    edges += span.size();
    for (const kernel::PairWindow& edge : span) touched += edge.to;
  }
  (void)touched;
  if (edges != img.meta().edgeCount)
    invariantFailed("image", "CSR walk disagrees with meta.edgeCount");

  if (!db->empty()) {
    std::vector<radio::Match> out;
    db->queryInto(db->entryAt(0), 4, out);
    if (img.tieredIndex() != nullptr) {
      std::vector<radio::Match> tiered;
      img.tieredIndex()->queryInto(db->entryAt(0), 4, tiered);
    }
  }
}

}  // namespace

int runImageLoad(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInputBytes) return 0;

  // Full verification first: everything it accepts, the bulk mode must
  // accept too (bulk only *skips* CRC work, it never adds a check).
  bool fullAccepted = false;
  try {
    const image::VenueImage img =
        image::VenueImage::fromBuffer({data, size},
                                      image::VerifyMode::kFull);
    fullAccepted = true;
    exerciseLoadedImage(img);
  } catch (const image::ImageError&) {
    // Rejected input: the documented outcome for format damage.
  } catch (const store::StoreError&) {
    invariantFailed("image",
                    "I/O-class error from a pure in-memory parse");
  }

  try {
    const image::VenueImage img = image::VenueImage::fromBuffer(
        {data, size}, image::VerifyMode::kBulkUnverified);
    exerciseLoadedImage(img);

    if (fullAccepted) {
      // CRC-clean images must reach a byte-stable fixed point after
      // one pass through the real writer: the input's section order
      // and padding may be non-canonical, but write(load(x)) is, so a
      // second round trip must reproduce it exactly.  This also runs
      // the mmap open path over writer output (fromBuffer above covers
      // the heap path).
      static ScratchDir scratch("image");
      const std::string dir = scratch.reset();
      const core::WorldSnapshot world(
          img.fingerprints(), img.adjacency(), img.meta().generation,
          img.meta().intakeRecords, img.tieredIndex());
      image::writeVenueImage(dir + "/a.img", world, {/*fsync=*/false});
      const image::VenueImage reloaded =
          image::VenueImage::open(dir + "/a.img");
      exerciseLoadedImage(reloaded);
      const core::WorldSnapshot world2(
          reloaded.fingerprints(), reloaded.adjacency(),
          reloaded.meta().generation, reloaded.meta().intakeRecords,
          reloaded.tieredIndex());
      image::writeVenueImage(dir + "/b.img", world2, {/*fsync=*/false});
      if (readWholeFile(dir + "/a.img") != readWholeFile(dir + "/b.img"))
        invariantFailed("image",
                        "rewrite of an accepted image is not a fixed "
                        "point");
    }
  } catch (const image::ImageError&) {
    if (fullAccepted)
      invariantFailed("image",
                      "full verification accepted what bulk rejected");
  } catch (const store::StoreError&) {
    invariantFailed("image",
                    "I/O-class error from a pure in-memory parse");
  }
  return 0;
}

}  // namespace moloc::fuzz
