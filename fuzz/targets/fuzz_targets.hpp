#pragma once

#include <cstddef>
#include <cstdint>

namespace moloc::fuzz {

/// One fuzz iteration per durable-format parsing surface.  Each
/// function treats `data` as an attacker-controlled input file and must
/// either parse it or reject it with the surface's documented, typed
/// error — anything else (a crash, an unexpected exception type, a
/// violated parser invariant) aborts the process, which is exactly the
/// signal libFuzzer and the regression-replay gtest look for.
///
/// The bodies are plain C++ with no libFuzzer dependency so the same
/// code runs three ways:
///   - coverage-guided under clang -fsanitize=fuzzer (fuzz/*_fuzzer.cpp),
///   - file replay under any compiler (fuzz/standalone_main.cpp),
///   - regression-corpus replay as gtests in every CI configuration
///     (tests/test_fuzz_regressions.cpp).
///
/// The return value is the libFuzzer convention: always 0 (input
/// consumed; never added to a dictionary of rejects).

/// store::WalReader over one segment file's bytes: replay, repair,
/// re-scan.  Checks the reader's contract — delivered sequence numbers
/// strictly increase, and a segment that repair() accepted scans clean
/// afterwards.
int runWalReader(const std::uint8_t* data, std::size_t size);

/// store::loadNewestCheckpoint over one checkpoint file's bytes.  The
/// loader documents that invalid files are skipped, never thrown
/// through; accepted files must decode → re-encode → decode stably.
int runCheckpointLoad(const std::uint8_t* data, std::size_t size);

/// io/serialization text loaders (fingerprint, motion, probabilistic)
/// over one document.  Rejections must be std::runtime_error with no
/// partial state; accepted documents must be save/load fixed points.
int runSerializationLoad(const std::uint8_t* data, std::size_t size);

/// util::parseCsv over one document.  Rejections must be
/// std::invalid_argument; accepted documents must round-trip through
/// RFC 4180 re-serialization to identical rows.
int runCsvParse(const std::uint8_t* data, std::size_t size);

/// net::FrameAssembler + the message decoders over one connection's
/// byte stream, fed in small chunks to exercise reassembly.  Framing
/// and payload rejections must be net::ProtocolError; every accepted
/// payload must re-encode to the identical bytes (the encoding is
/// canonical — fixed little-endian fields and raw f64 bits leave no
/// slack).
int runWireDecode(const std::uint8_t* data, std::size_t size);

/// index::decodeSignatureBlock over one serialized quantized-signature
/// block (the tiered index's bit-sliced slab format).  Rejections must
/// be SignatureCodecError; every accepted block must re-encode to the
/// identical bytes (canonical form) and its buckets must round-trip
/// through the thermometer plane packers the index builds shards with.
int runSignatureCodec(const std::uint8_t* data, std::size_t size);

/// image::VenueImage::fromBuffer over one venue-image file's bytes, in
/// both verify modes.  Any format damage — hostile section offsets,
/// lengths, overlaps, truncations, CRC flips — must be a typed
/// image::ImageError, never an I/O-class error, a crash, or a read
/// outside the buffer (the backing copy is exactly input-sized, so
/// ASan sees any over-read).  Accepted images must be servable (meta
/// consistent with the views, every CSR row walkable, a probe query
/// answered) and, when they pass full CRC verification, must reach a
/// byte-stable fixed point after one rewrite through the real writer.
int runImageLoad(const std::uint8_t* data, std::size_t size);

}  // namespace moloc::fuzz
