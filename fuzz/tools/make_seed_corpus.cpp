// Regenerates the committed fuzz seed corpus (fuzz/corpus/) from the
// real encoders, plus the crafted regression inputs that pin previously
// fixed parser bugs.  Usage:
//
//   moloc_make_seed_corpus <corpus-root>
//
// The binary seeds must come from the actual writers — hand-maintained
// hex would drift the moment a format changes — so this tool links the
// library and round-trips through WalWriter / writeCheckpointFile /
// the io::save* functions.  Text seeds (CSV, malformed documents) are
// committed directly and not rewritten here.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/online_motion_database.hpp"
#include "core/world_snapshot.hpp"
#include "env/floor_plan.hpp"
#include "image/format.hpp"
#include "image/image_writer.hpp"
#include "index/signature_codec.hpp"
#include "index/tiered_index.hpp"
#include "io/serialization.hpp"
#include "net/wire.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/probabilistic_database.hpp"
#include "store/checkpoint.hpp"
#include "store/crc32c.hpp"
#include "store/format.hpp"
#include "store/wal.hpp"

namespace {

namespace fs = std::filesystem;
using moloc::store::detail::putF64;
using moloc::store::detail::putI32;
using moloc::store::detail::putU32;
using moloc::store::detail::putU64;
using moloc::store::detail::putU8;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const fs::path& path, const std::string& bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(),
              bytes.size());
}

/// A WAL segment header, byte-compatible with WalWriter::openSegment.
std::string walHeader(std::uint64_t firstSeq) {
  std::string out("MOLOCWAL", 8);
  putU32(out, 1);  // version
  putU64(out, firstSeq);
  return out;
}

/// One framed v1 observation record, byte-compatible with
/// WalWriter::append.
std::string walRecord(std::uint64_t seq, std::int32_t start,
                      std::int32_t end, double directionDeg,
                      double offsetMeters) {
  std::string payload;
  putU8(payload, 1);  // kObservationType
  putU64(payload, seq);
  putI32(payload, start);
  putI32(payload, end);
  putF64(payload, directionDeg);
  putF64(payload, offsetMeters);
  std::string frame;
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  putU32(frame, moloc::store::crc32c(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

fs::path scratchDir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("moloc-seed-" + std::string(tag) + "-" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

void makeWalSeeds(const fs::path& root) {
  // A real three-record segment, via the real writer.
  const fs::path dir = scratchDir("wal");
  {
    moloc::store::WalWriter writer(dir.string(), {});
    writer.append(0, 1, 90.0, 4.5);
    writer.append(1, 2, 180.0, 3.25);
    writer.append(2, 0, 270.0, 5.0);
  }
  const std::string segment =
      readFile(dir / "wal-0000000000000001.log");
  writeFile(root / "wal/three-records.bin", segment);
  writeFile(root / "wal/header-only.bin", walHeader(1));
  // Crash fallout the reader must tolerate: the final record torn
  // mid-frame.
  writeFile(root / "wal/torn-tail.bin",
            segment.substr(0, segment.size() - 7));
  fs::remove_all(dir);

  // Regressions: inputs that must keep raising CorruptionError (never
  // crash, never silently pass).  See docs/static_analysis.md.
  //
  // A CRC-valid frame with length 0 has no type byte to read — the
  // structural parse must reject it after the checksum passes.
  std::string zeroLength = walHeader(1);
  putU32(zeroLength, 0);
  putU32(zeroLength, moloc::store::crc32c("", 0));
  writeFile(root / "regressions/wal/zero-length-record.bin", zeroLength);
  // An implausible length field followed by a valid record is mid-log
  // corruption (a torn tail cannot have valid data after it).
  std::string oversized = walHeader(1);
  putU32(oversized, 1u << 20);
  putU32(oversized, 0xdeadbeef);
  oversized += walRecord(1, 0, 1, 90.0, 4.5);
  writeFile(root / "regressions/wal/oversized-length-midlog.bin",
            oversized);
  // Two valid frames whose sequence numbers go backwards.
  std::string regression = walHeader(5);
  regression += walRecord(5, 0, 1, 90.0, 4.5);
  regression += walRecord(3, 1, 2, 180.0, 3.25);
  writeFile(root / "regressions/wal/sequence-regression.bin", regression);
}

void makeCheckpointSeeds(const fs::path& root) {
  moloc::env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  moloc::core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/4,
                                       /*seed=*/7);
  for (int k = 0; k < 40; ++k)
    db.addObservation(k % 2, 1 + k % 2, 88.0 + 0.2 * (k % 9),
                      3.7 + 0.02 * (k % 11));

  moloc::store::CheckpointData data;
  data.throughSeq = 40;
  data.snapshot = db.snapshot();
  const fs::path dir = scratchDir("ckpt");
  std::string path = moloc::store::writeCheckpointFile(dir.string(), data);
  writeFile(root / "checkpoint/no-fingerprints.bin", readFile(path));

  moloc::radio::FingerprintDatabase radio;
  radio.addLocation(0, moloc::radio::Fingerprint({-40.0, -70.5, -55.0}));
  radio.addLocation(1, moloc::radio::Fingerprint({-60.0, -45.5, -80.0}));
  data.fingerprints = radio;
  data.throughSeq = 41;
  path = moloc::store::writeCheckpointFile(dir.string(), data);
  writeFile(root / "checkpoint/with-fingerprints.bin", readFile(path));
  fs::remove_all(dir);

  // Regression: a CRC-valid checkpoint whose fingerprint block claims
  // zero locations but a huge AP count — previously an allocation bomb
  // (the AP count sized a buffer before any bounds check could fire).
  std::string body("MOLOCKPT", 8);
  putU32(body, 1);   // version
  putU64(body, 1);   // throughSeq (matches the harness's file name)
  // Snapshot: default config, empty database.
  putF64(body, 15.0);  // coarseDirectionThresholdDeg
  putF64(body, 2.0);   // coarseOffsetThresholdMeters
  putF64(body, 3.0);   // fineSigmaMultiplier
  putI32(body, 2);     // minSamplesPerPair
  putF64(body, 1.0);   // minDirectionSigmaDeg
  putF64(body, 0.05);  // minOffsetSigmaMeters
  putU8(body, 1);      // enableCoarseFilter
  putU8(body, 1);      // enableFineFilter
  putU64(body, 4);     // capacity
  putU64(body, 0);     // locationCount
  for (int w = 0; w < 4; ++w) putU64(body, 0x9e3779b97f4a7c15ull + w);
  for (int c = 0; c < 6; ++c) putU64(body, 0);  // counters
  putU64(body, 0);  // reservoirs
  putU64(body, 0);  // entries
  putU8(body, 1);   // fingerprints present
  putU64(body, 0);  // location count: zero...
  putU64(body, 1ull << 40);  // ...but a terabyte-scale AP count
  putU32(body, moloc::store::crc32c(body.data(), body.size()));
  writeFile(root / "regressions/checkpoint/ap-count-bomb.bin", body);
}

void makeSerializationSeeds(const fs::path& root) {
  {
    moloc::radio::FingerprintDatabase db;
    db.addLocation(0, moloc::radio::Fingerprint({-40.5, -70.25, -55.0}));
    db.addLocation(2, moloc::radio::Fingerprint({-60.125, -45.0, -80.5}));
    std::ostringstream out;
    moloc::io::saveFingerprintDatabase(db, out);
    writeFile(root / "serialization/fingerprint-db.txt", out.str());
  }
  {
    moloc::core::MotionDatabase db(4);
    db.setEntryWithMirror(0, 1, {90.25, 4.5, 5.7, 0.25, 17});
    db.setEntryWithMirror(1, 2, {180.0, 3.0, 4.0, 0.125, 9});
    std::ostringstream out;
    moloc::io::saveMotionDatabase(db, out);
    writeFile(root / "serialization/motion-db.txt", out.str());
  }
  {
    moloc::radio::ProbabilisticFingerprintDatabase db;
    const moloc::radio::Fingerprint samples[] = {
        moloc::radio::Fingerprint({-40.0, -70.0}),
        moloc::radio::Fingerprint({-42.0, -68.0}),
        moloc::radio::Fingerprint({-41.0, -69.0}),
    };
    db.addLocation(0, samples);
    std::ostringstream out;
    moloc::io::saveProbabilisticDatabase(db, out);
    writeFile(root / "serialization/probabilistic-db.txt", out.str());
  }
}

void makeSignatureSeeds(const fs::path& root) {
  using moloc::index::encodeSignatureBlock;
  const auto asString = [](const std::vector<std::uint8_t>& bytes) {
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  };

  // A full 64-entry block at the index's default 8-bucket quantizer,
  // mixing unheard (bucket 0) with the whole heard range.
  std::vector<std::uint8_t> full(64);
  for (std::size_t e = 0; e < full.size(); ++e)
    full[e] = static_cast<std::uint8_t>((e * 5) % 8);
  writeFile(root / "signature/full-block-8-buckets.bin",
            asString(encodeSignatureBlock(full, 8)));

  // A partial tail block (the last block of a shard) at the minimum
  // and maximum bucket counts.
  const std::vector<std::uint8_t> tail{1, 0, 1, 0, 1};
  writeFile(root / "signature/tail-block-2-buckets.bin",
            asString(encodeSignatureBlock(tail, 2)));
  const std::vector<std::uint8_t> wide{15, 0, 7, 3, 11, 1, 14};
  writeFile(root / "signature/tail-block-16-buckets.bin",
            asString(encodeSignatureBlock(wide, 16)));

  // An all-unheard block: every plane word zero (the sparse-visibility
  // common case the prefilter's presence plane keys on).
  writeFile(root / "signature/all-unheard.bin",
            asString(encodeSignatureBlock(
                std::vector<std::uint8_t>(64, 0), 8)));

  // Regressions: malformed blocks decode must keep rejecting with
  // SignatureCodecError, never crash or accept.
  //
  // A stray bit past entryCount in the presence plane.
  std::vector<std::uint8_t> stray = encodeSignatureBlock(tail, 2);
  stray[2] |= 0x20;  // Bit 5; entryCount is 5.
  writeFile(root / "regressions/signature/stray-bit-past-entries.bin",
            asString(stray));
  // A thermometer violation: a deep-plane bit without its prefix.
  std::vector<std::uint8_t> nonMonotone = encodeSignatureBlock(full, 8);
  nonMonotone[2 + 6 * 8] |= 0x1;  // Plane 6 bit for an entry in bucket 0.
  writeFile(root / "regressions/signature/non-monotone-planes.bin",
            asString(nonMonotone));
  // A header whose plane payload is truncated.
  const std::vector<std::uint8_t> whole = encodeSignatureBlock(full, 8);
  const std::vector<std::uint8_t> torn(whole.begin(), whole.end() - 11);
  writeFile(root / "regressions/signature/torn-planes.bin",
            asString(torn));
}

/// Venue-image seeds: real images through the real writer (with and
/// without an embedded index), plus regressions for every section-
/// table damage mode the loader must keep rejecting with a typed
/// ImageError — hostile offsets, overlaps, misalignment, duplicate
/// ids, CRC flips, truncation, layout-tag and count damage.
void makeImageSeeds(const fs::path& root) {
  namespace image = moloc::image;

  // A small world, built exactly the way serving does: 12
  // fingerprinted locations x 4 APs, a corridor motion database, and
  // a tiered index sharded small enough to produce several shards.
  auto db = std::make_shared<moloc::radio::FingerprintDatabase>();
  for (int i = 0; i < 12; ++i) {
    std::vector<double> rss(4);
    for (int a = 0; a < 4; ++a)
      rss[static_cast<std::size_t>(a)] = -40.0 - 3.0 * i - 1.5 * a;
    db->addLocation(i, moloc::radio::Fingerprint(rss));
  }
  moloc::core::MotionDatabase motion(12);
  for (int i = 0; i + 1 < 12; ++i)
    motion.setEntryWithMirror(i, i + 1,
                              {90.0, 4.0, 5.0 + 0.25 * i, 0.3, 20});
  moloc::index::IndexConfig indexConfig;
  indexConfig.maxShardEntries = 4;
  const auto index = std::make_shared<const moloc::index::TieredIndex>(
      db, indexConfig);

  const fs::path dir = scratchDir("image");
  fs::create_directories(dir);
  {
    const moloc::core::WorldSnapshot world(db, motion, /*generation=*/7,
                                           /*intakeRecords=*/21, index);
    image::writeVenueImage((dir / "a.img").string(), world,
                           {/*fsync=*/false});
  }
  const std::string withIndex = readFile(dir / "a.img");
  writeFile(root / "image/with-index.img", withIndex);
  {
    const moloc::core::WorldSnapshot world(db, motion, /*generation=*/7,
                                           /*intakeRecords=*/21, nullptr);
    image::writeVenueImage((dir / "b.img").string(), world,
                           {/*fsync=*/false});
  }
  writeFile(root / "image/no-index.img", readFile(dir / "b.img"));
  fs::remove_all(dir);

  // Byte-patching helpers.  The format is host-layout by design (the
  // header's layout tag pins it), so direct memcpy patches are exactly
  // what a hostile or bit-rotted file looks like on this host.
  const auto peekU32 = [](const std::string& bytes, std::size_t at) {
    std::uint32_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    return v;
  };
  const auto pokeU32 = [](std::string& bytes, std::size_t at,
                          std::uint32_t v) {
    std::memcpy(bytes.data() + at, &v, sizeof(v));
  };
  const auto pokeU64 = [](std::string& bytes, std::size_t at,
                          std::uint64_t v) {
    std::memcpy(bytes.data() + at, &v, sizeof(v));
  };
  // Re-seals FileHeader::tableCrc after a table patch, so the input
  // reaches the *structural* validation it targets instead of dying at
  // the table checksum.
  const auto resealTable = [&](std::string& bytes) {
    const std::uint32_t sections = peekU32(bytes, 24);
    pokeU32(bytes, 28,
            moloc::store::crc32c(
                bytes.data() + sizeof(image::FileHeader),
                sections * sizeof(image::SectionEntry)));
  };
  const auto entryAt = [](std::size_t i) {
    return sizeof(image::FileHeader) + i * sizeof(image::SectionEntry);
  };

  // A truncation (here: mid-table) must be a typed rejection.
  writeFile(root / "regressions/image/truncated-table.img",
            withIndex.substr(0, 48));
  // A flipped byte in a section body must fail that section's CRC.
  std::string bodyFlip = withIndex;
  bodyFlip[bodyFlip.size() - 1] ^= 0x40;
  writeFile(root / "regressions/image/body-crc-flip.img", bodyFlip);
  // A hostile offset far past the file, with the table re-sealed so
  // the bounds check (not the checksum) must reject it.
  std::string hostileOffset = withIndex;
  pokeU64(hostileOffset, entryAt(0) + 8, 1ull << 60);
  resealTable(hostileOffset);
  writeFile(root / "regressions/image/hostile-offset.img", hostileOffset);
  // Two sections claiming overlapping byte ranges.
  std::string overlap = withIndex;
  std::uint64_t firstOffset = 0;
  std::memcpy(&firstOffset, withIndex.data() + entryAt(0) + 8,
              sizeof(firstOffset));
  pokeU64(overlap, entryAt(1) + 8, firstOffset);
  resealTable(overlap);
  writeFile(root / "regressions/image/overlapping-sections.img", overlap);
  // An offset off the 64-byte alignment grid.
  std::string misaligned = withIndex;
  pokeU64(misaligned, entryAt(0) + 8, firstOffset + 8);
  resealTable(misaligned);
  writeFile(root / "regressions/image/misaligned-offset.img", misaligned);
  // The same section id twice.
  std::string duplicate = withIndex;
  pokeU32(duplicate, entryAt(1), peekU32(withIndex, entryAt(0)));
  resealTable(duplicate);
  writeFile(root / "regressions/image/duplicate-section.img", duplicate);
  // A foreign layout tag (other endianness/ABI): rejected by value.
  std::string foreignLayout = withIndex;
  foreignLayout[12] ^= 0x03;
  writeFile(root / "regressions/image/foreign-layout-tag.img",
            foreignLayout);
  // A zero section count inside an otherwise intact header.
  std::string zeroSections = withIndex;
  pokeU32(zeroSections, 24, 0);
  writeFile(root / "regressions/image/zero-sections.img", zeroSections);
}

}  // namespace

/// Wire-protocol seeds: one of each message through the real
/// encoders, a pipelined stream, and regressions for the frame-level
/// damage modes the decoder must keep rejecting without crashing.
void makeWireSeeds(const fs::path& root) {
  using namespace moloc::net;

  WireScan scan;
  scan.sessionId = 42;
  scan.scan = moloc::radio::Fingerprint({-50.0, -60.0, -71.5});
  scan.imu = moloc::sensors::ImuTrace(50.0);
  for (int i = 0; i < 4; ++i)
    scan.imu.append({i / 50.0, 9.81 + 0.25 * i, 90.0 + i, -1.5 * i});

  LocalizeRequest localize;
  localize.tag = 1;
  localize.scan = scan;
  writeFile(root / "wire/localize.bin", encodeLocalizeRequest(localize));

  LocalizeBatchRequest batch;
  batch.tag = 2;
  batch.scans = {scan, scan};
  writeFile(root / "wire/localize-batch.bin",
            encodeLocalizeBatchRequest(batch));

  ReportObservationRequest report;
  report.tag = 3;
  report.start = 0;
  report.end = 1;
  report.directionDeg = 90.0;
  report.offsetMeters = 4.0;
  writeFile(root / "wire/report-observation.bin",
            encodeReportObservationRequest(report));

  LocalizeResponse okResponse;
  okResponse.tag = 4;
  okResponse.estimate.location = 3;
  okResponse.estimate.probability = 0.75;
  okResponse.estimate.candidates = {{3, 0.75}, {1, 0.25}};
  writeFile(root / "wire/localize-response.bin",
            encodeLocalizeResponse(okResponse));

  FlushResponse errResponse;
  errResponse.tag = 5;
  errResponse.status = Status::kShuttingDown;
  errResponse.message = "drain in progress";
  writeFile(root / "wire/flush-response-error.bin",
            encodeFlushResponse(errResponse));

  // A pipelined stream: three frames back to back, as a real
  // connection produces.
  StatsRequest stats;
  stats.tag = 6;
  writeFile(root / "wire/pipelined-stream.bin",
            encodeFlushRequest({7}) + encodeStatsRequest(stats) +
                encodeReportObservationRequest(report));

  // Regressions: every frame-level damage mode must stay a typed
  // rejection, never a crash or over-read.
  std::string badCrc = encodeStatsRequest({8});
  badCrc[badCrc.size() - 1] ^= 0x01;
  writeFile(root / "regressions/wire/bad-crc.bin", badCrc);

  std::string badMagic = encodeFlushRequest({9});
  badMagic[0] ^= 0x01;
  writeFile(root / "regressions/wire/bad-magic.bin", badMagic);

  // A CRC-valid frame whose payload claims 2^32-1 batch scans: the
  // count must be rejected arithmetically before any allocation.
  std::string hostileCount;
  putU64(hostileCount, 10);
  putU32(hostileCount, 0xFFFFFFFFu);
  writeFile(root / "regressions/wire/hostile-count.bin",
            encodeFrame(MsgType::kLocalizeBatch, hostileCount));

  // A CRC-valid Localize whose IMU sample rate is negative: domain
  // validation must surface as a malformed-payload rejection.
  std::string badRate;
  putU64(badRate, 11);   // tag
  putU64(badRate, 1);    // sessionId
  putU32(badRate, 0);    // apCount
  putF64(badRate, -50.0);
  putU32(badRate, 0);    // sampleCount
  writeFile(root / "regressions/wire/negative-sample-rate.bin",
            encodeFrame(MsgType::kLocalize, badRate));

  // A torn tail: a valid frame cut mid-payload (a peer that died
  // mid-send); the assembler must keep waiting, not misparse.
  const std::string torn = encodeLocalizeRequest(localize);
  writeFile(root / "regressions/wire/torn-frame.bin",
            torn.substr(0, torn.size() - 9));
}

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  makeWalSeeds(root);
  makeCheckpointSeeds(root);
  makeSerializationSeeds(root);
  makeWireSeeds(root);
  makeSignatureSeeds(root);
  makeImageSeeds(root);
  return 0;
}
