#include "targets/fuzz_targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return moloc::fuzz::runImageLoad(data, size);
}
