// Replay driver for toolchains without libFuzzer (the default GCC
// build): each argument is an input file, or a directory whose files
// are replayed recursively.  The process exits 0 only if every input
// was consumed without tripping a harness invariant — the same signal
// a libFuzzer binary gives, minus the coverage feedback.
//
// Under clang -fsanitize=fuzzer this file is not compiled; libFuzzer
// provides main().

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replayFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open input '%s'\n", path.c_str());
    return 1;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <input-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int a = 1; a < argc; ++a) {
    const std::filesystem::path arg(argv[a]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (replayFile(entry.path().string()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (replayFile(arg.string()) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("replayed %zu input(s), all clean\n", replayed);
  return 0;
}
