# Empty dependencies file for moloc_tests.
# This may be replaced when dependencies are built.
