
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerometer_model.cpp" "tests/CMakeFiles/moloc_tests.dir/test_accelerometer_model.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_accelerometer_model.cpp.o.d"
  "/root/repo/tests/test_ambiguity.cpp" "tests/CMakeFiles/moloc_tests.dir/test_ambiguity.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_ambiguity.cpp.o.d"
  "/root/repo/tests/test_angles.cpp" "tests/CMakeFiles/moloc_tests.dir/test_angles.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_angles.cpp.o.d"
  "/root/repo/tests/test_args.cpp" "tests/CMakeFiles/moloc_tests.dir/test_args.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_args.cpp.o.d"
  "/root/repo/tests/test_ascii_map.cpp" "tests/CMakeFiles/moloc_tests.dir/test_ascii_map.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_ascii_map.cpp.o.d"
  "/root/repo/tests/test_candidate_estimator.cpp" "tests/CMakeFiles/moloc_tests.dir/test_candidate_estimator.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_candidate_estimator.cpp.o.d"
  "/root/repo/tests/test_compass_calibrator.cpp" "tests/CMakeFiles/moloc_tests.dir/test_compass_calibrator.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_compass_calibrator.cpp.o.d"
  "/root/repo/tests/test_compass_distortion.cpp" "tests/CMakeFiles/moloc_tests.dir/test_compass_distortion.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_compass_distortion.cpp.o.d"
  "/root/repo/tests/test_compass_model.cpp" "tests/CMakeFiles/moloc_tests.dir/test_compass_model.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_compass_model.cpp.o.d"
  "/root/repo/tests/test_construction_methods.cpp" "tests/CMakeFiles/moloc_tests.dir/test_construction_methods.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_construction_methods.cpp.o.d"
  "/root/repo/tests/test_convergence.cpp" "tests/CMakeFiles/moloc_tests.dir/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_convergence.cpp.o.d"
  "/root/repo/tests/test_corridor_building.cpp" "tests/CMakeFiles/moloc_tests.dir/test_corridor_building.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_corridor_building.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/moloc_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_dead_reckoning.cpp" "tests/CMakeFiles/moloc_tests.dir/test_dead_reckoning.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_dead_reckoning.cpp.o.d"
  "/root/repo/tests/test_engine_probabilistic.cpp" "tests/CMakeFiles/moloc_tests.dir/test_engine_probabilistic.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_engine_probabilistic.cpp.o.d"
  "/root/repo/tests/test_error_stats.cpp" "tests/CMakeFiles/moloc_tests.dir/test_error_stats.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_error_stats.cpp.o.d"
  "/root/repo/tests/test_experiment_world.cpp" "tests/CMakeFiles/moloc_tests.dir/test_experiment_world.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_experiment_world.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/moloc_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fingerprint.cpp" "tests/CMakeFiles/moloc_tests.dir/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_fingerprint.cpp.o.d"
  "/root/repo/tests/test_fingerprint_database.cpp" "tests/CMakeFiles/moloc_tests.dir/test_fingerprint_database.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_fingerprint_database.cpp.o.d"
  "/root/repo/tests/test_floor_plan.cpp" "tests/CMakeFiles/moloc_tests.dir/test_floor_plan.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_floor_plan.cpp.o.d"
  "/root/repo/tests/test_gyroscope_model.cpp" "tests/CMakeFiles/moloc_tests.dir/test_gyroscope_model.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_gyroscope_model.cpp.o.d"
  "/root/repo/tests/test_heading_filter.cpp" "tests/CMakeFiles/moloc_tests.dir/test_heading_filter.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_heading_filter.cpp.o.d"
  "/root/repo/tests/test_hmm_localizer.cpp" "tests/CMakeFiles/moloc_tests.dir/test_hmm_localizer.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_hmm_localizer.cpp.o.d"
  "/root/repo/tests/test_imu_trace.cpp" "tests/CMakeFiles/moloc_tests.dir/test_imu_trace.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_imu_trace.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/moloc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_knn_averaging.cpp" "tests/CMakeFiles/moloc_tests.dir/test_knn_averaging.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_knn_averaging.cpp.o.d"
  "/root/repo/tests/test_localization_session.cpp" "tests/CMakeFiles/moloc_tests.dir/test_localization_session.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_localization_session.cpp.o.d"
  "/root/repo/tests/test_moloc_engine.cpp" "tests/CMakeFiles/moloc_tests.dir/test_moloc_engine.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_moloc_engine.cpp.o.d"
  "/root/repo/tests/test_motion_database.cpp" "tests/CMakeFiles/moloc_tests.dir/test_motion_database.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_motion_database.cpp.o.d"
  "/root/repo/tests/test_motion_database_builder.cpp" "tests/CMakeFiles/moloc_tests.dir/test_motion_database_builder.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_motion_database_builder.cpp.o.d"
  "/root/repo/tests/test_motion_matcher.cpp" "tests/CMakeFiles/moloc_tests.dir/test_motion_matcher.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_motion_matcher.cpp.o.d"
  "/root/repo/tests/test_motion_processor.cpp" "tests/CMakeFiles/moloc_tests.dir/test_motion_processor.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_motion_processor.cpp.o.d"
  "/root/repo/tests/test_office_hall.cpp" "tests/CMakeFiles/moloc_tests.dir/test_office_hall.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_office_hall.cpp.o.d"
  "/root/repo/tests/test_online_motion_database.cpp" "tests/CMakeFiles/moloc_tests.dir/test_online_motion_database.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_online_motion_database.cpp.o.d"
  "/root/repo/tests/test_particle_filter.cpp" "tests/CMakeFiles/moloc_tests.dir/test_particle_filter.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_particle_filter.cpp.o.d"
  "/root/repo/tests/test_pauses.cpp" "tests/CMakeFiles/moloc_tests.dir/test_pauses.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_pauses.cpp.o.d"
  "/root/repo/tests/test_probabilistic_database.cpp" "tests/CMakeFiles/moloc_tests.dir/test_probabilistic_database.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_probabilistic_database.cpp.o.d"
  "/root/repo/tests/test_propagation.cpp" "tests/CMakeFiles/moloc_tests.dir/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_propagation.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/moloc_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_radio_environment.cpp" "tests/CMakeFiles/moloc_tests.dir/test_radio_environment.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_radio_environment.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/moloc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_segment.cpp" "tests/CMakeFiles/moloc_tests.dir/test_segment.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_segment.cpp.o.d"
  "/root/repo/tests/test_serialization.cpp" "tests/CMakeFiles/moloc_tests.dir/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_serialization.cpp.o.d"
  "/root/repo/tests/test_site_survey.cpp" "tests/CMakeFiles/moloc_tests.dir/test_site_survey.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_site_survey.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/moloc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_step_counter.cpp" "tests/CMakeFiles/moloc_tests.dir/test_step_counter.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_step_counter.cpp.o.d"
  "/root/repo/tests/test_step_detector.cpp" "tests/CMakeFiles/moloc_tests.dir/test_step_detector.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_step_detector.cpp.o.d"
  "/root/repo/tests/test_step_length.cpp" "tests/CMakeFiles/moloc_tests.dir/test_step_length.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_step_length.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/moloc_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_trace_simulator.cpp" "tests/CMakeFiles/moloc_tests.dir/test_trace_simulator.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_trace_simulator.cpp.o.d"
  "/root/repo/tests/test_trace_smoother.cpp" "tests/CMakeFiles/moloc_tests.dir/test_trace_smoother.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_trace_smoother.cpp.o.d"
  "/root/repo/tests/test_trajectory_generator.cpp" "tests/CMakeFiles/moloc_tests.dir/test_trajectory_generator.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_trajectory_generator.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/moloc_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_user_profile.cpp" "tests/CMakeFiles/moloc_tests.dir/test_user_profile.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_user_profile.cpp.o.d"
  "/root/repo/tests/test_vec2.cpp" "tests/CMakeFiles/moloc_tests.dir/test_vec2.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_vec2.cpp.o.d"
  "/root/repo/tests/test_walk_graph.cpp" "tests/CMakeFiles/moloc_tests.dir/test_walk_graph.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_walk_graph.cpp.o.d"
  "/root/repo/tests/test_walking_detector.cpp" "tests/CMakeFiles/moloc_tests.dir/test_walking_detector.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_walking_detector.cpp.o.d"
  "/root/repo/tests/test_wifi_fingerprinting.cpp" "tests/CMakeFiles/moloc_tests.dir/test_wifi_fingerprinting.cpp.o" "gcc" "tests/CMakeFiles/moloc_tests.dir/test_wifi_fingerprinting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
