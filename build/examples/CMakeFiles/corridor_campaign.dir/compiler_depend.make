# Empty compiler generated dependencies file for corridor_campaign.
# This may be replaced when dependencies are built.
