file(REMOVE_RECURSE
  "CMakeFiles/corridor_campaign.dir/corridor_campaign.cpp.o"
  "CMakeFiles/corridor_campaign.dir/corridor_campaign.cpp.o.d"
  "corridor_campaign"
  "corridor_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corridor_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
