file(REMOVE_RECURSE
  "CMakeFiles/live_map.dir/live_map.cpp.o"
  "CMakeFiles/live_map.dir/live_map.cpp.o.d"
  "live_map"
  "live_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
