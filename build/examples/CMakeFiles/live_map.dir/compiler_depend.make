# Empty compiler generated dependencies file for live_map.
# This may be replaced when dependencies are built.
