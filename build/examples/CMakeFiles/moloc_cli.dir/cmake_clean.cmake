file(REMOVE_RECURSE
  "CMakeFiles/moloc_cli.dir/moloc_cli.cpp.o"
  "CMakeFiles/moloc_cli.dir/moloc_cli.cpp.o.d"
  "moloc_cli"
  "moloc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moloc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
