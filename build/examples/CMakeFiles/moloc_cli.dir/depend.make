# Empty dependencies file for moloc_cli.
# This may be replaced when dependencies are built.
