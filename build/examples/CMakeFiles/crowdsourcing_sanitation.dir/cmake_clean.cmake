file(REMOVE_RECURSE
  "CMakeFiles/crowdsourcing_sanitation.dir/crowdsourcing_sanitation.cpp.o"
  "CMakeFiles/crowdsourcing_sanitation.dir/crowdsourcing_sanitation.cpp.o.d"
  "crowdsourcing_sanitation"
  "crowdsourcing_sanitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsourcing_sanitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
