# Empty compiler generated dependencies file for crowdsourcing_sanitation.
# This may be replaced when dependencies are built.
