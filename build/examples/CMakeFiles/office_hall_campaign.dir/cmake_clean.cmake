file(REMOVE_RECURSE
  "CMakeFiles/office_hall_campaign.dir/office_hall_campaign.cpp.o"
  "CMakeFiles/office_hall_campaign.dir/office_hall_campaign.cpp.o.d"
  "office_hall_campaign"
  "office_hall_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_hall_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
