# Empty dependencies file for office_hall_campaign.
# This may be replaced when dependencies are built.
