# Empty dependencies file for fingerprint_twins.
# This may be replaced when dependencies are built.
