file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_twins.dir/fingerprint_twins.cpp.o"
  "CMakeFiles/fingerprint_twins.dir/fingerprint_twins.cpp.o.d"
  "fingerprint_twins"
  "fingerprint_twins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_twins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
