# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fingerprint_twins "/root/repo/build/examples/fingerprint_twins")
set_tests_properties(example_fingerprint_twins PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office_hall_campaign "/root/repo/build/examples/office_hall_campaign")
set_tests_properties(example_office_hall_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crowdsourcing_sanitation "/root/repo/build/examples/crowdsourcing_sanitation")
set_tests_properties(example_crowdsourcing_sanitation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_map "/root/repo/build/examples/live_map")
set_tests_properties(example_live_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corridor_campaign "/root/repo/build/examples/corridor_campaign")
set_tests_properties(example_corridor_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_moloc_cli "/root/repo/build/examples/moloc_cli" "--traces" "5" "--legs" "5" "--quiet")
set_tests_properties(example_moloc_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
