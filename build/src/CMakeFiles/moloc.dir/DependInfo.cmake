
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dead_reckoning.cpp" "src/CMakeFiles/moloc.dir/baseline/dead_reckoning.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/baseline/dead_reckoning.cpp.o.d"
  "/root/repo/src/baseline/hmm_localizer.cpp" "src/CMakeFiles/moloc.dir/baseline/hmm_localizer.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/baseline/hmm_localizer.cpp.o.d"
  "/root/repo/src/baseline/knn_averaging.cpp" "src/CMakeFiles/moloc.dir/baseline/knn_averaging.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/baseline/knn_averaging.cpp.o.d"
  "/root/repo/src/baseline/particle_filter.cpp" "src/CMakeFiles/moloc.dir/baseline/particle_filter.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/baseline/particle_filter.cpp.o.d"
  "/root/repo/src/baseline/wifi_fingerprinting.cpp" "src/CMakeFiles/moloc.dir/baseline/wifi_fingerprinting.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/baseline/wifi_fingerprinting.cpp.o.d"
  "/root/repo/src/core/candidate_estimator.cpp" "src/CMakeFiles/moloc.dir/core/candidate_estimator.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/candidate_estimator.cpp.o.d"
  "/root/repo/src/core/construction_methods.cpp" "src/CMakeFiles/moloc.dir/core/construction_methods.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/construction_methods.cpp.o.d"
  "/root/repo/src/core/localization_session.cpp" "src/CMakeFiles/moloc.dir/core/localization_session.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/localization_session.cpp.o.d"
  "/root/repo/src/core/moloc_engine.cpp" "src/CMakeFiles/moloc.dir/core/moloc_engine.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/moloc_engine.cpp.o.d"
  "/root/repo/src/core/motion_database.cpp" "src/CMakeFiles/moloc.dir/core/motion_database.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/motion_database.cpp.o.d"
  "/root/repo/src/core/motion_database_builder.cpp" "src/CMakeFiles/moloc.dir/core/motion_database_builder.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/motion_database_builder.cpp.o.d"
  "/root/repo/src/core/motion_matcher.cpp" "src/CMakeFiles/moloc.dir/core/motion_matcher.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/motion_matcher.cpp.o.d"
  "/root/repo/src/core/online_motion_database.cpp" "src/CMakeFiles/moloc.dir/core/online_motion_database.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/online_motion_database.cpp.o.d"
  "/root/repo/src/core/trace_smoother.cpp" "src/CMakeFiles/moloc.dir/core/trace_smoother.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/core/trace_smoother.cpp.o.d"
  "/root/repo/src/env/corridor_building.cpp" "src/CMakeFiles/moloc.dir/env/corridor_building.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/env/corridor_building.cpp.o.d"
  "/root/repo/src/env/floor_plan.cpp" "src/CMakeFiles/moloc.dir/env/floor_plan.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/env/floor_plan.cpp.o.d"
  "/root/repo/src/env/office_hall.cpp" "src/CMakeFiles/moloc.dir/env/office_hall.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/env/office_hall.cpp.o.d"
  "/root/repo/src/env/walk_graph.cpp" "src/CMakeFiles/moloc.dir/env/walk_graph.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/env/walk_graph.cpp.o.d"
  "/root/repo/src/eval/ambiguity.cpp" "src/CMakeFiles/moloc.dir/eval/ambiguity.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/eval/ambiguity.cpp.o.d"
  "/root/repo/src/eval/ascii_map.cpp" "src/CMakeFiles/moloc.dir/eval/ascii_map.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/eval/ascii_map.cpp.o.d"
  "/root/repo/src/eval/convergence.cpp" "src/CMakeFiles/moloc.dir/eval/convergence.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/eval/convergence.cpp.o.d"
  "/root/repo/src/eval/error_stats.cpp" "src/CMakeFiles/moloc.dir/eval/error_stats.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/eval/error_stats.cpp.o.d"
  "/root/repo/src/eval/experiment_world.cpp" "src/CMakeFiles/moloc.dir/eval/experiment_world.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/eval/experiment_world.cpp.o.d"
  "/root/repo/src/geometry/angles.cpp" "src/CMakeFiles/moloc.dir/geometry/angles.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/geometry/angles.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/CMakeFiles/moloc.dir/geometry/segment.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/geometry/segment.cpp.o.d"
  "/root/repo/src/geometry/vec2.cpp" "src/CMakeFiles/moloc.dir/geometry/vec2.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/geometry/vec2.cpp.o.d"
  "/root/repo/src/io/serialization.cpp" "src/CMakeFiles/moloc.dir/io/serialization.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/io/serialization.cpp.o.d"
  "/root/repo/src/io/trace_io.cpp" "src/CMakeFiles/moloc.dir/io/trace_io.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/io/trace_io.cpp.o.d"
  "/root/repo/src/radio/access_point.cpp" "src/CMakeFiles/moloc.dir/radio/access_point.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/access_point.cpp.o.d"
  "/root/repo/src/radio/fingerprint.cpp" "src/CMakeFiles/moloc.dir/radio/fingerprint.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/fingerprint.cpp.o.d"
  "/root/repo/src/radio/fingerprint_database.cpp" "src/CMakeFiles/moloc.dir/radio/fingerprint_database.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/fingerprint_database.cpp.o.d"
  "/root/repo/src/radio/probabilistic_database.cpp" "src/CMakeFiles/moloc.dir/radio/probabilistic_database.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/probabilistic_database.cpp.o.d"
  "/root/repo/src/radio/propagation.cpp" "src/CMakeFiles/moloc.dir/radio/propagation.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/propagation.cpp.o.d"
  "/root/repo/src/radio/radio_environment.cpp" "src/CMakeFiles/moloc.dir/radio/radio_environment.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/radio_environment.cpp.o.d"
  "/root/repo/src/radio/site_survey.cpp" "src/CMakeFiles/moloc.dir/radio/site_survey.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/radio/site_survey.cpp.o.d"
  "/root/repo/src/sensors/accelerometer_model.cpp" "src/CMakeFiles/moloc.dir/sensors/accelerometer_model.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/accelerometer_model.cpp.o.d"
  "/root/repo/src/sensors/compass_calibrator.cpp" "src/CMakeFiles/moloc.dir/sensors/compass_calibrator.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/compass_calibrator.cpp.o.d"
  "/root/repo/src/sensors/compass_model.cpp" "src/CMakeFiles/moloc.dir/sensors/compass_model.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/compass_model.cpp.o.d"
  "/root/repo/src/sensors/gyroscope_model.cpp" "src/CMakeFiles/moloc.dir/sensors/gyroscope_model.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/gyroscope_model.cpp.o.d"
  "/root/repo/src/sensors/heading_filter.cpp" "src/CMakeFiles/moloc.dir/sensors/heading_filter.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/heading_filter.cpp.o.d"
  "/root/repo/src/sensors/imu_trace.cpp" "src/CMakeFiles/moloc.dir/sensors/imu_trace.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/imu_trace.cpp.o.d"
  "/root/repo/src/sensors/motion_processor.cpp" "src/CMakeFiles/moloc.dir/sensors/motion_processor.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/motion_processor.cpp.o.d"
  "/root/repo/src/sensors/step_counter.cpp" "src/CMakeFiles/moloc.dir/sensors/step_counter.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/step_counter.cpp.o.d"
  "/root/repo/src/sensors/step_detector.cpp" "src/CMakeFiles/moloc.dir/sensors/step_detector.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/step_detector.cpp.o.d"
  "/root/repo/src/sensors/step_length.cpp" "src/CMakeFiles/moloc.dir/sensors/step_length.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/step_length.cpp.o.d"
  "/root/repo/src/sensors/walking_detector.cpp" "src/CMakeFiles/moloc.dir/sensors/walking_detector.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/sensors/walking_detector.cpp.o.d"
  "/root/repo/src/traj/trace_simulator.cpp" "src/CMakeFiles/moloc.dir/traj/trace_simulator.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/traj/trace_simulator.cpp.o.d"
  "/root/repo/src/traj/trajectory_generator.cpp" "src/CMakeFiles/moloc.dir/traj/trajectory_generator.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/traj/trajectory_generator.cpp.o.d"
  "/root/repo/src/traj/user_profile.cpp" "src/CMakeFiles/moloc.dir/traj/user_profile.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/traj/user_profile.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/moloc.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/util/args.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/moloc.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/moloc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/moloc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/moloc.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
