# Empty dependencies file for moloc.
# This may be replaced when dependencies are built.
