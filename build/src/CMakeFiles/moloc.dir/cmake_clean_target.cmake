file(REMOVE_RECURSE
  "libmoloc.a"
)
