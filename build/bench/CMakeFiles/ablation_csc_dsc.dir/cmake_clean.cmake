file(REMOVE_RECURSE
  "CMakeFiles/ablation_csc_dsc.dir/ablation_csc_dsc.cpp.o"
  "CMakeFiles/ablation_csc_dsc.dir/ablation_csc_dsc.cpp.o.d"
  "ablation_csc_dsc"
  "ablation_csc_dsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_csc_dsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
