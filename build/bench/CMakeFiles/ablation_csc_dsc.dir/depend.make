# Empty dependencies file for ablation_csc_dsc.
# This may be replaced when dependencies are built.
