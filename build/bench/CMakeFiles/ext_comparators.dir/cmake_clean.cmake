file(REMOVE_RECURSE
  "CMakeFiles/ext_comparators.dir/ext_comparators.cpp.o"
  "CMakeFiles/ext_comparators.dir/ext_comparators.cpp.o.d"
  "ext_comparators"
  "ext_comparators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
