# Empty dependencies file for ext_comparators.
# This may be replaced when dependencies are built.
