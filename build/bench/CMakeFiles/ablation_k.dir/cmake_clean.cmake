file(REMOVE_RECURSE
  "CMakeFiles/ablation_k.dir/ablation_k.cpp.o"
  "CMakeFiles/ablation_k.dir/ablation_k.cpp.o.d"
  "ablation_k"
  "ablation_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
