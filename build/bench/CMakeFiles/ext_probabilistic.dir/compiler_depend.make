# Empty compiler generated dependencies file for ext_probabilistic.
# This may be replaced when dependencies are built.
