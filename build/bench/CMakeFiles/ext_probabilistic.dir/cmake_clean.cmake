file(REMOVE_RECURSE
  "CMakeFiles/ext_probabilistic.dir/ext_probabilistic.cpp.o"
  "CMakeFiles/ext_probabilistic.dir/ext_probabilistic.cpp.o.d"
  "ext_probabilistic"
  "ext_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
