file(REMOVE_RECURSE
  "CMakeFiles/ext_smoother.dir/ext_smoother.cpp.o"
  "CMakeFiles/ext_smoother.dir/ext_smoother.cpp.o.d"
  "ext_smoother"
  "ext_smoother.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
