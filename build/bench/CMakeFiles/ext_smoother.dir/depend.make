# Empty dependencies file for ext_smoother.
# This may be replaced when dependencies are built.
