file(REMOVE_RECURSE
  "CMakeFiles/tab1_convergence.dir/tab1_convergence.cpp.o"
  "CMakeFiles/tab1_convergence.dir/tab1_convergence.cpp.o.d"
  "tab1_convergence"
  "tab1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
