# Empty dependencies file for tab1_convergence.
# This may be replaced when dependencies are built.
