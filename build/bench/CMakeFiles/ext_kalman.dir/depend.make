# Empty dependencies file for ext_kalman.
# This may be replaced when dependencies are built.
