file(REMOVE_RECURSE
  "CMakeFiles/ext_kalman.dir/ext_kalman.cpp.o"
  "CMakeFiles/ext_kalman.dir/ext_kalman.cpp.o.d"
  "ext_kalman"
  "ext_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
