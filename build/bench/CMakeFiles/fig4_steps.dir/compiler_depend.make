# Empty compiler generated dependencies file for fig4_steps.
# This may be replaced when dependencies are built.
