file(REMOVE_RECURSE
  "CMakeFiles/fig4_steps.dir/fig4_steps.cpp.o"
  "CMakeFiles/fig4_steps.dir/fig4_steps.cpp.o.d"
  "fig4_steps"
  "fig4_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
