# Empty compiler generated dependencies file for ablation_sanitation.
# This may be replaced when dependencies are built.
