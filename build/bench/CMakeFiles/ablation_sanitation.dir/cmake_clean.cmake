file(REMOVE_RECURSE
  "CMakeFiles/ablation_sanitation.dir/ablation_sanitation.cpp.o"
  "CMakeFiles/ablation_sanitation.dir/ablation_sanitation.cpp.o.d"
  "ablation_sanitation"
  "ablation_sanitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sanitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
