file(REMOVE_RECURSE
  "CMakeFiles/fig8_large_errors.dir/fig8_large_errors.cpp.o"
  "CMakeFiles/fig8_large_errors.dir/fig8_large_errors.cpp.o.d"
  "fig8_large_errors"
  "fig8_large_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_large_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
