# Empty dependencies file for fig8_large_errors.
# This may be replaced when dependencies are built.
