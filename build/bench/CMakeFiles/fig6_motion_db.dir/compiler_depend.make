# Empty compiler generated dependencies file for fig6_motion_db.
# This may be replaced when dependencies are built.
