file(REMOVE_RECURSE
  "CMakeFiles/fig6_motion_db.dir/fig6_motion_db.cpp.o"
  "CMakeFiles/fig6_motion_db.dir/fig6_motion_db.cpp.o.d"
  "fig6_motion_db"
  "fig6_motion_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_motion_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
