# Empty compiler generated dependencies file for twin_analysis.
# This may be replaced when dependencies are built.
