file(REMOVE_RECURSE
  "CMakeFiles/twin_analysis.dir/twin_analysis.cpp.o"
  "CMakeFiles/twin_analysis.dir/twin_analysis.cpp.o.d"
  "twin_analysis"
  "twin_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twin_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
