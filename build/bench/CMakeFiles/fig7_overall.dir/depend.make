# Empty dependencies file for fig7_overall.
# This may be replaced when dependencies are built.
