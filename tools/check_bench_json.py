#!/usr/bin/env python3
"""Schema gate for the BENCH_*.json perf-trajectory snapshots.

The bench binaries emit machine-readable sweeps under bench_results/
(schema in docs/performance.md) via bench::JsonWriter, which serializes
non-finite doubles as null so the document always parses.  This checker
is the other half of that contract: a snapshot that *parses* but leaked
a non-finite value into a field the trajectory tooling aggregates
(qps, seconds, speedups, latency summaries) is still a broken data
point — typically a divide-by-zero from a zero-duration smoke run —
and must fail CI instead of silently polluting the trajectory.

Checks, per file:
  1. The raw text contains no bare NaN/Infinity tokens (JsonWriter
     never emits them; their presence means hand-edited or corrupt
     output) and parses as strict JSON.
  2. The required envelope is present: "bench" (string) and
     "schema_version" (finite number).
  3. No *required numeric field*, at any nesting depth, is null or
     non-numeric.  Required numeric fields are the aggregatable
     measurements: seconds, qps, threads, queries, samples,
     schema_version, ops_per_sec, every *_ns latency statistic, every
     *_qps / speedup* / *_speedup* scaling figure, max_speedup*, and —
     for the network-serving snapshot (BENCH_micro_net.json) — the load
     shape (users, connections, requests_per_user) and every *_errors
     counter, whose absence-as-null would hide a failed run.  The
     index-scaling snapshot (BENCH_micro_scale.json) adds the venue
     shape (locations, ap_count, shard_count), the prefilter quality
     figures (recall, every *_mean, index_build_seconds), and the
     *_ratio scaling summary.
     (Percentile fields like p50_ms stay optional: a MOLOC_METRICS=OFF
     build reports them as -1, and a missing histogram may null them.)
  4. No object, at any depth, repeats a key.  json.loads keeps the
     last duplicate silently, so a JsonWriter bug that emits a section
     twice would otherwise *discard* the first measurement and still
     look green.
  5. Every top-level key is one the bench emitters are known to
     write.  A typo'd or renamed section would otherwise pass (its
     correctly-named twin simply absent) while the trajectory tooling
     aggregates nothing; renames must update KNOWN_TOP_LEVEL here in
     the same change.

Usage: check_bench_json.py [FILE...]
Defaults to bench_results/BENCH_*.json; exits non-zero when no
snapshot is found, so a silently-skipped bench cannot look green.
"""

import glob
import json
import math
import re
import sys

REQUIRED_ENVELOPE = ("bench", "schema_version")

# Union of the top-level sections across every BENCH_*.json emitter
# (micro_engine, micro_service, micro_scale, micro_store, loadgen).
KNOWN_TOP_LEVEL = frozenset(
    (
        "bench",
        "schema_version",
        "config",
        "sections",
        "sweep",
        "scaling",
        "determinism_bitwise",
        "latency",
        "observations",
        "server",
        "totals",
        "verification",
        "append",
        "recovery",
        "cold_start",
        "cold_start_summary",
    )
)

REQUIRED_NUMERIC = [
    re.compile(p)
    for p in (
        r"^(seconds|qps|threads|queries|samples|schema_version)$",
        r"^ops_per_sec$",
        r"_ns$",
        r"_qps$",
        r"^speedup",
        r"_speedup",
        r"^max_speedup",
        r"^(users|connections|requests_per_user)$",
        r"_errors$",
        r"^(locations|ap_count|shard_count|recall)$",
        r"^index_build_seconds$",
        r"_mean$",
        r"_ratio$",
    )
]

NONFINITE_TOKEN = re.compile(r"(?<![\w\"])(NaN|-?Infinity)(?![\w\"])")


def is_required_numeric(key):
    return any(p.search(key) for p in REQUIRED_NUMERIC)


def walk(node, path, errors):
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if is_required_numeric(key):
                if value is None:
                    errors.append(
                        f"{child}: null (a non-finite value leaked into a "
                        "required numeric field)"
                    )
                elif isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    errors.append(
                        f"{child}: expected a number, got "
                        f"{type(value).__name__}"
                    )
                elif not math.isfinite(value):
                    errors.append(f"{child}: non-finite value {value!r}")
            walk(value, child, errors)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            walk(value, f"{path}[{index}]", errors)


def check_file(name):
    errors = []
    try:
        with open(name, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"unreadable: {exc}"]

    match = NONFINITE_TOKEN.search(text)
    if match:
        errors.append(f"bare {match.group(0)} token (invalid JSON)")

    def reject_constant(token):
        raise ValueError(f"non-finite constant {token}")

    duplicate_keys = []

    def detect_duplicates(pairs):
        obj = {}
        for key, value in pairs:
            if key in obj:
                duplicate_keys.append(key)
            obj[key] = value
        return obj

    try:
        document = json.loads(
            text,
            parse_constant=reject_constant,
            object_pairs_hook=detect_duplicates,
        )
    except ValueError as exc:
        errors.append(f"parse error: {exc}")
        return errors

    for key in duplicate_keys:
        errors.append(
            f"duplicate key '{key}' (json keeps the last occurrence; the "
            "first measurement would be silently discarded)"
        )

    if not isinstance(document, dict):
        errors.append("top level is not an object")
        return errors
    for key in REQUIRED_ENVELOPE:
        if key not in document:
            errors.append(f"missing required field '{key}'")
    if "bench" in document and not isinstance(document["bench"], str):
        errors.append("'bench' must be a string")
    for key in document:
        if key not in KNOWN_TOP_LEVEL:
            errors.append(
                f"unknown top-level key '{key}' (typo'd or renamed "
                "section? update KNOWN_TOP_LEVEL with the emitter)"
            )

    walk(document, "", errors)
    return errors


def main(argv):
    files = argv[1:] or sorted(glob.glob("bench_results/BENCH_*.json"))
    if not files:
        print(
            "check_bench_json: no BENCH_*.json snapshots found "
            "(did the bench binaries run?)",
            file=sys.stderr,
        )
        return 2

    status = 0
    for name in files:
        errors = check_file(name)
        if errors:
            status = 1
            print(f"check_bench_json: FAIL {name}", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
        else:
            print(f"check_bench_json: ok {name}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
