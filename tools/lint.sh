#!/usr/bin/env bash
# Source-hygiene gate over src/, run in CI next to the clang
# thread-safety build (see docs/static_analysis.md).
#
# Since the moloc_check AST analyzer landed (tools/analyze/, built
# under -DMOLOC_ANALYZE=ON), the rules here split into two tiers:
#
# PRIMARY — grep remains the system of record; these are textual
# properties (a macro token, a path-scoped method-call policy) where
# an AST buys nothing:
#
#   tsa-escape    MOLOC_NO_THREAD_SAFETY_ANALYSIS outside src/util/ —
#                 the escape hatch exists for the Mutex/CondVar
#                 wrappers only; anywhere else it silently disables
#                 the proof.
#   online-mutation
#                 addObservation/applyAccepted calls on an
#                 OnlineMotionDatabase from src/core or src/service
#                 outside the database itself and the intake writer
#                 (service/intake.*) — the serving stack's WAL-order
#                 and publish guarantees hold only while the pipeline's
#                 single writer thread is the sole mutator
#                 (docs/serving.md).  Offline paths (eval, store
#                 recovery) are out of scope: they run before serving.
#
# FALLBACK — superseded by moloc_check, which enforces the same
# invariants on the AST (no comment/string false positives, callee
# resolution, wrapper-argument tracking instead of a two-line text
# window).  Kept here so `tools/lint.sh` still provides coverage on
# machines without libclang; when the analyzer runs (CI `analyze`
# job), invoke `tools/lint.sh --path-rules-only` to skip them:
#
#   raw-sync      std::mutex / condition_variable / lock types outside
#                 src/util/ — locking must go through the annotated
#                 util::Mutex wrappers or the thread-safety analysis
#                 cannot see it.
#   naked-new     `new` expressions — ownership is unique_ptr/vector
#                 everywhere in this codebase.
#   rand          rand()/srand() — a shared-state, non-reproducible
#                 RNG; simulations use util::Rng streams.
#   cout          std::cout/std::cerr in the library — the serving
#                 stack reports through obs:: and typed errors; stray
#                 stream writes are unsynchronized and invisible to
#                 operators.
#   raw-eintr     bare ::read/::write/::fsync/... syscalls in
#                 src/store, src/net and src/image without
#                 util::retryEintr — an interruptible POSIX call on
#                 the durability or serving path that does not retry
#                 EINTR turns any signal (SIGTERM drain included) into
#                 a spurious I/O failure.  ::close and ::poll are
#                 exempt: close must not be retried (the fd is gone
#                 either way, and a retry can close a recycled
#                 descriptor), and the poll loop handles EINTR as an
#                 ordinary wakeup.  Known window artifacts of the grep
#                 version (wrapped call split across 3+ lines, raw
#                 call on the line after a wrapped one) are committed
#                 as regression fixtures under tests/analyze_fixtures/
#                 — the AST check gets them right.
#
# A genuine exception gets `// lint:allow(<rule>): <why>` on the same
# line; the reason is mandatory (moloc_check reports a reasonless or
# typo'd marker as a `bad-suppression` finding).

set -u
cd "$(dirname "$0")/.."

path_rules_only=0
if [ "${1:-}" = "--path-rules-only" ]; then
  path_rules_only=1
elif [ -n "${1:-}" ]; then
  echo "usage: tools/lint.sh [--path-rules-only]" >&2
  echo "  --path-rules-only  run only the grep-primary rules" >&2
  echo "                     (tsa-escape, online-mutation); use when" >&2
  echo "                     moloc_check covers the AST rules" >&2
  exit 2
fi

fail=0

# check <rule> <pattern> <path-filter...>
# Scans the named files with // line comments stripped (so prose about
# "a new step" or "the mutex" cannot trip a rule) and reports every
# hit that does not carry a lint:allow for this rule.
check() {
  local rule="$1" pattern="$2"
  shift 2
  local f hits
  for f in "$@"; do
    hits=$(sed 's://.*$::' "$f" |
           grep -nE "$pattern" |
           grep -v "lint:allow($rule)" || true)
    if [ -n "$hits" ]; then
      echo "lint[$rule]: $f"
      echo "$hits" | sed 's/^/    /'
      fail=1
    fi
  done
}

mapfile -t all_src < <(find src -name '*.hpp' -o -name '*.cpp' | sort)
mapfile -t non_util_src < <(printf '%s\n' "${all_src[@]}" | grep -v '^src/util/')

# ----- PRIMARY (always run) ------------------------------------------

check tsa-escape 'MOLOC_NO_THREAD_SAFETY_ANALYSIS' "${non_util_src[@]}"

mapfile -t writer_scope < <(printf '%s\n' "${all_src[@]}" |
  grep -E '^src/(core|service)/' |
  grep -vE '^src/(core/online_motion_database|service/intake)\.')

check online-mutation '(\.|->) *(addObservation|applyAccepted) *\(' \
  "${writer_scope[@]}"

# ----- FALLBACK (superseded by moloc_check) --------------------------

if [ "$path_rules_only" -eq 0 ]; then
  check raw-sync \
    'std::(mutex|recursive_mutex|shared_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)' \
    "${non_util_src[@]}"

  check naked-new '\bnew +[A-Za-z_:][A-Za-z0-9_:<>]*[ ({[]|\bnew +[A-Za-z_:][A-Za-z0-9_:<>]*$' \
    "${all_src[@]}"

  check rand '\b(std::)?s?rand *\(' "${all_src[@]}"

  check cout 'std::(cout|cerr)\b' "${all_src[@]}"

  # raw-eintr needs a two-line window — the wrapper idiom regularly
  # splits `util::retryEintr(` and `[&] { return ::call(...` across
  # adjacent lines — so it gets its own scanner instead of check().
  raw_eintr_pattern='(^|[^A-Za-z0-9_:])::(read|write|fsync|fdatasync|recv|recvmsg|send|sendmsg|accept4?|open|openat|truncate|ftruncate|pread|pwrite|connect)\('
  mapfile -t eintr_scope < <(printf '%s\n' "${all_src[@]}" |
    grep -E '^src/(store|net|image)/')
  for f in "${eintr_scope[@]}"; do
    hits=$(awk -v pat="$raw_eintr_pattern" '
      {
        raw = $0
        line = $0
        sub(/\/\/.*$/, "", line)
        if (line ~ pat && line !~ /retryEintr/ && prev !~ /retryEintr/ &&
            raw !~ /lint:allow\(raw-eintr\)/)
          printf "%d:%s\n", NR, line
        prev = line
      }' "$f")
    if [ -n "$hits" ]; then
      echo "lint[raw-eintr]: $f"
      echo "$hits" | sed 's/^/    /'
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo
  echo "lint: violations found. Route locking through util::Mutex,"
  echo "ownership through smart pointers, randomness through util::Rng,"
  echo "and operator output through obs:: — or annotate the line with"
  echo "// lint:allow(<rule>): <reason>."
  exit 1
fi
if [ "$path_rules_only" -eq 1 ]; then
  echo "lint: clean (${#all_src[@]} files, path rules only — AST rules covered by moloc_check)"
else
  echo "lint: clean (${#all_src[@]} files)"
fi
