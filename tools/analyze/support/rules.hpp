#pragma once

#include <string>
#include <vector>

namespace moloc::analyze {

/// Registry entry for one check.  Ids are stable — they appear in
/// `lint:allow(<id>)` suppressions, fixture expectations, and CI
/// logs (`--list-rules` prints this table so rule drift shows up in
/// CI history).
struct RuleInfo {
  const char* id;
  /// What the rule bans, one line.
  const char* summary;
  /// The shipped-and-fixed bug this rule is the compile-time gate
  /// for (docs/static_analysis.md carries the full catalog).
  const char* guards;
};

const std::vector<RuleInfo>& allRules();

/// True when `id` names a registered rule.
bool isKnownRule(const std::string& id);

/// Scope policy: is `repoRelPath` (forward slashes, e.g.
/// "src/net/wire.cpp") subject to rule `id`?  Paths outside src/ are
/// never in scope; src/util/ is exempt from the rules whose sanctioned
/// alternative lives there (typed-errors, raw-sync: the typed error
/// hierarchy and the annotated mutex wrappers are in src/util/).
bool inScope(const std::string& id, const std::string& repoRelPath);

/// Normalizes an absolute path against the repo root: returns the
/// forward-slash repo-relative path, or "" when `path` is not under
/// `root`.  Handles "." and ".." segments textually (libclang reports
/// paths as spelled on the command line).
std::string repoRelative(const std::string& path, const std::string& root);

}  // namespace moloc::analyze
