#include "support/rules.hpp"

#include <algorithm>

namespace moloc::analyze {

namespace {

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool underAny(const std::string& path,
              std::initializer_list<const char*> prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const char* p) { return startsWith(path, p); });
}

}  // namespace

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      {"untrusted-alloc",
       "allocation sized by a decoded value with no dominating cap check",
       "checkpoint AP-count / motion-db `locations` allocation bombs "
       "(PR 5): a CRC-valid header sized terabyte buffers before the "
       "first entry was read"},
      {"typed-errors",
       "throw of bare std::runtime_error/invalid_argument/logic_error "
       "outside src/util/",
       "hostile wire values escaped molocd workers as untyped "
       "std::invalid_argument (PR 7) until retyped to ProtocolError"},
      {"raw-eintr",
       "interruptible syscall not wrapped in util::retryEintr "
       "(::close/::poll exempt)",
       "the molocd wake pipe and WAL appends surfaced SIGTERM-drain "
       "signals as spurious I/O failures (PR 7)"},
      {"narrowing-length",
       "implicit 64->32-bit integer conversion in framing/section "
       "arithmetic (use util::checkedU32)",
       "u32 length fields computed from size_t silently truncate past "
       "4 GiB and reframe as a different, CRC-valid message"},
      {"fp-determinism",
       "std::fma/__builtin_fma* or float ==/!= between computed values "
       "in the bitwise-identity TUs",
       "the AVX2 kernels are bitwise-identical to the reference "
       "formulas only because FMA contraction is banned "
       "(docs/performance.md); an fma call or exact-equality branch "
       "silently forks scalar and SIMD results"},
      {"raw-sync",
       "std::mutex/condition_variable/lock types outside src/util/",
       "locking the thread-safety analysis cannot see: both PR 5 races "
       "(motion-db internals, matcher cache) hid behind unannotated "
       "state"},
      {"naked-new",
       "any `new` expression",
       "ownership is unique_ptr/vector everywhere in this codebase; a "
       "naked new is a leak on the first exception path"},
      {"rand",
       "rand()/srand()",
       "shared-state, non-reproducible RNG; simulations are "
       "seed-deterministic through util::Rng streams (the loadgen "
       "verifies served estimates bitwise against a replay)"},
      {"cout",
       "std::cout/std::cerr in the library",
       "the serving stack reports through obs:: metrics and typed "
       "errors; stray stream writes are unsynchronized and invisible "
       "to operators"},
      {"bad-suppression",
       "lint:allow with a missing/unknown rule name or without a "
       "non-empty reason (emitted by the suppression scanner, not a "
       "cursor walk)",
       "an unexplained suppression is unreviewable and outlives the "
       "code it excused"},
  };
  return rules;
}

bool isKnownRule(const std::string& id) {
  const auto& rules = allRules();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

bool inScope(const std::string& id, const std::string& path) {
  if (!startsWith(path, "src/")) return false;
  const bool inUtil = startsWith(path, "src/util/");
  if (id == "typed-errors" || id == "raw-sync") return !inUtil;
  if (id == "raw-eintr")
    return underAny(path, {"src/store/", "src/net/", "src/image/"});
  if (id == "narrowing-length")
    return underAny(path, {"src/net/", "src/image/", "src/store/"});
  if (id == "fp-determinism")
    return underAny(path, {"src/kernel/", "src/index/", "src/radio/"});
  // untrusted-alloc, naked-new, rand, cout, bad-suppression: all of src/.
  return true;
}

std::string repoRelative(const std::string& path, const std::string& root) {
  // Split, resolve "."/"..", and rejoin with '/'.
  const auto split = [](const std::string& p) {
    std::vector<std::string> parts;
    std::string part;
    for (const char c : p) {
      if (c == '/') {
        if (part == "..") {
          if (!parts.empty()) parts.pop_back();
        } else if (!part.empty() && part != ".") {
          parts.push_back(part);
        }
        part.clear();
      } else {
        part += c;
      }
    }
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    return parts;
  };
  const std::vector<std::string> p = split(path);
  const std::vector<std::string> r = split(root);
  if (p.size() < r.size() ||
      !std::equal(r.begin(), r.end(), p.begin()))
    return "";
  std::string rel;
  for (std::size_t i = r.size(); i < p.size(); ++i) {
    if (!rel.empty()) rel += '/';
    rel += p[i];
  }
  return rel;
}

}  // namespace moloc::analyze
