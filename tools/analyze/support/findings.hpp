#pragma once

#include <string>
#include <vector>

namespace moloc::analyze {

/// One diagnostic from a rule: where, which rule, and what to do.
/// `file` is repo-relative with forward slashes (the scope policy and
/// the suppression scanner both key on it).
struct Finding {
  std::string file;
  unsigned line = 0;
  unsigned column = 0;
  std::string rule;
  std::string message;
};

/// Canonical ordering (file, line, column, rule) and duplicate
/// removal.  Headers are parsed once per including TU, so the same
/// header-line finding arrives many times; a finding is one
/// (file, line, rule) fact regardless of how many TUs saw it.
void sortAndDedupe(std::vector<Finding>& findings);

/// "src/net/wire.cpp:53:8: [untrusted-alloc] ..." — the same
/// file:line shape compilers use, so editors and CI annotations link.
std::string formatFinding(const Finding& finding);

}  // namespace moloc::analyze
