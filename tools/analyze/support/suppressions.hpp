#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace moloc::analyze {

/// The `// lint:allow(<rule>): <why>` contract, shared verbatim with
/// tools/lint.sh: a suppression lives on the same line as the finding
/// it silences, names exactly one rule, and carries a mandatory
/// non-empty reason after the colon.  A reason-less allow is itself
/// reported (rule `bad-suppression`) instead of silently honored —
/// an unexplained suppression is how dead suppressions accumulate.
struct MalformedSuppression {
  unsigned line = 0;
  std::string detail;
};

class SuppressionSet {
 public:
  /// True when `line` carries a lint:allow for `rule` (with a reason).
  bool allows(unsigned line, const std::string& rule) const;

  /// Every well-formed (line, rule) pair, for unused-suppression
  /// audits.
  const std::map<unsigned, std::set<std::string>>& entries() const {
    return entries_;
  }

  const std::vector<MalformedSuppression>& malformed() const {
    return malformed_;
  }

 private:
  friend SuppressionSet scanSuppressions(std::string_view text);
  std::map<unsigned, std::set<std::string>> entries_;
  std::vector<MalformedSuppression> malformed_;
};

/// Scans a whole file's text (lines are 1-based, matching libclang
/// locations).
SuppressionSet scanSuppressions(std::string_view text);

}  // namespace moloc::analyze
