#include "support/suppressions.hpp"

#include "support/rules.hpp"

namespace moloc::analyze {

namespace {

constexpr std::string_view kMarker = "lint:allow(";

bool isRuleChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/// Parses every lint:allow occurrence on one line.  The marker must
/// sit in a `//` comment — `lint:allow` inside a string literal is
/// prose, not a suppression (this is the AST-era fix for the grep
/// rules' comment-stripping heuristic: we only honor the marker after
/// the first `//` on the line).
void scanLine(std::string_view line, unsigned lineNo,
              std::map<unsigned, std::set<std::string>>& entries,
              std::vector<MalformedSuppression>& malformed) {
  const std::size_t comment = line.find("//");
  if (comment == std::string_view::npos) return;
  std::string_view tail = line.substr(comment);
  std::size_t at = 0;
  while ((at = tail.find(kMarker, at)) != std::string_view::npos) {
    std::size_t pos = at + kMarker.size();
    at = pos;
    std::string rule;
    while (pos < tail.size() && isRuleChar(tail[pos])) rule += tail[pos++];
    if (rule.empty() || pos >= tail.size() || tail[pos] != ')') {
      malformed.push_back(
          {lineNo, "lint:allow with a malformed rule name"});
      continue;
    }
    ++pos;  // ')'
    // Mandatory ": <reason>".
    if (pos >= tail.size() || tail[pos] != ':') {
      malformed.push_back(
          {lineNo, "lint:allow(" + rule + ") without a ': <reason>'"});
      continue;
    }
    ++pos;
    while (pos < tail.size() && (tail[pos] == ' ' || tail[pos] == '\t'))
      ++pos;
    if (pos >= tail.size()) {
      malformed.push_back(
          {lineNo, "lint:allow(" + rule + ") with an empty reason"});
      continue;
    }
    // A typo'd rule id would otherwise suppress nothing, silently.
    if (!isKnownRule(rule)) {
      malformed.push_back(
          {lineNo, "lint:allow(" + rule + ") names an unknown rule"});
      continue;
    }
    entries[lineNo].insert(rule);
  }
}

}  // namespace

bool SuppressionSet::allows(unsigned line, const std::string& rule) const {
  const auto it = entries_.find(line);
  return it != entries_.end() && it->second.count(rule) != 0;
}

SuppressionSet scanSuppressions(std::string_view text) {
  SuppressionSet set;
  unsigned lineNo = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    scanLine(text.substr(start, end - start), lineNo, set.entries_,
             set.malformed_);
    start = end + 1;
    ++lineNo;
  }
  return set;
}

}  // namespace moloc::analyze
