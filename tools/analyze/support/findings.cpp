#include "support/findings.hpp"

#include <algorithm>
#include <tuple>

namespace moloc::analyze {

void sortAndDedupe(std::vector<Finding>& findings) {
  const auto key = [](const Finding& f) {
    return std::tie(f.file, f.line, f.column, f.rule);
  };
  std::sort(findings.begin(), findings.end(),
            [&](const Finding& a, const Finding& b) {
              return key(a) < key(b);
            });
  findings.erase(
      std::unique(findings.begin(), findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule;
                  }),
      findings.end());
}

std::string formatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ":" +
         std::to_string(finding.column) + ": [" + finding.rule + "] " +
         finding.message;
}

}  // namespace moloc::analyze
