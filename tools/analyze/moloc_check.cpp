// moloc_check: the repo's bug history as compile-time gates.
//
//   moloc_check -p build --repo-root . --fail-on-findings
//
// Loads compile_commands.json, parses every src/ translation unit
// with libclang, and enforces the project rules (see --list-rules or
// docs/static_analysis.md).  Findings print as
//   <file>:<line>:<col>: [<rule>] <message>
// and are silenced line-by-line with `// lint:allow(<rule>): <why>` —
// the same contract tools/lint.sh uses.
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "support/rules.hpp"

namespace {

int usage(const char* argv0, int exitCode) {
  std::ostream& out = exitCode == 0 ? std::cout : std::cerr;
  out << "usage: " << argv0
      << " [-p <dir>] [--repo-root <dir>] [--fail-on-findings]\n"
         "       [--only <repo-relative-file>]... [--extra-arg <arg>]...\n"
         "       [--list-rules]\n"
         "\n"
         "  -p <dir>            directory with compile_commands.json "
         "(default: build)\n"
         "  --repo-root <dir>   repository root (default: .)\n"
         "  --fail-on-findings  exit 1 when any finding is reported\n"
         "  --only <file>       analyze only this src/ TU (repeatable)\n"
         "  --extra-arg <arg>   extra compiler arg appended to every TU\n"
         "  --list-rules        print the rule catalog and exit\n";
  return exitCode;
}

void listRules() {
  for (const moloc::analyze::RuleInfo& rule : moloc::analyze::allRules()) {
    std::cout << rule.id << "\n    bans:   " << rule.summary
              << "\n    guards: " << rule.guards << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  moloc::analyze::AnalyzeOptions options;
  options.compileDbDir = "build";
  options.repoRoot = ".";
  bool failOnFindings = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-rules") {
      listRules();
      return 0;
    } else if (arg == "--fail-on-findings") {
      failOnFindings = true;
    } else if (arg == "-p") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.compileDbDir = v;
    } else if (arg == "--repo-root") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.repoRoot = v;
    } else if (arg == "--only") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.onlyFiles.push_back(v);
    } else if (arg == "--extra-arg") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.extraArgs.push_back(v);
    } else if (arg == "-h" || arg == "--help") {
      return usage(argv[0], 0);
    } else {
      std::cerr << argv[0] << ": unknown argument '" << arg << "'\n";
      return usage(argv[0], 2);
    }
  }

  // The repo root must be absolute for path normalization against the
  // absolute paths libclang reports.
  if (options.repoRoot.empty() || options.repoRoot[0] != '/') {
    std::vector<char> cwd(4096);
    if (getcwd(cwd.data(), cwd.size()) == nullptr) {
      std::cerr << argv[0] << ": cannot resolve cwd\n";
      return 2;
    }
    std::string abs = cwd.data();
    if (options.repoRoot != "." && !options.repoRoot.empty())
      abs += "/" + options.repoRoot;
    options.repoRoot = abs;
  }

  const moloc::analyze::AnalyzeResult result =
      moloc::analyze::runAnalysis(options);

  for (const moloc::analyze::Finding& finding : result.findings)
    std::cout << moloc::analyze::formatFinding(finding) << "\n";
  for (const std::string& error : result.errors)
    std::cerr << argv[0] << ": error: " << error << "\n";

  std::cerr << argv[0] << ": " << result.findings.size() << " finding(s) in "
            << result.translationUnits << " translation unit(s)\n";

  if (!result.errors.empty()) return 2;
  if (failOnFindings && !result.findings.empty()) return 1;
  return 0;
}
