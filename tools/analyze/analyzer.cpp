// moloc_check AST walker: every check lives here, on libclang's
// *stable C API* (clang-c/Index.h) so one binary builds against any
// distro libclang >= 14 without chasing the C++ API across releases.
//
// LLVM-14 compatibility notes (the oldest line we support):
//  - clang_getCursorBinaryOperatorKind is LLVM 17+; binary operators
//    are classified by tokenizing the gap between the two operand
//    extents instead (binaryOperatorToken below).
//  - libclang collapses CXXMemberCallExpr / CXXOperatorCallExpr /
//    CXXConstructExpr into CXCursor_CallExpr; the callee name is the
//    cursor spelling and the implicit object argument is excluded
//    from clang_Cursor_getArgument.
#include "analyzer.hpp"

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/rules.hpp"
#include "support/suppressions.hpp"

namespace moloc::analyze {

namespace {

std::string toString(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

std::string cursorSpelling(CXCursor c) {
  return toString(clang_getCursorSpelling(c));
}

// ---------------------------------------------------------------------
// Generic traversal helpers
// ---------------------------------------------------------------------

std::vector<CXCursor> childrenOf(CXCursor cursor) {
  std::vector<CXCursor> out;
  clang_visitChildren(
      cursor,
      [](CXCursor c, CXCursor, CXClientData data) {
        static_cast<std::vector<CXCursor>*>(data)->push_back(c);
        return CXChildVisit_Continue;
      },
      &out);
  return out;
}

/// Depth-first walk of a whole subtree; `fn` returns false to prune
/// the subtree below the current node.
template <typename Fn>
void forEachDescendant(CXCursor root, Fn&& fn) {
  for (const CXCursor child : childrenOf(root)) {
    if (fn(child)) forEachDescendant(child, fn);
  }
}

/// Strips parens and libclang's opaque wrapper nodes (implicit casts
/// surface as CXCursor_UnexposedExpr with a single child).
CXCursor unwrapExpr(CXCursor cursor) {
  for (;;) {
    const CXCursorKind kind = clang_getCursorKind(cursor);
    if (kind != CXCursor_UnexposedExpr && kind != CXCursor_ParenExpr)
      return cursor;
    const std::vector<CXCursor> kids = childrenOf(cursor);
    if (kids.size() != 1) return cursor;
    cursor = kids[0];
  }
}

bool isIntegerKind(CXTypeKind kind) {
  switch (kind) {
    case CXType_Char_U:
    case CXType_UChar:
    case CXType_UShort:
    case CXType_UInt:
    case CXType_ULong:
    case CXType_ULongLong:
    case CXType_Char_S:
    case CXType_SChar:
    case CXType_Short:
    case CXType_Int:
    case CXType_Long:
    case CXType_LongLong:
      return true;
    default:
      return false;  // bool, enums, and char16/32 stay out on purpose
  }
}

/// Canonical type of an expression/declaration cursor, with
/// references stripped: a DeclRefExpr to a `std::uint32_t&` variable
/// reports the reference type, but for conversion checks the
/// referred-to integer is what matters.
CXType canonicalType(CXCursor cursor) {
  CXType type = clang_getCanonicalType(clang_getCursorType(cursor));
  if (type.kind == CXType_LValueReference ||
      type.kind == CXType_RValueReference)
    type = clang_getCanonicalType(clang_getPointeeType(type));
  return type;
}

long long intSizeOf(CXType type) { return clang_Type_getSizeOf(type); }

/// True when libclang can fold the expression to an integer at compile
/// time (literals, sizeof, k-constants): a constant length cannot be
/// attacker-controlled and cannot truncate at runtime.
bool isConstantExpr(CXCursor expr) {
  CXEvalResult result = clang_Cursor_Evaluate(expr);
  if (result == nullptr) return false;
  const CXEvalResultKind kind = clang_EvalResult_getKind(result);
  clang_EvalResult_dispose(result);
  return kind == CXEval_Int;
}

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// `verb` followed by an uppercase letter, digit, underscore, or end
/// of string: readU32 / decodeSnapshot / load yes, readings no.
bool hasVerbPrefix(const std::string& name, const char* verb) {
  if (!startsWith(name, verb)) return false;
  const std::size_t at = std::strlen(verb);
  if (at == name.size()) return true;
  const char next = name[at];
  return (next >= 'A' && next <= 'Z') || (next >= '0' && next <= '9') ||
         next == '_';
}

// ---------------------------------------------------------------------
// Per-TU context: file identity, suppressions, reporting
// ---------------------------------------------------------------------

struct FileInfo {
  std::string absPath;
  std::string repoRel;  // "" when outside the repo
  SuppressionSet suppressions;
  bool suppressionsLoaded = false;
  bool malformedReported = false;
};

struct TuContext {
  const AnalyzeOptions* options = nullptr;
  CXTranslationUnit tu = nullptr;
  std::vector<Finding>* findings = nullptr;
  // Keyed by the CXFile handle, which is stable within one TU.
  std::map<const void*, FileInfo> files;
};

FileInfo& fileInfo(TuContext& ctx, CXFile file) {
  const auto it = ctx.files.find(file);
  if (it != ctx.files.end()) return it->second;
  FileInfo info;
  info.absPath = toString(clang_File_tryGetRealPathName(file));
  if (info.absPath.empty()) info.absPath = toString(clang_getFileName(file));
  info.repoRel = repoRelative(info.absPath, ctx.options->repoRoot);
  return ctx.files.emplace(file, std::move(info)).first->second;
}

void loadSuppressions(TuContext& ctx, CXFile file, FileInfo& info) {
  if (info.suppressionsLoaded) return;
  info.suppressionsLoaded = true;
  std::size_t size = 0;
  const char* contents = clang_getFileContents(ctx.tu, file, &size);
  if (contents != nullptr) {
    info.suppressions = scanSuppressions(std::string_view(contents, size));
    return;
  }
  std::ifstream in(info.absPath, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  info.suppressions = scanSuppressions(text);
}

/// A malformed `lint:allow` is itself a finding; reported once per
/// file, independent of whether any rule fired there.
void reportMalformed(TuContext& ctx, CXFile file) {
  FileInfo& info = fileInfo(ctx, file);
  if (info.repoRel.empty() || !startsWith(info.repoRel, "src/")) return;
  loadSuppressions(ctx, file, info);
  if (info.malformedReported) return;
  info.malformedReported = true;
  for (const MalformedSuppression& m : info.suppressions.malformed()) {
    ctx.findings->push_back(
        {info.repoRel, m.line, 1, "bad-suppression", m.detail});
  }
}

void report(TuContext& ctx, CXCursor cursor, const char* rule,
            std::string message) {
  const CXSourceLocation loc = clang_getCursorLocation(cursor);
  CXFile file = nullptr;
  unsigned line = 0;
  unsigned column = 0;
  clang_getExpansionLocation(loc, &file, &line, &column, nullptr);
  if (file == nullptr) return;
  FileInfo& info = fileInfo(ctx, file);
  if (info.repoRel.empty() || !inScope(rule, info.repoRel)) return;
  loadSuppressions(ctx, file, info);
  if (info.suppressions.allows(line, rule)) return;
  ctx.findings->push_back(
      {info.repoRel, line, column, rule, std::move(message)});
}

/// True when `rule` could apply at this cursor's file — lets checks
/// skip expensive analysis outside their directory scope.
bool cursorInScope(TuContext& ctx, CXCursor cursor, const char* rule) {
  const CXSourceLocation loc = clang_getCursorLocation(cursor);
  CXFile file = nullptr;
  clang_getExpansionLocation(loc, &file, nullptr, nullptr, nullptr);
  if (file == nullptr) return false;
  const FileInfo& info = fileInfo(ctx, file);
  return !info.repoRel.empty() && inScope(rule, info.repoRel);
}

unsigned lineOf(CXCursor cursor) {
  unsigned line = 0;
  clang_getExpansionLocation(clang_getCursorLocation(cursor), nullptr, &line,
                             nullptr, nullptr);
  return line;
}

// ---------------------------------------------------------------------
// Walk state
// ---------------------------------------------------------------------

struct WalkState {
  /// > 0 while inside the argument subtree of a util::retryEintr call;
  /// raw interruptible syscalls are sanctioned there and only there.
  unsigned retryWrapDepth = 0;
  /// Nearest enclosing *named* function/method — the guard-search and
  /// taint-context scope for untrusted-alloc.  Lambdas do not reset it
  /// (a guard above the lambda still dominates an alloc inside it).
  CXCursor namedFunction = clang_getNullCursor();
  std::string namedFunctionName;
  /// Nearest function-like scope of any kind, for return-type checks.
  CXCursor returnScope = clang_getNullCursor();
};

// ---------------------------------------------------------------------
// typed-errors
// ---------------------------------------------------------------------

void checkThrow(TuContext& ctx, CXCursor throwExpr) {
  const std::vector<CXCursor> kids = childrenOf(throwExpr);
  if (kids.empty()) return;  // rethrow: `throw;`
  const std::string type =
      toString(clang_getTypeSpelling(canonicalType(kids[0])));
  static const char* kBare[] = {"std::runtime_error", "std::invalid_argument",
                                "std::logic_error"};
  for (const char* bare : kBare) {
    if (type == bare) {
      report(ctx, throwExpr, "typed-errors",
             "throw the util:: error type for this failure domain instead "
             "of bare " +
                 type + " (src/util/error.hpp)");
      return;
    }
  }
}

// ---------------------------------------------------------------------
// raw-sync
// ---------------------------------------------------------------------

void checkRawSync(TuContext& ctx, CXCursor decl) {
  const std::string type =
      toString(clang_getTypeSpelling(canonicalType(decl)));
  static const char* kBanned[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::shared_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::shared_lock",    "std::scoped_lock"};
  for (const char* banned : kBanned) {
    if (!startsWith(type, banned)) continue;
    const std::size_t at = std::strlen(banned);
    const char next = at < type.size() ? type[at] : '\0';
    if (next == '\0' || next == '<' || next == ' ' || next == '&' ||
        next == '*') {
      report(ctx, decl, "raw-sync",
             "use the TSA-annotated util::Mutex / util::ConditionVariable "
             "wrappers instead of " +
                 type);
      return;
    }
  }
}

// ---------------------------------------------------------------------
// narrowing-length
// ---------------------------------------------------------------------

bool isNarrowing(CXType target, CXCursor valueExpr) {
  const CXType value = canonicalType(valueExpr);
  if (!isIntegerKind(target.kind) || !isIntegerKind(value.kind)) return false;
  if (intSizeOf(value) != 8 || intSizeOf(target) > 4) return false;
  return !isConstantExpr(valueExpr);
}

std::string narrowingMessage(CXType target, const std::string& context) {
  return "implicit 64-bit -> " +
         std::to_string(intSizeOf(target) * 8) + "-bit conversion " +
         context + "; route lengths through util::checkedU32/checkedI32 " +
         "(src/util/checked_cast.hpp) or cast explicitly after a cap check";
}

void checkNarrowingCallArgs(TuContext& ctx, CXCursor call, CXCursor callee,
                            const std::string& calleeName) {
  if (startsWith(calleeName, "checked")) return;  // the sanctioned helpers
  const CXType fnType = clang_getCursorType(callee);
  const int nParams = clang_getNumArgTypes(fnType);
  const int nArgs = clang_Cursor_getNumArguments(call);
  if (nParams <= 0 || nArgs <= 0) return;
  const int n = std::min(nParams, nArgs);
  for (int i = 0; i < n; ++i) {
    const CXType param =
        clang_getCanonicalType(clang_getArgType(fnType, i));
    const CXCursor arg = clang_Cursor_getArgument(call, i);
    if (isNarrowing(param, arg)) {
      report(ctx, arg, "narrowing-length",
             narrowingMessage(param, "in argument " + std::to_string(i + 1) +
                                         " of " + calleeName + "()"));
    }
  }
}

void checkNarrowingVarInit(TuContext& ctx, CXCursor varDecl) {
  const CXType target = canonicalType(varDecl);
  if (!isIntegerKind(target.kind) || intSizeOf(target) > 4) return;
  const std::vector<CXCursor> kids = childrenOf(varDecl);
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    if (clang_isExpression(clang_getCursorKind(*it)) == 0) continue;
    if (isNarrowing(target, *it)) {
      report(ctx, *it, "narrowing-length",
             narrowingMessage(target, "initializing '" +
                                          cursorSpelling(varDecl) + "'"));
    }
    return;  // only the (last) initializer expression
  }
}

void checkNarrowingReturn(TuContext& ctx, CXCursor returnStmt,
                          const WalkState& state) {
  if (clang_Cursor_isNull(state.returnScope)) return;
  const CXType target = clang_getCanonicalType(
      clang_getCursorResultType(state.returnScope));
  if (!isIntegerKind(target.kind) || intSizeOf(target) > 4) return;
  const std::vector<CXCursor> kids = childrenOf(returnStmt);
  if (kids.empty()) return;
  if (isNarrowing(target, kids[0])) {
    report(ctx, kids[0], "narrowing-length",
           narrowingMessage(target, "in return"));
  }
}

// ---------------------------------------------------------------------
// fp-determinism
// ---------------------------------------------------------------------

bool isFloatKind(CXTypeKind kind) {
  return kind == CXType_Float || kind == CXType_Double ||
         kind == CXType_LongDouble;
}

unsigned offsetOf(CXSourceLocation loc) {
  unsigned offset = 0;
  clang_getExpansionLocation(loc, nullptr, nullptr, nullptr, &offset);
  return offset;
}

/// The operator token of a binary expression: the first punctuation
/// token strictly between the two operand extents.  (The C API only
/// grew clang_getCursorBinaryOperatorKind in LLVM 17.)
std::string binaryOperatorToken(CXTranslationUnit tu, CXCursor op,
                                CXCursor lhs, CXCursor rhs) {
  const unsigned lhsEnd = offsetOf(clang_getRangeEnd(clang_getCursorExtent(lhs)));
  const unsigned rhsStart =
      offsetOf(clang_getRangeStart(clang_getCursorExtent(rhs)));
  if (lhsEnd >= rhsStart) return "";  // macro-mangled extents: punt
  CXToken* tokens = nullptr;
  unsigned count = 0;
  clang_tokenize(tu, clang_getCursorExtent(op), &tokens, &count);
  std::string result;
  for (unsigned i = 0; i < count; ++i) {
    const unsigned at = offsetOf(clang_getTokenLocation(tu, tokens[i]));
    if (at < lhsEnd || at >= rhsStart) continue;
    if (clang_getTokenKind(tokens[i]) == CXToken_Punctuation) {
      result = toString(clang_getTokenSpelling(tu, tokens[i]));
      break;
    }
  }
  clang_disposeTokens(tu, tokens, count);
  return result;
}

bool isNumericLiteral(CXCursor expr) {
  const CXCursorKind kind = clang_getCursorKind(unwrapExpr(expr));
  return kind == CXCursor_FloatingLiteral || kind == CXCursor_IntegerLiteral;
}

void checkFloatCompare(TuContext& ctx, CXCursor binOp) {
  if (!cursorInScope(ctx, binOp, "fp-determinism")) return;
  const std::vector<CXCursor> kids = childrenOf(binOp);
  if (kids.size() != 2) return;
  if (!isFloatKind(canonicalType(kids[0]).kind) &&
      !isFloatKind(canonicalType(kids[1]).kind))
    return;
  // A comparison against a literal is a sentinel test, not a
  // computed-value identity check.
  if (isNumericLiteral(kids[0]) || isNumericLiteral(kids[1])) return;
  const std::string op = binaryOperatorToken(ctx.tu, binOp, kids[0], kids[1]);
  if (op != "==" && op != "!=") return;
  report(ctx, binOp, "fp-determinism",
         "floating-point '" + op +
             "' between computed values: the scalar and AVX2 kernels are "
             "bitwise-identical only while results never branch on exact "
             "equality (docs/performance.md)");
}

// ---------------------------------------------------------------------
// untrusted-alloc
// ---------------------------------------------------------------------

bool isTaintSourceName(const std::string& name) {
  return hasVerbPrefix(name, "get") || hasVerbPrefix(name, "read") ||
         hasVerbPrefix(name, "decode") || hasVerbPrefix(name, "parse") ||
         hasVerbPrefix(name, "load") || name == "get" || name == "read" ||
         name == "decode" || name == "parse" || name == "load";
}

bool isGuardName(const std::string& name) {
  return startsWith(name, "check") || startsWith(name, "expect") ||
         startsWith(name, "validate") || startsWith(name, "clamp") ||
         name == "min" || name == "mulFits";
}

bool isParseContextName(const std::string& name) {
  return isTaintSourceName(name);  // load/read/decode/parse + CamelCase
}

bool containsCallMatching(CXCursor root, bool (*pred)(const std::string&)) {
  bool found = false;
  forEachDescendant(root, [&](CXCursor c) {
    if (found) return false;
    if (clang_getCursorKind(c) == CXCursor_CallExpr &&
        pred(cursorSpelling(c)))
      found = true;
    return !found;
  });
  return found;
}

bool containsAnyCall(CXCursor root) {
  bool found = false;
  forEachDescendant(root, [&](CXCursor c) {
    if (found) return false;
    if (clang_getCursorKind(c) == CXCursor_CallExpr) found = true;
    return !found;
  });
  return found;
}

/// First variable (local, param, member base) the size expression
/// reads — the "primary" variable the cap check must mention.
CXCursor primaryVariable(CXCursor sizeExpr) {
  CXCursor result = clang_getNullCursor();
  const auto consider = [&](CXCursor c) {
    if (!clang_Cursor_isNull(result)) return false;
    if (clang_getCursorKind(c) == CXCursor_DeclRefExpr) {
      const CXCursor ref = clang_getCursorReferenced(c);
      const CXCursorKind k = clang_getCursorKind(ref);
      if (k == CXCursor_VarDecl || k == CXCursor_ParmDecl)
        result = clang_getCanonicalCursor(ref);
    }
    return clang_Cursor_isNull(result) != 0;
  };
  consider(sizeExpr);
  if (clang_Cursor_isNull(result)) forEachDescendant(sizeExpr, consider);
  return result;
}

bool referencesDecl(CXCursor root, CXCursor decl) {
  bool found = false;
  const auto consider = [&](CXCursor c) {
    if (found) return false;
    if (clang_getCursorKind(c) == CXCursor_DeclRefExpr &&
        clang_equalCursors(
            clang_getCanonicalCursor(clang_getCursorReferenced(c)), decl))
      found = true;
    return !found;
  };
  consider(root);
  if (!found) forEachDescendant(root, consider);
  return found;
}

/// The definition's initializer expression, or null.
CXCursor initializerOf(CXCursor varDecl) {
  const CXCursor def = clang_getCursorDefinition(varDecl);
  const CXCursor home = clang_Cursor_isNull(def) ? varDecl : def;
  const std::vector<CXCursor> kids = childrenOf(home);
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    if (clang_isExpression(clang_getCursorKind(*it)) != 0) return *it;
  }
  return clang_getNullCursor();
}

/// Cap-dominance: does anything *before* the allocation line, inside
/// the enclosing named function, bound the primary variable?
/// Recognized dominators (each grounded in a real guard in this tree):
///  1. the variable's own initializer calls a check*/expect*/...
///     helper (checkpoint.cpp: `pairCount = checkedCount(in, ...)`)
///  2. an earlier IfStmt whose condition mentions the variable
///     (trace_io.cpp: `if (count > kMaxTraceCount) throw ...`)
///  3. an earlier guard-named call taking the variable as an argument
///     (wire.cpp: `checkCount(cursor, apCount, 8)`)
bool capDominates(CXCursor function, CXCursor var, unsigned allocLine) {
  if (!clang_Cursor_isNull(var)) {
    const CXCursor init = initializerOf(var);
    if (!clang_Cursor_isNull(init) &&
        containsCallMatching(init, isGuardName))
      return true;
  }
  bool dominated = false;
  forEachDescendant(function, [&](CXCursor c) {
    if (dominated) return false;
    const CXCursorKind kind = clang_getCursorKind(c);
    if (kind == CXCursor_IfStmt && !clang_Cursor_isNull(var)) {
      const std::vector<CXCursor> kids = childrenOf(c);
      if (!kids.empty() && lineOf(c) <= allocLine &&
          referencesDecl(kids[0], var))
        dominated = true;
    } else if (kind == CXCursor_CallExpr && lineOf(c) <= allocLine &&
               isGuardName(cursorSpelling(c))) {
      if (clang_Cursor_isNull(var) || referencesDecl(c, var))
        dominated = true;
    }
    return !dominated;
  });
  return dominated;
}

void checkUntrustedAlloc(TuContext& ctx, const WalkState& state,
                         CXCursor allocCursor, CXCursor sizeExpr,
                         const std::string& what) {
  if (!cursorInScope(ctx, allocCursor, "untrusted-alloc")) return;
  if (clang_Cursor_isNull(state.namedFunction)) return;
  if (isConstantExpr(sizeExpr)) return;
  const CXCursor var = primaryVariable(sizeExpr);

  bool suspect = containsCallMatching(sizeExpr, isTaintSourceName);
  if (!suspect && !clang_Cursor_isNull(var)) {
    const CXCursor init = initializerOf(var);
    if (!clang_Cursor_isNull(init))
      suspect = containsCallMatching(init, isTaintSourceName);
  }
  if (!suspect && isParseContextName(state.namedFunctionName) &&
      !clang_Cursor_isNull(var) && !containsAnyCall(sizeExpr))
    suspect = true;
  if (!suspect) return;

  if (capDominates(state.namedFunction, var, lineOf(allocCursor))) return;
  const std::string varName =
      clang_Cursor_isNull(var) ? std::string("the decoded size")
                               : "'" + cursorSpelling(var) + "'";
  report(ctx, allocCursor, "untrusted-alloc",
         what + " sized by " + varName +
             ", which comes from decoded input with no dominating cap "
             "check; compare against a k*Max limit (or a remaining-bytes "
             "bound) before allocating");
}

// ---------------------------------------------------------------------
// Call dispatch
// ---------------------------------------------------------------------

const char* interruptibleSyscall(const std::string& name) {
  static const char* kCalls[] = {
      "read",  "write",    "fsync",   "fdatasync", "recv",   "recvmsg",
      "send",  "sendmsg",  "accept",  "accept4",   "open",   "openat",
      "truncate", "ftruncate", "pread", "pwrite",  "connect"};
  for (const char* c : kCalls) {
    if (name == c) return c;
  }
  return nullptr;  // ::close and ::poll are deliberately exempt
}

bool isFmaName(const std::string& name) {
  return name == "fma" || name == "fmaf" || name == "fmal" ||
         name == "__builtin_fma" || name == "__builtin_fmaf" ||
         name == "__builtin_fmal";
}

/// Handles one CallExpr.  Returns true when the walker should recurse
/// into the call's children with retryWrapDepth incremented.
bool handleCall(TuContext& ctx, const WalkState& state, CXCursor call) {
  const std::string name = cursorSpelling(call);
  if (name == "retryEintr") return true;

  const CXCursor callee = clang_getCursorReferenced(call);
  const bool calleeValid = !clang_Cursor_isNull(callee) &&
                           clang_isInvalid(clang_getCursorKind(callee)) == 0;
  const bool calleeInSystemHeader =
      calleeValid &&
      clang_Location_isInSystemHeader(clang_getCursorLocation(callee)) != 0;

  if ((name == "rand" || name == "srand") &&
      (!calleeValid || calleeInSystemHeader)) {
    report(ctx, call, "rand",
           name + "() is shared-state and non-reproducible; draw from a "
                  "util::Rng stream (simulations are seed-deterministic)");
  }

  if (isFmaName(name)) {
    report(ctx, call, "fp-determinism",
           name + "() contracts mul+add and forks the scalar and SIMD "
                  "kernels' bitwise results (docs/performance.md bans FMA "
                  "in these TUs)");
  }

  if (const char* syscall = interruptibleSyscall(name);
      syscall != nullptr && state.retryWrapDepth == 0 && calleeValid &&
      clang_getCursorKind(callee) == CXCursor_FunctionDecl &&
      calleeInSystemHeader) {
    report(ctx, call, "raw-eintr",
           std::string("::") + syscall +
               " can fail with EINTR on any signal; wrap the call in "
               "util::retryEintr (src/util/retry_eintr.hpp)");
  }

  if ((name == "resize" || name == "reserve") &&
      clang_Cursor_getNumArguments(call) >= 1) {
    checkUntrustedAlloc(ctx, state, call, clang_Cursor_getArgument(call, 0),
                        "container " + name + "()");
  }
  if (name == "vector" && clang_Cursor_getNumArguments(call) >= 1) {
    const CXCursor arg0 = clang_Cursor_getArgument(call, 0);
    if (isIntegerKind(canonicalType(arg0).kind))
      checkUntrustedAlloc(ctx, state, call, arg0, "vector size-constructor");
  }

  if (calleeValid && !name.empty() &&
      cursorInScope(ctx, call, "narrowing-length")) {
    const CXCursorKind ck = clang_getCursorKind(callee);
    if (ck == CXCursor_FunctionDecl || ck == CXCursor_CXXMethod ||
        ck == CXCursor_Constructor || ck == CXCursor_FunctionTemplate)
      checkNarrowingCallArgs(ctx, call, callee, name);
  }
  return false;
}

// ---------------------------------------------------------------------
// The walker
// ---------------------------------------------------------------------

struct Frame {
  TuContext* ctx;
  WalkState state;
};

void walkChildren(TuContext& ctx, CXCursor cursor, const WalkState& state);

void handleCursor(TuContext& ctx, CXCursor cursor, WalkState state) {
  // Nothing of ours lives below a system-header cursor; pruning here
  // keeps the walk linear in the size of src/, not of <vector>.
  if (clang_Location_isInSystemHeader(clang_getCursorLocation(cursor)) != 0)
    return;

  const CXCursorKind kind = clang_getCursorKind(cursor);
  switch (kind) {
    case CXCursor_FunctionDecl:
    case CXCursor_CXXMethod:
    case CXCursor_Constructor:
    case CXCursor_Destructor:
    case CXCursor_ConversionFunction:
    case CXCursor_FunctionTemplate:
      state.namedFunction = cursor;
      state.namedFunctionName = cursorSpelling(cursor);
      state.returnScope = cursor;
      break;
    case CXCursor_LambdaExpr:
      // Keep namedFunction: guards above the lambda still dominate.
      state.returnScope = cursor;
      break;
    case CXCursor_CallExpr:
      if (handleCall(ctx, state, cursor)) {
        ++state.retryWrapDepth;
      }
      break;
    case CXCursor_CXXThrowExpr:
      checkThrow(ctx, cursor);
      break;
    case CXCursor_CXXNewExpr: {
      report(ctx, cursor, "naked-new",
             "naked new: ownership in this tree is unique_ptr/vector; a "
             "bare allocation leaks on the first exception path");
      for (const CXCursor child : childrenOf(cursor)) {
        if (clang_isExpression(clang_getCursorKind(child)) != 0 &&
            isIntegerKind(canonicalType(child).kind)) {
          checkUntrustedAlloc(ctx, state, cursor, child, "new[] array");
          break;
        }
      }
      break;
    }
    case CXCursor_VarDecl:
    case CXCursor_FieldDecl:
    case CXCursor_ParmDecl:
      checkRawSync(ctx, cursor);
      if (kind == CXCursor_VarDecl &&
          cursorInScope(ctx, cursor, "narrowing-length"))
        checkNarrowingVarInit(ctx, cursor);
      break;
    case CXCursor_DeclRefExpr: {
      const std::string name = cursorSpelling(cursor);
      if (name == "cout" || name == "cerr") {
        const CXCursor ref = clang_getCursorReferenced(cursor);
        const CXCursor parent = clang_getCursorSemanticParent(ref);
        if (clang_getCursorKind(parent) == CXCursor_Namespace &&
            cursorSpelling(parent) == "std") {
          report(ctx, cursor, "cout",
                 "std::" + name +
                     " in library code: report through obs:: metrics or a "
                     "typed error; streams are for tools/ binaries");
        }
      }
      break;
    }
    case CXCursor_ReturnStmt:
      if (cursorInScope(ctx, cursor, "narrowing-length"))
        checkNarrowingReturn(ctx, cursor, state);
      break;
    case CXCursor_BinaryOperator:
      checkFloatCompare(ctx, cursor);
      break;
    case CXCursor_CompoundAssignOperator:
      if (cursorInScope(ctx, cursor, "narrowing-length")) {
        const std::vector<CXCursor> kids = childrenOf(cursor);
        if (kids.size() == 2 && isNarrowing(canonicalType(kids[0]), kids[1]))
          report(ctx, kids[1], "narrowing-length",
                 narrowingMessage(canonicalType(kids[0]),
                                  "in compound assignment"));
      }
      break;
    default:
      break;
  }

  if (kind == CXCursor_BinaryOperator &&
      cursorInScope(ctx, cursor, "narrowing-length")) {
    const std::vector<CXCursor> kids = childrenOf(cursor);
    if (kids.size() == 2 && isNarrowing(canonicalType(kids[0]), kids[1]) &&
        binaryOperatorToken(ctx.tu, cursor, kids[0], kids[1]) == "=") {
      report(ctx, kids[1], "narrowing-length",
             narrowingMessage(canonicalType(kids[0]), "in assignment"));
    }
  }

  walkChildren(ctx, cursor, state);
}

void walkChildren(TuContext& ctx, CXCursor cursor, const WalkState& state) {
  Frame frame{&ctx, state};
  clang_visitChildren(
      cursor,
      [](CXCursor c, CXCursor, CXClientData data) {
        Frame* f = static_cast<Frame*>(data);
        handleCursor(*f->ctx, c, f->state);
        return CXChildVisit_Continue;
      },
      &frame);
}

// ---------------------------------------------------------------------
// TU orchestration
// ---------------------------------------------------------------------

std::string joinPath(const std::string& dir, const std::string& file) {
  if (!file.empty() && file[0] == '/') return file;
  return dir + "/" + file;
}

void analyzeTu(TuContext& ctx, CXIndex index, CXCompileCommand command,
               AnalyzeResult& result) {
  const std::string dir = toString(clang_CompileCommand_getDirectory(command));
  const std::string file = toString(clang_CompileCommand_getFilename(command));
  const std::string absFile = joinPath(dir, file);

  std::vector<std::string> args;
  const unsigned n = clang_CompileCommand_getNumArgs(command);
  for (unsigned i = 1; i < n; ++i) {  // [0] is the compiler itself
    std::string arg = toString(clang_CompileCommand_getArg(command, i));
    if (arg == "-c") continue;
    if (arg == "-o") {
      ++i;
      continue;
    }
    // libclang resolves relative paths against the *process* cwd, not
    // the command's directory — absolutize the source arg.
    if (arg == file) arg = absFile;
    args.push_back(std::move(arg));
  }
  for (const std::string& extra : ctx.options->extraArgs)
    args.push_back(extra);
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());

  CXTranslationUnit tu = nullptr;
  const CXErrorCode rc = clang_parseTranslationUnit2(
      index, nullptr, argv.data(), static_cast<int>(argv.size()), nullptr, 0,
      CXTranslationUnit_KeepGoing, &tu);
  if (rc != CXError_Success || tu == nullptr) {
    result.errors.push_back("failed to parse " + absFile + " (CXErrorCode " +
                            std::to_string(static_cast<int>(rc)) + ")");
    return;
  }

  const unsigned nDiag = clang_getNumDiagnostics(tu);
  for (unsigned i = 0; i < nDiag; ++i) {
    CXDiagnostic diag = clang_getDiagnostic(tu, i);
    const CXDiagnosticSeverity sev = clang_getDiagnosticSeverity(diag);
    if (sev >= CXDiagnostic_Error) {
      result.errors.push_back(
          absFile + ": " +
          toString(clang_formatDiagnostic(
              diag, clang_defaultDiagnosticDisplayOptions())));
    }
    clang_disposeDiagnostic(diag);
  }

  ctx.tu = tu;
  ctx.files.clear();
  handleCursor(ctx, clang_getTranslationUnitCursor(tu), WalkState{});

  // bad-suppression must fire even in files where no rule ran: visit
  // the main file and every include.
  if (CXFile main = clang_getFile(tu, absFile.c_str()); main != nullptr)
    reportMalformed(ctx, main);
  clang_getInclusions(
      tu,
      [](CXFile included, CXSourceLocation*, unsigned, CXClientData data) {
        reportMalformed(*static_cast<TuContext*>(data), included);
      },
      &ctx);

  ++result.translationUnits;
  clang_disposeTranslationUnit(tu);
  ctx.tu = nullptr;
}

}  // namespace

AnalyzeResult runAnalysis(const AnalyzeOptions& options) {
  AnalyzeResult result;

  CXCompilationDatabase_Error dbError = CXCompilationDatabase_NoError;
  CXCompilationDatabase db = clang_CompilationDatabase_fromDirectory(
      options.compileDbDir.c_str(), &dbError);
  if (dbError != CXCompilationDatabase_NoError || db == nullptr) {
    result.errors.push_back("cannot load compile_commands.json from " +
                            options.compileDbDir);
    return result;
  }

  CXIndex index = clang_createIndex(/*excludeDeclarationsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  CXCompileCommands commands =
      clang_CompilationDatabase_getAllCompileCommands(db);
  const unsigned count = clang_CompileCommands_getSize(commands);

  TuContext ctx;
  ctx.options = &options;
  ctx.findings = &result.findings;

  std::vector<std::string> matched;
  for (unsigned i = 0; i < count; ++i) {
    CXCompileCommand command = clang_CompileCommands_getCommand(commands, i);
    const std::string dir =
        toString(clang_CompileCommand_getDirectory(command));
    const std::string file =
        toString(clang_CompileCommand_getFilename(command));
    const std::string rel =
        repoRelative(joinPath(dir, file), options.repoRoot);
    if (rel.empty() || rel.rfind("src/", 0) != 0) continue;
    if (!options.onlyFiles.empty() &&
        std::find(options.onlyFiles.begin(), options.onlyFiles.end(), rel) ==
            options.onlyFiles.end())
      continue;
    matched.push_back(rel);
    analyzeTu(ctx, index, command, result);
  }
  for (const std::string& want : options.onlyFiles) {
    if (std::find(matched.begin(), matched.end(), want) == matched.end())
      result.errors.push_back("no compile command for " + want);
  }
  if (result.translationUnits == 0 && options.onlyFiles.empty())
    result.errors.push_back(
        "compilation database matched no src/ translation units");

  clang_CompileCommands_dispose(commands);
  clang_disposeIndex(index);
  clang_CompilationDatabase_dispose(db);

  sortAndDedupe(result.findings);
  return result;
}

}  // namespace moloc::analyze
