/* Declaration-only stand-in for <clang-c/CXCompilationDatabase.h>;
 * see Index.h in this directory for why this exists and when it is
 * (and is not) used.
 */
#ifndef MOLOC_DEVSTUB_CLANG_C_CXCOMPILATIONDATABASE_H
#define MOLOC_DEVSTUB_CLANG_C_CXCOMPILATIONDATABASE_H

#include "clang-c/Index.h"

#ifdef __cplusplus
extern "C" {
#endif

typedef void* CXCompilationDatabase;
typedef void* CXCompileCommands;
typedef void* CXCompileCommand;

typedef enum {
  CXCompilationDatabase_NoError = 0,
  CXCompilationDatabase_CanNotLoadDatabase = 1
} CXCompilationDatabase_Error;

CXCompilationDatabase clang_CompilationDatabase_fromDirectory(
    const char* BuildDir, CXCompilationDatabase_Error* ErrorCode);
void clang_CompilationDatabase_dispose(CXCompilationDatabase);
CXCompileCommands clang_CompilationDatabase_getAllCompileCommands(
    CXCompilationDatabase);
void clang_CompileCommands_dispose(CXCompileCommands);
unsigned clang_CompileCommands_getSize(CXCompileCommands);
CXCompileCommand clang_CompileCommands_getCommand(CXCompileCommands,
                                                  unsigned I);
CXString clang_CompileCommand_getDirectory(CXCompileCommand);
CXString clang_CompileCommand_getFilename(CXCompileCommand);
unsigned clang_CompileCommand_getNumArgs(CXCompileCommand);
CXString clang_CompileCommand_getArg(CXCompileCommand, unsigned I);

#ifdef __cplusplus
}
#endif

#endif /* MOLOC_DEVSTUB_CLANG_C_CXCOMPILATIONDATABASE_H */
