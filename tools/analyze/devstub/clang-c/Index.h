/* Declaration-only stand-in for libclang's <clang-c/Index.h>, LLVM-14
 * surface, covering exactly the symbols moloc_check uses.
 *
 * Purpose: `tools/analyze/devstub/syntax_check.sh` type-checks the
 * analyzer on machines without libclang-dev (the repo's default dev
 * image ships none).  It is NEVER on the include path of a real
 * build — tools/analyze/CMakeLists.txt only compiles the driver when
 * the genuine headers+library are found, and this directory is not
 * in any CMake include path.  Signatures below must track the real
 * API; a mismatch shows up as a compile error in the MOLOC_ANALYZE
 * CI job, which builds against the genuine libclang.
 */
#ifndef MOLOC_DEVSTUB_CLANG_C_INDEX_H
#define MOLOC_DEVSTUB_CLANG_C_INDEX_H

#include <stddef.h>
#include <time.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ---- strings ---- */
typedef struct {
  const void* data;
  unsigned private_flags;
} CXString;
const char* clang_getCString(CXString string);
void clang_disposeString(CXString string);

/* ---- index / translation units ---- */
typedef void* CXIndex;
typedef struct CXTranslationUnitImpl* CXTranslationUnit;
typedef void* CXClientData;

CXIndex clang_createIndex(int excludeDeclarationsFromPCH,
                          int displayDiagnostics);
void clang_disposeIndex(CXIndex index);

struct CXUnsavedFile {
  const char* Filename;
  const char* Contents;
  unsigned long Length;
};

enum CXErrorCode {
  CXError_Success = 0,
  CXError_Failure = 1,
  CXError_Crashed = 2,
  CXError_InvalidArguments = 3,
  CXError_ASTReadError = 4
};

enum CXTranslationUnit_Flags {
  CXTranslationUnit_None = 0x0,
  CXTranslationUnit_DetailedPreprocessingRecord = 0x01,
  CXTranslationUnit_SkipFunctionBodies = 0x40,
  CXTranslationUnit_KeepGoing = 0x200
};

enum CXErrorCode clang_parseTranslationUnit2(
    CXIndex CIdx, const char* source_filename,
    const char* const* command_line_args, int num_command_line_args,
    struct CXUnsavedFile* unsaved_files, unsigned num_unsaved_files,
    unsigned options, CXTranslationUnit* out_TU);
void clang_disposeTranslationUnit(CXTranslationUnit unit);

/* ---- files / locations ---- */
typedef void* CXFile;
CXString clang_getFileName(CXFile SFile);
CXString clang_File_tryGetRealPathName(CXFile file);
CXFile clang_getFile(CXTranslationUnit tu, const char* file_name);
const char* clang_getFileContents(CXTranslationUnit tu, CXFile file,
                                  size_t* size);

typedef struct {
  const void* ptr_data[2];
  unsigned int_data;
} CXSourceLocation;

typedef struct {
  const void* ptr_data[2];
  unsigned begin_int_data;
  unsigned end_int_data;
} CXSourceRange;

void clang_getExpansionLocation(CXSourceLocation location, CXFile* file,
                                unsigned* line, unsigned* column,
                                unsigned* offset);
int clang_Location_isInSystemHeader(CXSourceLocation location);
CXSourceLocation clang_getRangeStart(CXSourceRange range);
CXSourceLocation clang_getRangeEnd(CXSourceRange range);

/* ---- diagnostics ---- */
typedef void* CXDiagnostic;
enum CXDiagnosticSeverity {
  CXDiagnostic_Ignored = 0,
  CXDiagnostic_Note = 1,
  CXDiagnostic_Warning = 2,
  CXDiagnostic_Error = 3,
  CXDiagnostic_Fatal = 4
};
unsigned clang_getNumDiagnostics(CXTranslationUnit Unit);
CXDiagnostic clang_getDiagnostic(CXTranslationUnit Unit, unsigned Index);
enum CXDiagnosticSeverity clang_getDiagnosticSeverity(CXDiagnostic);
CXString clang_formatDiagnostic(CXDiagnostic Diagnostic, unsigned Options);
unsigned clang_defaultDiagnosticDisplayOptions(void);
void clang_disposeDiagnostic(CXDiagnostic Diagnostic);

/* ---- cursors ---- */
enum CXCursorKind {
  CXCursor_UnexposedDecl = 1,
  CXCursor_FieldDecl = 6,
  CXCursor_FunctionDecl = 8,
  CXCursor_VarDecl = 9,
  CXCursor_ParmDecl = 10,
  CXCursor_CXXMethod = 21,
  CXCursor_Namespace = 22,
  CXCursor_Constructor = 24,
  CXCursor_Destructor = 25,
  CXCursor_ConversionFunction = 26,
  CXCursor_FunctionTemplate = 30,
  CXCursor_DeclRefExpr = 101,
  CXCursor_CallExpr = 103,
  CXCursor_UnexposedExpr = 100,
  CXCursor_IntegerLiteral = 106,
  CXCursor_FloatingLiteral = 107,
  CXCursor_ParenExpr = 111,
  CXCursor_BinaryOperator = 114,
  CXCursor_CompoundAssignOperator = 115,
  CXCursor_CXXThrowExpr = 133,
  CXCursor_CXXNewExpr = 134,
  CXCursor_LambdaExpr = 144,
  CXCursor_IfStmt = 205,
  CXCursor_ReturnStmt = 214,
  CXCursor_TranslationUnit = 350
};

typedef struct {
  enum CXCursorKind kind;
  int xdata;
  const void* data[3];
} CXCursor;

CXCursor clang_getTranslationUnitCursor(CXTranslationUnit);
CXCursor clang_getNullCursor(void);
int clang_Cursor_isNull(CXCursor cursor);
unsigned clang_equalCursors(CXCursor, CXCursor);
enum CXCursorKind clang_getCursorKind(CXCursor);
unsigned clang_isExpression(enum CXCursorKind);
unsigned clang_isInvalid(enum CXCursorKind);
CXString clang_getCursorSpelling(CXCursor);
CXSourceLocation clang_getCursorLocation(CXCursor);
CXSourceRange clang_getCursorExtent(CXCursor);
CXCursor clang_getCursorReferenced(CXCursor);
CXCursor clang_getCursorDefinition(CXCursor);
CXCursor clang_getCursorSemanticParent(CXCursor cursor);
CXCursor clang_getCanonicalCursor(CXCursor);
int clang_Cursor_getNumArguments(CXCursor C);
CXCursor clang_Cursor_getArgument(CXCursor C, unsigned i);

enum CXChildVisitResult {
  CXChildVisit_Break,
  CXChildVisit_Continue,
  CXChildVisit_Recurse
};
typedef enum CXChildVisitResult (*CXCursorVisitor)(CXCursor cursor,
                                                   CXCursor parent,
                                                   CXClientData client_data);
unsigned clang_visitChildren(CXCursor parent, CXCursorVisitor visitor,
                             CXClientData client_data);

/* ---- types ---- */
enum CXTypeKind {
  CXType_Invalid = 0,
  CXType_Unexposed = 1,
  CXType_Void = 2,
  CXType_Bool = 3,
  CXType_Char_U = 4,
  CXType_UChar = 5,
  CXType_UShort = 8,
  CXType_UInt = 9,
  CXType_ULong = 10,
  CXType_ULongLong = 11,
  CXType_Char_S = 13,
  CXType_SChar = 14,
  CXType_Short = 16,
  CXType_Int = 17,
  CXType_Long = 18,
  CXType_LongLong = 19,
  CXType_Float = 21,
  CXType_Double = 22,
  CXType_LongDouble = 23,
  CXType_Pointer = 101,
  CXType_LValueReference = 103,
  CXType_RValueReference = 104
};

typedef struct {
  enum CXTypeKind kind;
  void* data[2];
} CXType;

CXType clang_getCursorType(CXCursor C);
CXType clang_getCanonicalType(CXType T);
CXType clang_getPointeeType(CXType T);
CXString clang_getTypeSpelling(CXType CT);
long long clang_Type_getSizeOf(CXType T);
int clang_getNumArgTypes(CXType T);
CXType clang_getArgType(CXType T, unsigned i);
CXType clang_getCursorResultType(CXCursor C);

/* ---- constant evaluation ---- */
typedef void* CXEvalResult;
typedef enum {
  CXEval_Int = 1,
  CXEval_Float = 2,
  CXEval_ObjCStrLiteral = 3,
  CXEval_StrLiteral = 4,
  CXEval_CFStr = 5,
  CXEval_Other = 6,
  CXEval_UnExposed = 0
} CXEvalResultKind;
CXEvalResult clang_Cursor_Evaluate(CXCursor C);
CXEvalResultKind clang_EvalResult_getKind(CXEvalResult E);
void clang_EvalResult_dispose(CXEvalResult E);

/* ---- tokens ---- */
typedef enum CXTokenKind {
  CXToken_Punctuation = 0,
  CXToken_Keyword = 1,
  CXToken_Identifier = 2,
  CXToken_Literal = 3,
  CXToken_Comment = 4
} CXTokenKind;

typedef struct {
  unsigned int_data[4];
  void* ptr_data;
} CXToken;

void clang_tokenize(CXTranslationUnit TU, CXSourceRange Range,
                    CXToken** Tokens, unsigned* NumTokens);
void clang_disposeTokens(CXTranslationUnit TU, CXToken* Tokens,
                         unsigned NumTokens);
CXTokenKind clang_getTokenKind(CXToken);
CXString clang_getTokenSpelling(CXTranslationUnit, CXToken);
CXSourceLocation clang_getTokenLocation(CXTranslationUnit, CXToken);

/* ---- inclusions ---- */
typedef void (*CXInclusionVisitor)(CXFile included_file,
                                   CXSourceLocation* inclusion_stack,
                                   unsigned include_len,
                                   CXClientData client_data);
void clang_getInclusions(CXTranslationUnit tu, CXInclusionVisitor visitor,
                         CXClientData client_data);

#ifdef __cplusplus
}
#endif

#endif /* MOLOC_DEVSTUB_CLANG_C_INDEX_H */
