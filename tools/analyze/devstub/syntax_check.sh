#!/usr/bin/env bash
# Type-checks the moloc_check driver against the devstub clang-c
# headers.  For machines without libclang-dev: catches signature and
# template errors locally; the MOLOC_ANALYZE CI job is the build of
# record against genuine libclang.
set -euo pipefail
here="$(cd "$(dirname "$0")" && pwd)"
analyze="$(dirname "$here")"
cxx="${CXX:-g++}"
"$cxx" -std=c++20 -fsyntax-only -Wall -Wextra \
  -I "$here" -I "$analyze" \
  "$analyze/analyzer.cpp" "$analyze/moloc_check.cpp" \
  "$analyze/support/findings.cpp" "$analyze/support/rules.cpp" \
  "$analyze/support/suppressions.cpp"
echo "moloc_check: syntax check passed ($cxx, devstub headers)"
