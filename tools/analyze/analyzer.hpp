#pragma once

#include <string>
#include <vector>

#include "support/findings.hpp"

namespace moloc::analyze {

struct AnalyzeOptions {
  /// Absolute repo root; findings are reported repo-relative and
  /// scope policy (rules.hpp) is evaluated against that path.
  std::string repoRoot;
  /// Directory holding compile_commands.json.
  std::string compileDbDir;
  /// When non-empty, only TUs whose repo-relative path is listed are
  /// analyzed (fixture tests point this at a single file).
  std::vector<std::string> onlyFiles;
  /// Extra -I / -D flags appended after the compile-command flags
  /// (fixture compile databases are generated without system paths).
  std::vector<std::string> extraArgs;
};

struct AnalyzeResult {
  /// Unsuppressed findings, sorted and deduped across TUs.
  std::vector<Finding> findings;
  /// Hard failures (TU missing from the database, parse failure)
  /// that must fail the run regardless of findings.
  std::vector<std::string> errors;
  unsigned translationUnits = 0;
};

/// Parses every src/ TU in the compilation database and runs all
/// registered checks.  Suppressions (`// lint:allow(rule): why`) are
/// honored per line; malformed ones surface as `bad-suppression`
/// findings.
AnalyzeResult runAnalysis(const AnalyzeOptions& options);

}  // namespace moloc::analyze
